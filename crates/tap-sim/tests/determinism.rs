//! The parallel trial engine's core contract: every figure's CSV is
//! byte-identical at any `--threads` value. Each experiment seeds its
//! trials from `engine::substream_seed`, so the schedule that ran a trial
//! must never leak into the numbers it produces.

use tap_sim::experiments::{
    churn, collusion, latency, node_failures, resilience, secure_routing, sweeps, throughput,
};
use tap_sim::{Scale, Series};

/// Small enough to keep the whole suite in CI seconds, large enough that
/// every figure produces non-trivial rows (several trials per pool).
fn tiny() -> Scale {
    Scale {
        nodes: 250,
        tunnels: 60,
        latency_sims: 2,
        latency_transfers: 8,
        churn_units: 3,
        churn_per_unit: 12,
        seed: 0xD37,
        ..Scale::quick()
    }
}

type Figure = fn(&Scale) -> Series;

fn figures() -> Vec<(&'static str, Figure)> {
    vec![
        ("fig2", node_failures::run as Figure),
        ("fig3", collusion::run),
        ("fig4a", sweeps::by_replication),
        ("fig4b", sweeps::by_length),
        ("fig5", churn::run),
        ("fig6", latency::run),
        ("secure", secure_routing::run),
        ("throughput", throughput::run),
    ]
}

#[test]
fn csvs_are_byte_identical_across_thread_counts() {
    for (name, run) in figures() {
        let sequential = run(&tiny().with_threads(1)).to_csv();
        for threads in [2, 4] {
            let parallel = run(&tiny().with_threads(threads)).to_csv();
            assert_eq!(
                sequential, parallel,
                "{name}: CSV diverged between --threads 1 and --threads {threads}"
            );
        }
    }
}

#[test]
fn throughput_csv_is_byte_identical_across_shard_counts() {
    // The sharded event loop's own contract, on top of the thread one:
    // region count partitions the event space without touching results.
    let one_shard = throughput::run(&Scale {
        shards: 1,
        ..tiny()
    })
    .to_csv();
    for shards in [2, 8] {
        let sharded = throughput::run(&Scale { shards, ..tiny() }).to_csv();
        assert_eq!(
            one_shard, sharded,
            "throughput: CSV diverged between --shards 1 and --shards {shards}"
        );
    }
    // And the combination: many shards driven by many threads.
    let combined = throughput::run(&Scale {
        shards: 8,
        threads: 4,
        ..tiny()
    })
    .to_csv();
    assert_eq!(one_shard, combined);
}

#[test]
fn heavy_figures_are_byte_identical_across_shard_and_thread_grids() {
    // The figures ported onto the sharded event loop (and the two whose
    // parallelism stays at the trial level) must not let the shard count
    // or worker count leak into a single byte of CSV.
    let heavy: [(&str, Figure); 3] = [
        ("fig5", churn::run as Figure),
        ("fig6", latency::run),
        ("secure", secure_routing::run),
    ];
    for (name, run) in heavy {
        let baseline = run(&Scale {
            shards: 1,
            ..tiny().with_threads(1)
        })
        .to_csv();
        for shards in [1usize, 2, 8] {
            for threads in [1usize, 4] {
                let got = run(&Scale {
                    shards,
                    ..tiny().with_threads(threads)
                })
                .to_csv();
                assert_eq!(
                    baseline, got,
                    "{name}: CSV diverged at --shards {shards} --threads {threads}"
                );
            }
        }
    }
}

/// The committed goldens were produced by *pre-optimization* binaries at
/// the quick preset — fig5/fig6/secure by the pre-port serial loops
/// (plain `Network` replays, allocating onion path), the rest by the
/// binary preceding the wide-kernel crypto rewrite (scalar ChaCha20,
/// per-byte GF(2^8), one cipher sweep per onion layer). Every subsequent
/// implementation must reproduce them exactly. Quick-preset figures are
/// release-speed; under a debug profile this test is skipped rather than
/// stalling `cargo test`.
#[cfg_attr(
    debug_assertions,
    ignore = "quick-preset goldens are release-speed; run with `cargo test --release`"
)]
#[test]
fn quick_preset_csvs_match_the_pre_port_goldens() {
    let goldens: [(&str, Figure, &str); 9] = [
        (
            "fig2",
            node_failures::run as Figure,
            include_str!("goldens/fig2.csv"),
        ),
        ("fig3", collusion::run, include_str!("goldens/fig3.csv")),
        (
            "fig4a",
            sweeps::by_replication,
            include_str!("goldens/fig4a.csv"),
        ),
        (
            "fig4b",
            sweeps::by_length,
            include_str!("goldens/fig4b.csv"),
        ),
        ("fig5", churn::run, include_str!("goldens/fig5.csv")),
        ("fig6", latency::run, include_str!("goldens/fig6.csv")),
        (
            "secure",
            secure_routing::run,
            include_str!("goldens/secure.csv"),
        ),
        (
            "resilience",
            resilience::run,
            include_str!("goldens/resilience.csv"),
        ),
        (
            "throughput",
            throughput::run,
            include_str!("goldens/throughput.csv"),
        ),
    ];
    for (name, run, golden) in goldens {
        let got = run(&Scale::quick().with_threads(1)).to_csv();
        assert_eq!(
            golden, got,
            "{name}: quick-preset CSV diverged from the pre-optimization golden"
        );
    }
}

/// The coded-multipath resilience sweep (`resilience --multipath 5/3`)
/// against its pre-optimization golden: the erasure codec's SWAR
/// GF(2^8) path and the fused onion codec must leave every striped
/// transfer's outcome untouched.
#[cfg_attr(
    debug_assertions,
    ignore = "quick-preset goldens are release-speed; run with `cargo test --release`"
)]
#[test]
fn quick_preset_multipath_csv_matches_the_golden() {
    let scale = Scale {
        mp_n: 5,
        mp_k: 3,
        ..Scale::quick().with_threads(1)
    };
    let got = resilience::run(&scale).to_csv();
    assert_eq!(
        include_str!("goldens/resilience_mp.csv"),
        got,
        "resilience --multipath 5/3: CSV diverged from the pre-optimization golden"
    );
}

#[test]
fn resilience_multipath_csv_is_byte_identical_across_thread_counts() {
    // The coded-multipath comparison runs two phases per trial off the same
    // per-trial substream; neither phase's RNG may leak across trials, so
    // the sweep's CSV holds the byte-identity contract like every figure.
    let mp = Scale {
        mp_n: 5,
        mp_k: 3,
        fault_permille: 100,
        latency_sims: 1,
        latency_transfers: 12,
        ..tiny()
    };
    let sequential = resilience::run(&mp.with_threads(1)).to_csv();
    for threads in [2, 4] {
        let parallel = resilience::run(&mp.with_threads(threads)).to_csv();
        assert_eq!(
            sequential, parallel,
            "resilience --multipath 5/3: CSV diverged between --threads 1 and --threads {threads}"
        );
    }
}

#[test]
fn oversubscribed_pools_are_still_deterministic() {
    // More workers than trials: the pool must not invent or drop work.
    let a = collusion::run(&tiny().with_threads(64)).to_csv();
    let b = collusion::run(&tiny().with_threads(1)).to_csv();
    assert_eq!(a, b);
}
