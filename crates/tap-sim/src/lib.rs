//! # tap-sim — regenerating the TAP paper's evaluation (§7)
//!
//! One module per figure of the paper, each producing a [`report::Series`]
//! whose rows mirror the published plot:
//!
//! | module | paper figure | question answered |
//! |--------|--------------|-------------------|
//! | [`experiments::node_failures`] | Fig. 2 | How many tunnels die when a fraction `p` of nodes fails simultaneously? (current tunneling vs. TAP k=3 vs. TAP k=5) |
//! | [`experiments::collusion`] | Fig. 3 | How many tunnels can a colluding fraction `p` trace? |
//! | [`experiments::sweeps`] | Fig. 4(a)/(b) | Corruption vs. replication factor `k` and vs. tunnel length `l` |
//! | [`experiments::churn`] | Fig. 5 | Corruption over time under churn — unrefreshed vs. refreshed tunnels |
//! | [`experiments::latency`] | Fig. 6 | 2 Mb transfer latency vs. network size — overt vs. TAP_basic vs. TAP_opt at l ∈ {3, 5} |
//! | [`experiments::resilience`] | — (robustness) | How gracefully do tunnel transfers degrade under injected loss, duplication, partitions, and crashes? |
//!
//! Every experiment takes a [`Scale`]: `Scale::paper()` reproduces the
//! published parameters (10^4 nodes, 5 000 tunnels, 30×1 000 transfers);
//! `Scale::quick()` shrinks the population for CI-speed runs while keeping
//! every ratio identical, so the curve *shapes* are preserved.
//!
//! Analytic overlays: where a closed form exists (independent-failure and
//! independent-collusion models), the series carries it alongside the
//! measurement so drift is visible at a glance:
//!
//! * Fig. 2 baseline: `1 - (1-p)^l`; TAP: `1 - (1 - p^k)^l`.
//! * Figs. 3/4: case-1 corruption `(1 - (1-p)^k)^l`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod engine;
pub mod experiments;
pub mod report;

pub use report::{Series, SeriesRow};

/// Experiment sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Live nodes in the overlay.
    pub nodes: usize,
    /// Tunnels formed (the paper's 5 000).
    pub tunnels: usize,
    /// Simulation repetitions for the latency experiment.
    pub latency_sims: usize,
    /// Transfers per simulation for the latency experiment.
    pub latency_transfers: usize,
    /// Churn experiment: time units simulated.
    pub churn_units: usize,
    /// Churn experiment: nodes leaving (and joining) per unit.
    pub churn_per_unit: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Event-journal capacity for the metrics registry: `0` (the default)
    /// records counters/histograms only; `N > 0` additionally keeps the
    /// most recent `N` events (e.g. `core.tha.takeover`) in the emitted
    /// [`MetricsReport`](tap_metrics::MetricsReport) JSON. Set from the
    /// CLI with `--journal N`.
    pub journal_cap: usize,
    /// Fault severity for the resilience experiment, in permille (0–1000):
    /// the per-link loss probability at the sweep's center point. The
    /// other fault knobs (duplication, crash population) scale off it.
    /// `0` disables injected faults entirely. Set from the CLI with
    /// `--faults N`; the anonymity/latency figures ignore it, so their
    /// CSVs are byte-identical at any value.
    pub fault_permille: u32,
    /// Worker threads for each figure's [`engine::TrialPool`]. Results are
    /// bit-identical at any value (per-trial RNG substreams); this knob
    /// only trades wall-clock for cores. The CLI defaults it to
    /// [`std::thread::available_parallelism`]; the library default is 1.
    pub threads: usize,
    /// Region shards for the `throughput` figure's sharded event loop
    /// (`0`, the default, selects 8, clamped to the node count). The shard
    /// count partitions the *event space*, not the worker pool — CSVs are
    /// byte-identical at any value; only `min(shards, threads)` cores can
    /// be busy at once. Set from the CLI with `--shards N`.
    pub shards: usize,
    /// Multipath stripe count for the resilience figure: `0` (the default)
    /// keeps the classic single-path sweep and its CSV byte-identical;
    /// `n > 0` switches the figure to the erasure-coded comparison mode
    /// (coded `n`/`mp_k` multipath vs. single-path retry at the same fault
    /// level). Set from the CLI with `--multipath N/K`.
    pub mp_n: usize,
    /// Fragments required to reconstruct a multipath transfer (the code's
    /// `k`); only meaningful when `mp_n > 0`.
    pub mp_k: usize,
}

impl Scale {
    /// The paper's §7 parameters.
    pub fn paper() -> Scale {
        Scale {
            nodes: 10_000,
            tunnels: 5_000,
            latency_sims: 30,
            latency_transfers: 1_000,
            // The paper plots "time" without units; 100 rounds of its
            // stated 100-leaves + 100-joins churn gives one full network
            // turnover, enough for the unrefreshed decay to clear
            // sampling noise at 5 000 tunnels.
            churn_units: 100,
            churn_per_unit: 100,
            seed: 20040815, // ICPP 2004
            journal_cap: 0,
            fault_permille: 100,
            threads: 1,
            shards: 0,
            mp_n: 0,
            mp_k: 0,
        }
    }

    /// A ~25× smaller run preserving all ratios; finishes in seconds.
    pub fn quick() -> Scale {
        Scale {
            nodes: 1_000,
            tunnels: 400,
            latency_sims: 3,
            latency_transfers: 60,
            // Quick mode churns harder per unit (5% vs the paper's 1%) so
            // the Fig. 5 decay is visible above sampling noise with only
            // 400 tunnels.
            churn_units: 12,
            churn_per_unit: 50,
            seed: 20040815,
            journal_cap: 0,
            fault_permille: 100,
            threads: 1,
            shards: 0,
            mp_n: 0,
            mp_k: 0,
        }
    }

    /// Override the seed (each experiment further offsets it so figures
    /// never share RNG streams).
    pub fn with_seed(mut self, seed: u64) -> Scale {
        self.seed = seed;
        self
    }

    /// Override the worker-thread count (clamped to ≥ 1 at use).
    pub fn with_threads(mut self, threads: usize) -> Scale {
        self.threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_sane() {
        for s in [Scale::paper(), Scale::quick()] {
            assert!(s.nodes >= 100);
            assert!(s.tunnels >= 100);
            // Joins replace leaves each unit, so total churn may exceed N;
            // but one unit must never drain most of the network at once.
            assert!(s.churn_per_unit <= s.nodes / 2);
        }
    }
}
