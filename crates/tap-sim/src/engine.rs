//! Deterministic parallel trial engine.
//!
//! Every figure of the paper decomposes into *trials* — per-`p` sweep
//! points (Figs. 2/3), per-`k`/per-`l` points (Fig. 4), independent
//! latency simulations (Fig. 6), or per-tunnel corruption scans inside a
//! churn unit (Fig. 5). Trials share the (immutable) testbed but nothing
//! else, so they can run on any number of worker threads — *provided* the
//! randomness each trial sees does not depend on scheduling.
//!
//! [`TrialPool`] guarantees that by construction:
//!
//! * each trial `i` draws from its own RNG substream, seeded as
//!   `scale.seed ⊕ fnv1a(figure, i)` ([`substream_seed`]) — no trial ever
//!   observes another trial's stream position;
//! * results are returned in input order regardless of which worker
//!   finished first.
//!
//! The output of [`TrialPool::run`] is therefore bit-identical at
//! `--threads 1` and `--threads 64`. Per-trial [`Registry`](tap_metrics::Registry)
//! instances are the companion pattern: record into a private registry
//! inside the trial, fold the parts into the figure's registry **in trial
//! order** with [`Registry::absorb`](tap_metrics::Registry::absorb), and
//! the metrics report stays deterministic too — with zero contended
//! atomics on the hot path.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Scale;

/// The RNG substream seed of trial `trial_idx` of `figure`: the base seed
/// XOR an FNV-1a 64-bit hash of the figure name and trial index. Distinct
/// figures and distinct trials land in unrelated substreams even when the
/// base seed is shared.
pub fn substream_seed(base: u64, figure: &str, trial_idx: usize) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in figure.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    for b in (trial_idx as u64).to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    base ^ h
}

/// An order-preserving scoped worker pool bound to one figure's RNG
/// substream family. `std`-only: scoped threads plus an atomic work index.
#[derive(Debug, Clone, Copy)]
pub struct TrialPool {
    threads: usize,
    base_seed: u64,
    figure: &'static str,
}

impl TrialPool {
    /// A pool for `figure` sized by [`Scale::threads`] (clamped to ≥ 1).
    pub fn new(scale: &Scale, figure: &'static str) -> TrialPool {
        TrialPool {
            threads: scale.threads.max(1),
            base_seed: scale.seed,
            figure,
        }
    }

    /// Worker threads this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The raw substream seed of trial `trial_idx` (for trials that build
    /// their own generators, e.g. latency models).
    pub fn trial_seed(&self, trial_idx: usize) -> u64 {
        substream_seed(self.base_seed, self.figure, trial_idx)
    }

    /// A fresh generator positioned at the start of trial `trial_idx`'s
    /// substream.
    pub fn trial_rng(&self, trial_idx: usize) -> StdRng {
        StdRng::seed_from_u64(self.trial_seed(trial_idx))
    }

    /// Run `f` once per trial on up to [`TrialPool::threads`] workers and
    /// return the results in input order.
    ///
    /// `f` receives the trial index, the trial, and the trial's substream
    /// RNG; it must derive all randomness from that RNG (never from shared
    /// mutable state), which is what makes the output independent of the
    /// thread count.
    pub fn run<T, R, F>(&self, trials: Vec<T>, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, &mut StdRng) -> R + Sync,
    {
        let n = trials.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return trials
                .iter()
                .enumerate()
                .map(|(i, t)| f(i, t, &mut self.trial_rng(i)))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, f(i, &trials[i], &mut self.trial_rng(i))));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("trial worker panicked"))
                .collect()
        });
        tagged.sort_by_key(|(i, _)| *i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    fn pool(threads: usize) -> TrialPool {
        let scale = Scale {
            threads,
            ..Scale::quick()
        };
        TrialPool::new(&scale, "test-fig")
    }

    #[test]
    fn substreams_are_distinct_and_stable() {
        let a = substream_seed(7, "fig2", 0);
        assert_eq!(a, substream_seed(7, "fig2", 0), "pure function");
        assert_ne!(a, substream_seed(7, "fig2", 1), "trials differ");
        assert_ne!(a, substream_seed(7, "fig3", 0), "figures differ");
        assert_ne!(a, substream_seed(8, "fig2", 0), "base seed differs");
    }

    #[test]
    fn results_come_back_in_input_order() {
        let trials: Vec<usize> = (0..97).collect();
        let out = pool(4).run(trials, |i, &t, _| {
            assert_eq!(i, t);
            t * 3
        });
        assert_eq!(out, (0..97).map(|t| t * 3).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_thread_count_invariant() {
        // Each trial consumes a *different amount* of randomness, which
        // would corrupt later trials if streams were shared.
        let work = |_i: usize, t: &usize, rng: &mut StdRng| -> u64 {
            (0..(t % 5 + 1)).map(|_| rng.next_u64() % 1000).sum()
        };
        let trials: Vec<usize> = (0..40).collect();
        let sequential = pool(1).run(trials.clone(), work);
        for threads in [2, 4, 8] {
            assert_eq!(
                pool(threads).run(trials.clone(), work),
                sequential,
                "results must be identical at {threads} threads"
            );
        }
    }

    #[test]
    fn empty_and_oversized_pools_are_fine() {
        let none: Vec<u32> = Vec::new();
        assert!(pool(4).run(none, |_, &t, _| t).is_empty());
        // More workers than trials: pool clamps, everything still runs.
        let out = pool(64).run(vec![1u32, 2, 3], |_, &t, _| t + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }
}
