//! Argument parsing for the `tap-sim` binary.
//!
//! Lives in the library (not `main.rs`) so flag-order behaviour is
//! regression-testable: presets are resolved in a first pass and overrides
//! applied afterwards, so `fig2 --seed 7 --paper` and
//! `fig2 --paper --seed 7` configure the identical [`Scale`]. (The old
//! single-pass parser let `--paper` clobber any flag parsed before it.)

use crate::Scale;

/// The usage banner printed alongside every parse error.
pub const USAGE: &str =
    "usage: tap-sim <fig2|fig3|fig4a|fig4b|fig5|fig6|secure|resilience|throughput|all> \
                         [--paper] [--seed N] [--nodes N] [--tunnels N] [--journal N] \
                         [--faults PERMILLE] [--multipath N/K] [--threads N] [--shards N] \
                         [--csv DIR]";

/// The figure names the binary accepts (plus the pseudo-figure `all`).
pub const FIGURES: [&str; 9] = [
    "fig2",
    "fig3",
    "fig4a",
    "fig4b",
    "fig5",
    "fig6",
    "secure",
    "resilience",
    "throughput",
];

/// A fully parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// The selected figure, or `"all"`.
    pub which: String,
    /// The resolved scale: preset first, overrides applied on top in a
    /// second pass, so flag order never matters.
    pub scale: Scale,
    /// `--paper` was given (the preset the scale started from).
    pub paper: bool,
    /// `--threads N`, when given. `None` means "let the binary pick"
    /// (available parallelism); [`Cli::scale`] keeps the preset's default
    /// so library callers see a fully resolved value either way.
    pub threads: Option<usize>,
    /// `--csv DIR`, when given.
    pub csv_dir: Option<String>,
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let v = value.ok_or_else(|| format!("{flag} expects a value"))?;
    v.parse()
        .map_err(|_| format!("{flag} expects an unsigned integer, got {v:?}"))
}

/// Parse the binary's arguments (program name already stripped).
pub fn parse(args: &[String]) -> Result<Cli, String> {
    // Pass 1: resolve the preset, so later overrides survive `--paper`
    // regardless of where it appears on the command line.
    let paper = args.iter().any(|a| a == "--paper");
    let mut scale = if paper {
        Scale::paper()
    } else {
        Scale::quick()
    };

    let mut which: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut csv_dir: Option<String> = None;

    // Pass 2: apply overrides in order.
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--paper" => {}
            "--seed" => scale.seed = parse_value("--seed", iter.next())?,
            "--nodes" => scale.nodes = parse_value("--nodes", iter.next())?,
            "--tunnels" => scale.tunnels = parse_value("--tunnels", iter.next())?,
            "--journal" => scale.journal_cap = parse_value("--journal", iter.next())?,
            "--faults" => {
                let n: u32 = parse_value("--faults", iter.next())?;
                if n > 1000 {
                    return Err("--faults is a permille, at most 1000".into());
                }
                scale.fault_permille = n;
            }
            "--multipath" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "--multipath expects N/K (e.g. 5/3)".to_string())?;
                let (n, k) = v
                    .split_once('/')
                    .ok_or_else(|| format!("--multipath expects N/K (e.g. 5/3), got {v:?}"))?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--multipath N must be an unsigned integer, got {n:?}"))?;
                let k: usize = k
                    .parse()
                    .map_err(|_| format!("--multipath K must be an unsigned integer, got {k:?}"))?;
                if k == 0 || k > n || n > 64 {
                    return Err(format!("--multipath needs 1 <= K <= N <= 64, got {n}/{k}"));
                }
                scale.mp_n = n;
                scale.mp_k = k;
            }
            "--threads" => {
                let n: usize = parse_value("--threads", iter.next())?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(n);
            }
            "--shards" => {
                let n: usize = parse_value("--shards", iter.next())?;
                if n == 0 {
                    return Err("--shards must be at least 1".into());
                }
                scale.shards = n;
            }
            "--csv" => {
                csv_dir = Some(
                    iter.next()
                        .ok_or_else(|| "--csv expects a directory".to_string())?
                        .clone(),
                );
            }
            name if !name.starts_with('-') && which.is_none() => {
                if name != "all" && !FIGURES.contains(&name) {
                    return Err(format!("unknown figure {name:?}"));
                }
                which = Some(name.to_string());
            }
            other => return Err(format!("unrecognized argument {other:?}")),
        }
    }

    let which = which.ok_or_else(|| "missing figure name".to_string())?;
    if let Some(n) = threads {
        scale.threads = n;
    }
    Ok(Cli {
        which,
        scale,
        paper,
        threads,
        csv_dir,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_line(line: &str) -> Result<Cli, String> {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        parse(&args)
    }

    #[test]
    fn flag_order_does_not_matter() {
        // The verified bug: `--paper` used to clobber a `--seed` parsed
        // before it.
        let a = parse_line("fig2 --seed 7 --paper").unwrap();
        let b = parse_line("fig2 --paper --seed 7").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.scale.seed, 7);
        assert_eq!(a.scale.nodes, Scale::paper().nodes, "preset still applies");

        let c = parse_line("fig6 --nodes 500 --journal 8 --paper --tunnels 9").unwrap();
        let d = parse_line("fig6 --paper --nodes 500 --tunnels 9 --journal 8").unwrap();
        assert_eq!(c, d);
        assert_eq!(c.scale.nodes, 500);
        assert_eq!(c.scale.tunnels, 9);
        assert_eq!(c.scale.journal_cap, 8);
    }

    #[test]
    fn defaults_are_quick_scale() {
        let cli = parse_line("all").unwrap();
        assert_eq!(cli.which, "all");
        assert!(!cli.paper);
        assert_eq!(cli.scale, Scale::quick());
        assert_eq!(cli.threads, None);
        assert_eq!(cli.csv_dir, None);
    }

    #[test]
    fn threads_flag_is_validated() {
        let cli = parse_line("fig5 --threads 4 --csv out").unwrap();
        assert_eq!(cli.threads, Some(4));
        assert_eq!(cli.scale.threads, 4);
        assert_eq!(cli.csv_dir.as_deref(), Some("out"));

        assert!(parse_line("fig5 --threads 0")
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_line("fig5 --threads x")
            .unwrap_err()
            .contains("unsigned integer"));
        assert!(parse_line("fig5 --threads").unwrap_err().contains("value"));
    }

    #[test]
    fn faults_flag_is_a_bounded_permille() {
        let cli = parse_line("resilience --faults 250").unwrap();
        assert_eq!(cli.which, "resilience");
        assert_eq!(cli.scale.fault_permille, 250);

        let off = parse_line("resilience --faults 0").unwrap();
        assert_eq!(off.scale.fault_permille, 0);

        assert!(parse_line("resilience --faults 1001")
            .unwrap_err()
            .contains("at most 1000"));
        assert!(parse_line("resilience --faults x")
            .unwrap_err()
            .contains("unsigned integer"));
        // Order-independence extends to the new flag.
        let a = parse_line("resilience --faults 80 --paper").unwrap();
        let b = parse_line("resilience --paper --faults 80").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.scale.fault_permille, 80);
    }

    #[test]
    fn multipath_flag_parses_n_slash_k() {
        let cli = parse_line("resilience --multipath 5/3").unwrap();
        assert_eq!(cli.scale.mp_n, 5);
        assert_eq!(cli.scale.mp_k, 3);

        let off = parse_line("resilience").unwrap();
        assert_eq!(off.scale.mp_n, 0, "default is single-path mode");
        assert_eq!(off.scale.mp_k, 0);

        assert!(parse_line("resilience --multipath")
            .unwrap_err()
            .contains("N/K"));
        assert!(parse_line("resilience --multipath 5")
            .unwrap_err()
            .contains("N/K"));
        assert!(parse_line("resilience --multipath x/3")
            .unwrap_err()
            .contains("unsigned integer"));
        assert!(parse_line("resilience --multipath 3/5")
            .unwrap_err()
            .contains("1 <= K <= N"));
        assert!(parse_line("resilience --multipath 5/0")
            .unwrap_err()
            .contains("1 <= K <= N"));
        assert!(parse_line("resilience --multipath 65/3")
            .unwrap_err()
            .contains("1 <= K <= N"));

        // Order-independence extends to the new flag.
        let a = parse_line("resilience --multipath 4/2 --paper").unwrap();
        let b = parse_line("resilience --paper --multipath 4/2").unwrap();
        assert_eq!(a, b);
        assert_eq!((a.scale.mp_n, a.scale.mp_k), (4, 2));
    }

    #[test]
    fn shards_flag_is_validated_and_order_independent() {
        let cli = parse_line("throughput --shards 8").unwrap();
        assert_eq!(cli.which, "throughput");
        assert_eq!(cli.scale.shards, 8);

        assert_eq!(
            parse_line("throughput").unwrap().scale.shards,
            0,
            "0 = auto"
        );
        assert!(parse_line("throughput --shards 0")
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_line("throughput --shards x")
            .unwrap_err()
            .contains("unsigned integer"));

        let a = parse_line("throughput --shards 4 --paper").unwrap();
        let b = parse_line("throughput --paper --shards 4").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.scale.shards, 4);
    }

    #[test]
    fn bad_input_is_rejected_with_context() {
        assert!(parse_line("").unwrap_err().contains("missing figure"));
        assert!(parse_line("fig9").unwrap_err().contains("unknown figure"));
        assert!(parse_line("fig2 --bogus")
            .unwrap_err()
            .contains("unrecognized"));
        assert!(parse_line("fig2 --seed NaN")
            .unwrap_err()
            .contains("--seed"));
        assert!(parse_line("--csv").unwrap_err().contains("directory"));
    }
}
