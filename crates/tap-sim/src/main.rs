//! `tap-sim` — regenerate the TAP paper's figures from the command line.
//!
//! ```text
//! tap-sim <fig2|fig3|fig4a|fig4b|fig5|fig6|secure|resilience|throughput|all> \
//!         [--paper] [--seed N] [--nodes N] [--tunnels N] [--journal N] \
//!         [--faults PERMILLE] [--multipath N/K] [--threads N] [--shards N] \
//!         [--csv DIR]
//! ```
//!
//! Default scale is `quick` (seconds); `--paper` runs the published
//! parameters (10^4 nodes, 5 000 tunnels, 30×1 000 transfers). Flags may
//! appear in any order: presets are resolved first, overrides applied
//! after (see [`tap_sim::cli`]).
//!
//! `--threads N` sizes every figure's deterministic trial pool (default:
//! available parallelism). Results are bit-identical at any thread count —
//! per-trial RNG substreams, not shared streams — so the flag only trades
//! wall-clock for cores.
//!
//! `--faults PERMILLE` centers the resilience sweep's injected per-link
//! loss probability (default 100 = 10%; 0 disables fault injection). The
//! paper figures ignore it.
//!
//! `--multipath N/K` switches the resilience figure to the erasure-coded
//! comparison mode: the same payload shipped single-path (retry shim) and
//! as a coded N/K stripe set over N disjoint tunnels, side by side at each
//! loss level. The run is recorded in `BENCH_sim.json` as `resilience_mp`
//! so its trajectory never mixes with the classic sweep's.
//!
//! `--shards N` sets the `throughput` figure's region count for the
//! sharded event loop (default 8, clamped to the node count). Like
//! `--threads`, it never changes results — only which cores do the work.
//!
//! `--journal N` selects journal verbosity: each experiment's metrics
//! registry keeps the most recent `N` events (takeovers, drops, …) and
//! includes them in the emitted MetricsReport JSON; without it only
//! counters and histograms are reported.
//!
//! Every run appends a wall-clock-per-figure record to `BENCH_sim.json`
//! (in `--csv DIR` when given, else the working directory), growing the
//! repo's perf trajectory.

use std::time::Instant;

use tap_sim::cli::{self, Cli};
use tap_sim::{experiments, Scale, Series};

fn fail_usage(err: &str) -> ! {
    eprintln!("tap-sim: {err}");
    eprintln!("{}", cli::USAGE);
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed: Cli = cli::parse(&args).unwrap_or_else(|e| fail_usage(&e));
    let threads = parsed.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let scale = parsed.scale.with_threads(threads);

    type Job = (&'static str, fn(&Scale) -> Series);
    let jobs: Vec<Job> = vec![
        ("fig2", experiments::node_failures::run),
        ("fig3", experiments::collusion::run),
        ("fig4a", experiments::sweeps::by_replication),
        ("fig4b", experiments::sweeps::by_length),
        ("fig5", experiments::churn::run),
        ("fig6", experiments::latency::run),
        ("secure", experiments::secure_routing::run),
        ("resilience", experiments::resilience::run),
        ("throughput", experiments::throughput::run),
    ];
    let selected: Vec<&Job> = if parsed.which == "all" {
        jobs.iter().collect()
    } else {
        jobs.iter().filter(|(n, _)| *n == parsed.which).collect()
    };

    // Figures run one at a time; the parallelism lives *inside* each
    // figure's trial pool, so the per-figure wall-clock below is honest.
    // `VmHWM` is a process-lifetime high-water mark — monotone, so
    // sampling it *after* each figure attributes every earlier figure's
    // peak to every later one (in an `all` run each row just restates the
    // run maximum). Instead each figure reports the HWM *increment* across
    // it: how much this figure grew the process peak. Zero means the
    // figure fit inside memory some earlier figure already touched.
    let mut wall: Vec<FigureRecord> = Vec::new();
    let mut io_errors = 0usize;
    for (name, job) in &selected {
        // The multipath comparison is a different workload (two phases per
        // trial, a ~9 KB payload) — record it under its own figure name so
        // bench_gate.py never compares it against classic-sweep baselines.
        let name: &'static str = if *name == "resilience" && scale.mp_n > 0 {
            "resilience_mp"
        } else {
            name
        };
        let rss_before = peak_rss_kb();
        let start = Instant::now();
        let series = job(&scale);
        let took = start.elapsed();
        let rss_delta_kb = peak_rss_kb()
            .zip(rss_before)
            .map(|(after, before)| after.saturating_sub(before));
        println!("{series}");
        println!(
            "({name}: {} rows in {took:.2?}, N={}, tunnels={}, threads={})\n",
            series.rows.len(),
            scale.nodes,
            scale.tunnels,
            threads
        );
        if let Some(json) = &series.metrics_json {
            println!("metrics {name} {json}\n");
        }
        if let Some(dir) = &parsed.csv_dir {
            // A bad --csv path must not cost the minutes of simulation that
            // produced the figure: report and keep going, exit nonzero later.
            if let Err(e) = write_series_outputs(dir, name, &series) {
                eprintln!("tap-sim: {e}");
                io_errors += 1;
            }
        }
        wall.push(FigureRecord {
            name,
            wall_s: took.as_secs_f64(),
            rss_delta_kb,
            extras: series.bench_extras.clone(),
        });
    }
    let peak_rss_kb = peak_rss_kb();

    let bench_path = match &parsed.csv_dir {
        Some(dir) => format!("{dir}/BENCH_sim.json"),
        None => "BENCH_sim.json".to_string(),
    };
    match append_bench_record(&bench_path, &scale, parsed.paper, &wall, peak_rss_kb) {
        Ok(()) => println!("wrote {bench_path}"),
        Err(e) => {
            eprintln!("tap-sim: {e}");
            io_errors += 1;
        }
    }
    if io_errors > 0 {
        eprintln!("tap-sim: {io_errors} output file(s) could not be written");
        std::process::exit(1);
    }
}

/// Write `<dir>/<name>.csv` (and `.metrics.json` when present), reporting
/// any I/O failure as a readable error instead of a panic.
fn write_series_outputs(dir: &str, name: &str, series: &Series) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create csv dir {dir:?}: {e}"))?;
    let path = format!("{dir}/{name}.csv");
    std::fs::write(&path, series.to_csv()).map_err(|e| format!("write {path:?}: {e}"))?;
    println!("wrote {path}");
    if let Some(json) = &series.metrics_json {
        let mpath = format!("{dir}/{name}.metrics.json");
        std::fs::write(&mpath, json).map_err(|e| format!("write {mpath:?}: {e}"))?;
        println!("wrote {mpath}");
    }
    Ok(())
}

/// Peak resident set size of this process in kilobytes, read from
/// `/proc/self/status` `VmHWM` (Linux; `None` on other platforms, which
/// simply omits the memory fields from the bench record).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// One figure's bench-record entry: wall-clock, the `VmHWM` increment the
/// figure is responsible for, and any figure-reported extras (e.g. the
/// throughput figure's `events_per_sec`).
struct FigureRecord {
    name: &'static str,
    wall_s: f64,
    rss_delta_kb: Option<u64>,
    extras: Vec<(String, f64)>,
}

/// Append this run's wall-clock + peak-RSS record to the `BENCH_sim.json`
/// trajectory (a JSON array of run records; created on first run,
/// rewritten from scratch if unreadable or malformed).
fn append_bench_record(
    path: &str,
    scale: &Scale,
    paper: bool,
    wall: &[FigureRecord],
    peak_rss_kb: Option<u64>,
) -> Result<(), String> {
    let figures = wall
        .iter()
        .map(|fig| {
            let mut obj = format!("{{\"name\":\"{}\",\"wall_s\":{:.3}", fig.name, fig.wall_s);
            if let Some(kb) = fig.rss_delta_kb {
                obj.push_str(&format!(",\"rss_delta_mb\":{:.1}", kb as f64 / 1024.0));
            }
            for (key, value) in &fig.extras {
                obj.push_str(&format!(",\"{key}\":{value:.3}"));
            }
            obj.push('}');
            obj
        })
        .collect::<Vec<_>>()
        .join(",");
    let total: f64 = wall.iter().map(|f| f.wall_s).sum();
    let peak_field = peak_rss_kb
        .map(|kb| format!(",\"peak_rss_mb\":{:.1}", kb as f64 / 1024.0))
        .unwrap_or_default();
    let record = format!(
        "{{\"bench\":\"tap-sim\",\"preset\":\"{}\",\"nodes\":{},\"tunnels\":{},\
         \"seed\":{},\"threads\":{},\"figures\":[{figures}],\"total_wall_s\":{total:.3}{peak_field}}}",
        if paper { "paper" } else { "quick" },
        scale.nodes,
        scale.tunnels,
        scale.seed,
        scale.threads,
    );
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(head) if trimmed.starts_with('[') => {
                    let head = head.trim_end();
                    let sep = if head.ends_with('[') { "" } else { ",\n" };
                    format!("{head}{sep}{record}\n]\n")
                }
                _ => format!("[\n{record}\n]\n"),
            }
        }
        Err(_) => format!("[\n{record}\n]\n"),
    };
    std::fs::write(path, body).map_err(|e| format!("write {path:?}: {e}"))
}
