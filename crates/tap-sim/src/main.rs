//! `tap-sim` — regenerate the TAP paper's figures from the command line.
//!
//! ```text
//! tap-sim <fig2|fig3|fig4a|fig4b|fig5|fig6|secure|all> \
//!         [--paper] [--seed N] [--nodes N] [--tunnels N] [--journal N] [--csv DIR]
//! ```
//!
//! Default scale is `quick` (seconds); `--paper` runs the published
//! parameters (10^4 nodes, 5 000 tunnels, 30×1 000 transfers — minutes).
//! `--journal N` selects journal verbosity: each experiment's metrics
//! registry keeps the most recent `N` events (takeovers, drops, …) and
//! includes them in the emitted MetricsReport JSON; without it only
//! counters and histograms are reported.
//! `all` runs the experiments on parallel threads (they are independent
//! deterministic simulations) and prints the figures in order.

use std::io::Write;

use tap_sim::{experiments, Scale, Series};

fn usage() -> ! {
    eprintln!(
        "usage: tap-sim <fig2|fig3|fig4a|fig4b|fig5|fig6|secure|all> \
       [--paper] [--seed N] [--nodes N] [--tunnels N] [--journal N] [--csv DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut which = None;
    let mut scale = Scale::quick();
    let mut csv_dir: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--paper" => scale = Scale::paper(),
            "--seed" => {
                let v = iter.next().unwrap_or_else(|| usage());
                scale = scale.with_seed(v.parse().unwrap_or_else(|_| usage()));
            }
            "--nodes" => {
                let v = iter.next().unwrap_or_else(|| usage());
                scale.nodes = v.parse().unwrap_or_else(|_| usage());
            }
            "--tunnels" => {
                let v = iter.next().unwrap_or_else(|| usage());
                scale.tunnels = v.parse().unwrap_or_else(|_| usage());
            }
            "--journal" => {
                let v = iter.next().unwrap_or_else(|| usage());
                scale.journal_cap = v.parse().unwrap_or_else(|_| usage());
            }
            "--csv" => {
                csv_dir = Some(iter.next().unwrap_or_else(|| usage()).clone());
            }
            name if which.is_none() && !name.starts_with('-') => {
                which = Some(name.to_string());
            }
            _ => usage(),
        }
    }
    let which = which.unwrap_or_else(|| usage());

    type Job = (&'static str, fn(&Scale) -> Series);
    let jobs: Vec<Job> = vec![
        ("fig2", experiments::node_failures::run),
        ("fig3", experiments::collusion::run),
        ("fig4a", experiments::sweeps::by_replication),
        ("fig4b", experiments::sweeps::by_length),
        ("fig5", experiments::churn::run),
        ("fig6", experiments::latency::run),
        ("secure", experiments::secure_routing::run),
    ];

    let selected: Vec<&Job> = if which == "all" {
        jobs.iter().collect()
    } else {
        let j: Vec<_> = jobs.iter().filter(|(n, _)| *n == which).collect();
        if j.is_empty() {
            usage();
        }
        j
    };

    // The experiments share nothing and are deterministic per scale:
    // run them on parallel threads, print in submission order.
    let results: Vec<(&str, Series, std::time::Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = selected
            .iter()
            .map(|(name, job)| {
                let scale = scale;
                scope.spawn(move || {
                    let start = std::time::Instant::now();
                    let series = job(&scale);
                    (*name, series, start.elapsed())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    });

    for (name, series, took) in results {
        println!("{series}");
        println!(
            "({name}: {} rows in {took:.2?}, N={}, tunnels={})\n",
            series.rows.len(),
            scale.nodes,
            scale.tunnels
        );
        if let Some(json) = &series.metrics_json {
            println!("metrics {name} {json}\n");
        }
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{name}.csv");
            let mut f = std::fs::File::create(&path).expect("create csv file");
            f.write_all(series.to_csv().as_bytes()).expect("write csv");
            println!("wrote {path}");
            if let Some(json) = &series.metrics_json {
                let mpath = format!("{dir}/{name}.metrics.json");
                std::fs::write(&mpath, json).expect("write metrics json");
                println!("wrote {mpath}");
            }
        }
    }
}
