//! Result containers and text rendering.
//!
//! Every experiment emits a [`Series`]: an x-axis, one or more named
//! columns, and optional analytic-model columns. `Display` renders the
//! aligned table the paper's figure would be plotted from; `to_csv` feeds
//! external plotting.

use std::fmt;

/// One row of an experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRow {
    /// The x-axis value (failure fraction, malicious fraction, k, l, time
    /// unit, or network size — per experiment).
    pub x: f64,
    /// One value per column, aligned with [`Series::columns`].
    pub values: Vec<f64>,
}

/// A named family of curves over a shared x-axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Experiment title (e.g. `"Fig. 2 — tunnel failures"`).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Column (curve) names.
    pub columns: Vec<String>,
    /// The measured rows, in x order.
    pub rows: Vec<SeriesRow>,
    /// Structured observability: the `tap_metrics::MetricsReport` of the
    /// run that produced this series, serialized to JSON.
    pub metrics_json: Option<String>,
    /// Wall-clock-derived performance extras (e.g. `events_per_sec`) for
    /// the `BENCH_sim.json` record of this figure. Deliberately *not* part
    /// of the CSV or the printed table: these values vary run to run,
    /// while everything above is byte-reproducible.
    pub bench_extras: Vec<(String, f64)>,
}

impl Series {
    /// An empty series with the given shape.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        columns: Vec<String>,
    ) -> Series {
        Series {
            title: title.into(),
            x_label: x_label.into(),
            columns,
            rows: Vec::new(),
            metrics_json: None,
            bench_extras: Vec::new(),
        }
    }

    /// Append a row; panics if the value count does not match the columns.
    pub fn push(&mut self, x: f64, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push(SeriesRow { x, values });
    }

    /// The values of a named column, in row order.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| r.values[idx]).collect())
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for c in &self.columns {
            out.push(',');
            out.push_str(&c.replace(',', ";"));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format_num(r.x));
            for v in &r.values {
                out.push(',');
                out.push_str(&format_num(*v));
            }
            out.push('\n');
        }
        out
    }
}

fn format_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        // Column widths: max of header and any value rendering.
        let headers: Vec<&str> = std::iter::once(self.x_label.as_str())
            .chain(self.columns.iter().map(String::as_str))
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                std::iter::once(format_num(r.x))
                    .chain(r.values.iter().map(|v| format!("{v:.4}")))
                    .collect()
            })
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        for (h, w) in headers.iter().zip(widths.iter()) {
            write!(f, "{h:>w$}  ")?;
        }
        writeln!(f)?;
        for (h, w) in headers.iter().zip(widths.iter()) {
            let _ = h;
            write!(f, "{:->w$}  ", "")?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (cell, w) in row.iter().zip(widths.iter()) {
                write!(f, "{cell:>w$}  ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        let mut s = Series::new("Fig. X", "p", vec!["measured".into(), "analytic".into()]);
        s.push(0.1, vec![0.41, 0.40951]);
        s.push(0.2, vec![0.67, 0.67232]);
        s
    }

    #[test]
    fn push_and_column() {
        let s = sample();
        assert_eq!(s.column("measured"), Some(vec![0.41, 0.67]));
        assert_eq!(s.column("missing"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut s = sample();
        s.push(0.3, vec![1.0]);
    }

    #[test]
    fn csv_roundtrippable_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "p,measured,analytic");
        assert!(lines[1].starts_with("0.1"));
        assert_eq!(lines[1].split(',').count(), 3);
    }

    #[test]
    fn display_contains_all_cells() {
        let text = sample().to_string();
        assert!(text.contains("Fig. X"));
        assert!(text.contains("measured"));
        assert!(text.contains("0.6723"));
    }

    #[test]
    fn integer_x_renders_without_decimals() {
        let mut s = Series::new("t", "N", vec!["v".into()]);
        s.push(10_000.0, vec![1.5]);
        assert!(s.to_csv().contains("10000,1.5"));
    }
}
