//! Figure 3 — colluding malicious nodes (§7.2).
//!
//! "We again consider a 10^4 node network, where some of them are
//! malicious and in the same colluding set. We assume the system has 5,000
//! tunnels and randomly choose a fraction p of nodes that are malicious.
//! The tunnel length is 5 … the replication factor k is 3. We first
//! measure the fraction of tunnels that can be corrupted by malicious
//! nodes."
//!
//! Corruption is the paper's case 1: the collusion holds the THAs of every
//! hop of the tunnel (§6). The analytic overlay `(1-(1-p)^k)^l` makes the
//! independence assumption explicit.

use tap_core::Collusion;

use crate::engine::TrialPool;
use crate::experiments::Testbed;
use crate::report::Series;
use crate::Scale;

/// Malicious fractions swept (the paper's x-axis).
pub const MALICIOUS_FRACTIONS: [f64; 6] = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30];

/// Independent collusion draws averaged per point.
const DRAWS: usize = 5;

/// Run the experiment.
pub fn run(scale: &Scale) -> Series {
    let (k, l) = (3, 5);
    let tb = Testbed::build(scale.nodes, scale.tunnels, k, l, scale.seed ^ 0xF163);
    tb.apply_journal(scale);
    let hop_lists = tb.hop_id_lists();

    let mut series = Series::new(
        "Fig. 3 — corrupted tunnels vs. fraction of malicious nodes (k=3, l=5)",
        "malicious_fraction",
        vec!["corrupted".into(), "analytic".into()],
    );

    // One trial per malicious fraction: collusion draws come from the
    // trial's RNG substream, the testbed is shared read-only.
    let pool = TrialPool::new(scale, "fig3");
    let tb_ref = &tb;
    let rows = pool.run(MALICIOUS_FRACTIONS.to_vec(), |_idx, &p, rng| {
        let mut total = 0.0;
        for _ in 0..DRAWS {
            let collusion = Collusion::mark_fraction(&tb_ref.overlay, rng, p);
            total += collusion.corruption_rate(&tb_ref.thas, &hop_lists, false);
        }
        let analytic = (1.0 - (1.0 - p).powi(k as i32)).powi(l as i32);
        vec![total / DRAWS as f64, analytic]
    });
    for (&p, row) in MALICIOUS_FRACTIONS.iter().zip(rows) {
        series.push(p, row);
    }
    series.metrics_json = Some(tb.metrics_json());
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            nodes: 600,
            tunnels: 300,
            seed: 99,
            ..Scale::quick()
        }
    }

    #[test]
    fn figure3_shapes() {
        let s = run(&tiny());
        assert_eq!(s.rows.len(), MALICIOUS_FRACTIONS.len());
        let measured = s.column("corrupted").unwrap();

        // Monotone (weakly) increasing in p.
        for w in measured.windows(2) {
            assert!(
                w[1] + 0.02 >= w[0],
                "corruption should grow with p: {measured:?}"
            );
        }
        // "There is no significant tunnels corrupted even if p is large
        // enough (e.g., 0.3)": the paper's own plot tops out well under
        // one-fifth of tunnels.
        assert!(
            *measured.last().unwrap() < 0.25,
            "corruption at p=0.3 should stay small: {measured:?}"
        );
        // Early points are near zero.
        assert!(measured[0] < 0.01, "p=0.05 point: {}", measured[0]);
    }

    #[test]
    fn figure3_tracks_analytic_model() {
        let s = run(&tiny().with_seed(123));
        let measured = s.column("corrupted").unwrap();
        let model = s.column("analytic").unwrap();
        for (m, a) in measured.iter().zip(model.iter()) {
            assert!((m - a).abs() < 0.06, "measured {m:.4} vs analytic {a:.4}");
        }
    }
}
