//! Figure 2 — simultaneous node failures/leaves (§7.1).
//!
//! "We consider a 10^4 node network that forms 5,000 tunnels, and randomly
//! choose a fraction p of nodes that fail/leave. After node
//! failures/leaves, we measure the fraction of tunnels that could not
//! function. … the tunnel length is 5."
//!
//! Three curves: the fixed-node *current tunneling* baseline, TAP with
//! k = 3, and TAP with k = 5. A TAP tunnel functions iff every hop still
//! has a live THA replica holder (the post-failure root of the hopid is
//! then guaranteed to be one of them — proven by the transit layer and
//! spot-checked here end-to-end); a baseline tunnel functions iff every
//! relay node survived.

use rand::rngs::StdRng;
use rand::seq::IteratorRandom;

use tap_core::transit::{self, TransitError, TransitOptions};
use tap_core::tunnel::Tunnel;
use tap_core::wire::Destination;
use tap_id::{Id, IdHashSet};
use tap_metrics::Registry;
use tap_pastry::storage::ReplicaStore;

use crate::engine::TrialPool;
use crate::experiments::Testbed;
use crate::report::Series;
use crate::Scale;

/// Failure fractions swept (the paper's x-axis).
pub const FAILURE_FRACTIONS: [f64; 10] =
    [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50];

/// How many tunnels per point get the full cryptographic transit check on
/// a cloned overlay (agreement with the membership predicate is asserted).
const SPOT_CHECKS: usize = 25;

/// Run the experiment.
pub fn run(scale: &Scale) -> Series {
    let l = 5;
    // One overlay and one set of hopids; two stores at k=3 and k=5 so the
    // curves compare the replication factor on identical tunnels.
    let mut tb = Testbed::build(scale.nodes, scale.tunnels, 3, l, scale.seed ^ 0xF162);
    tb.apply_journal(scale);
    let thas_k5 = reinsert_with_k(&tb, 5);

    // Baseline: fixed-node tunnels of the same length, same initiators.
    let baselines: Vec<Vec<Id>> = tb
        .tunnels
        .iter()
        .map(|t| {
            let mut relays = Vec::with_capacity(l);
            let mut used: IdHashSet = IdHashSet::default();
            used.insert(t.initiator);
            while relays.len() < l {
                let n = tb.overlay.random_node(&mut tb.rng).expect("non-empty");
                if used.insert(n) {
                    relays.push(n);
                }
            }
            relays
        })
        .collect();

    let mut series = Series::new(
        "Fig. 2 — failed tunnels vs. fraction of failed nodes (N nodes, 5-hop tunnels)",
        "failed_fraction",
        vec![
            "current_tunneling".into(),
            "tap_k3".into(),
            "tap_k5".into(),
            "analytic_current".into(),
            "analytic_k3".into(),
            "analytic_k5".into(),
        ],
    );

    let all_ids: Vec<Id> = tb.overlay.ids().collect();

    // One trial per swept failure fraction. Trials read the shared testbed
    // and draw their dead sets from private RNG substreams, so the sweep
    // parallelizes with bit-identical results at any thread count.
    let pool = TrialPool::new(scale, "fig2");
    let tb_ref = &tb;
    let trials = pool.run(
        FAILURE_FRACTIONS.to_vec(),
        |_idx, &p, rng: &mut StdRng| -> (Vec<f64>, Registry) {
            let trial_metrics = Registry::new();
            crate::experiments::apply_journal(&trial_metrics, scale);
            let dead_count = ((scale.nodes as f64) * p).round() as usize;
            let dead: IdHashSet = all_ids
                .iter()
                .copied()
                .choose_multiple(rng, dead_count)
                .into_iter()
                .collect();

            let mut surveyed = 0usize;
            let mut base_failed = 0usize;
            let mut k3_failed = 0usize;
            let mut k5_failed = 0usize;
            for (t, relays) in tb_ref.tunnels.iter().zip(baselines.iter()) {
                if dead.contains(&t.initiator) {
                    continue; // the user is gone; its tunnel is moot, not failed
                }
                surveyed += 1;
                if relays.iter().any(|r| dead.contains(r)) {
                    base_failed += 1;
                }
                if tunnel_broken(&tb_ref.thas, t.hop_ids().as_slice(), &dead) {
                    k3_failed += 1;
                }
                if tunnel_broken(&thas_k5, t.hop_ids().as_slice(), &dead) {
                    k5_failed += 1;
                }
            }

            spot_check_with_transit(tb_ref, &trial_metrics, &dead, rng);

            let n = surveyed.max(1) as f64;
            let row = vec![
                base_failed as f64 / n,
                k3_failed as f64 / n,
                k5_failed as f64 / n,
                1.0 - (1.0 - p).powi(l as i32),
                1.0 - (1.0 - p.powi(3)).powi(l as i32),
                1.0 - (1.0 - p.powi(5)).powi(l as i32),
            ];
            (row, trial_metrics)
        },
    );
    for (&p, (row, trial_metrics)) in FAILURE_FRACTIONS.iter().zip(trials) {
        series.push(p, row);
        tb.metrics.merge(&trial_metrics);
    }
    series.metrics_json = Some(tb.metrics_json());
    series
}

/// A TAP tunnel is broken iff some hop lost *every* replica holder.
pub fn tunnel_broken(
    thas: &ReplicaStore<tap_core::tha::Tha>,
    hop_ids: &[Id],
    dead: &IdHashSet,
) -> bool {
    hop_ids
        .iter()
        .any(|h| thas.holders(*h).iter().all(|holder| dead.contains(holder)))
}

/// Rebuild the THA store with a different replication factor over the same
/// hopids (same overlay, same tunnels).
fn reinsert_with_k(tb: &Testbed, k: usize) -> ReplicaStore<tap_core::tha::Tha> {
    let mut store = ReplicaStore::new(k);
    store.use_metrics(tb.metrics.clone());
    for t in &tb.tunnels {
        for h in &t.hops {
            store
                .insert(&tb.overlay, h.hopid, h.stored())
                .expect("testbed overlay is non-empty");
        }
    }
    store
}

/// Drive a subsample of tunnels through real onion transit on a cloned
/// overlay with the dead set actually removed, and assert the result
/// agrees with [`tunnel_broken`]. Keeps the fast predicate honest.
///
/// Reads the shared testbed only; the overlay clone records into the
/// trial's private registry so parallel trials never contend.
fn spot_check_with_transit(
    tb: &Testbed,
    trial_metrics: &Registry,
    dead: &IdHashSet,
    rng: &mut StdRng,
) {
    // Copy-on-write: the clone shares every node handle with the testbed
    // overlay, so this costs O(N) pointer bumps and the sweep point pays
    // only for the nodes the batch removal below actually repairs.
    let mut overlay = tb.overlay.clone();
    overlay.use_metrics(trial_metrics.clone());
    // Sorted removal: HashSet iteration order varies per instance, and the
    // repair work each removal triggers must not. The batch API detaches
    // the whole dead set first and repairs each survivor exactly once.
    let mut dead_sorted: Vec<Id> = dead.iter().copied().collect();
    dead_sorted.sort();
    overlay.remove_nodes(&dead_sorted);
    let checks = tb.tunnels.len().min(SPOT_CHECKS);
    for i in 0..checks {
        let t = &tb.tunnels[i];
        if dead.contains(&t.initiator) {
            continue;
        }
        let tunnel = Tunnel::new(t.hops.clone());
        let probe_key = Id::random(rng);
        let onion = tunnel.build_onion(rng, Destination::KeyRoot(probe_key), b"fig2-probe", None);
        let outcome = transit::drive(
            &mut overlay,
            &tb.thas,
            t.initiator,
            tunnel.entry_hopid(),
            onion,
            TransitOptions::default(),
        );
        let predicted_broken = tunnel_broken(&tb.thas, &t.hop_ids(), dead);
        match outcome {
            Ok(_) => assert!(
                !predicted_broken,
                "transit succeeded but predicate says broken"
            ),
            Err(TransitError::ThaLost { .. }) => assert!(
                predicted_broken,
                "transit lost a THA but predicate says intact"
            ),
            Err(e) => panic!("unexpected transit failure in spot check: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            nodes: 400,
            tunnels: 120,
            seed: 42,
            ..Scale::quick()
        }
    }

    #[test]
    fn figure2_shapes() {
        let s = run(&tiny());
        assert_eq!(s.rows.len(), FAILURE_FRACTIONS.len());
        let base = s.column("current_tunneling").unwrap();
        let k3 = s.column("tap_k3").unwrap();
        let k5 = s.column("tap_k5").unwrap();

        // Baseline climbs steeply: at p = 0.5 most 5-hop tunnels are dead.
        assert!(base.last().unwrap() > &0.85, "baseline at p=0.5: {base:?}");
        // "In TAP, there is no significant tunnel failure." At this tiny
        // scale (400 nodes, ~115 surveyed tunnels) leafset-correlated
        // replica holders cluster failures, so a hard absolute cutoff is
        // ~1 sigma from the analytic mean at p = 0.20; assert tracking of
        // the 1-(1-p^3)^5 model at every point instead.
        let model_k3 = s.column("analytic_k3").unwrap();
        for (p, (m, a)) in FAILURE_FRACTIONS.iter().zip(k3.iter().zip(model_k3.iter())) {
            assert!(
                (m - a).abs() < 0.12,
                "k3 diverges from 1-(1-p^3)^5 at p={p}: {m} vs {a}"
            );
        }
        // And at the smallest failure fractions it is essentially zero.
        assert!(
            k3.iter().take(2).all(|v| *v < 0.03),
            "k3 early points {k3:?}"
        );
        // Higher k is (weakly) more robust at every point.
        for (a, b) in k5.iter().zip(k3.iter()) {
            assert!(a <= b, "k5 must not fail more than k3");
        }
        // TAP always (weakly) beats the baseline.
        for (t, b) in k3.iter().zip(base.iter()) {
            assert!(t <= b);
        }
    }

    #[test]
    fn figure2_tracks_analytic_model() {
        let s = run(&tiny().with_seed(7));
        let base = s.column("current_tunneling").unwrap();
        let model = s.column("analytic_current").unwrap();
        for (m, a) in base.iter().zip(model.iter()) {
            assert!(
                (m - a).abs() < 0.12,
                "baseline diverges from 1-(1-p)^5: {m} vs {a}"
            );
        }
    }

    #[test]
    fn tunnel_broken_predicate() {
        let tb = Testbed::build(150, 5, 3, 3, 3);
        let t = &tb.tunnels[0];
        let mut dead = IdHashSet::default();
        assert!(!tunnel_broken(&tb.thas, &t.hop_ids(), &dead));
        // Kill every holder of the first hop.
        for h in tb.thas.holders(t.hop_ids()[0]) {
            dead.insert(*h);
        }
        assert!(tunnel_broken(&tb.thas, &t.hop_ids(), &dead));
        // One survivor rescues the hop.
        let revived = *tb.thas.holders(t.hop_ids()[0]).first().unwrap();
        dead.remove(&revived);
        assert!(!tunnel_broken(&tb.thas, &t.hop_ids(), &dead));
    }
}
