//! Extension experiment — secure routing to a hopid (§9's open problem).
//!
//! Not a figure in the ICPP paper (which defers secure routing to the
//! authors' extended report); this experiment quantifies the three
//! mechanisms `tap-pastry::secure` provides, under both adversarial
//! forwarding behaviours:
//!
//! * **naive** — plain Pastry routing, one copy;
//! * **redundant** — fanout-8 copies scattered through random relays with
//!   the certified-id plausibility test;
//! * **iterative** — source-controlled lookup that ring-walks around
//!   unresponsive nodes.
//!
//! "Success" means reaching the closest *responsive* node to the key —
//! exactly the node that can serve a THA replica.

use rand::seq::IteratorRandom;

use tap_id::Id;
use tap_pastry::secure::{
    adversarial_route, iterative_secure_lookup, redundant_route, AttemptOutcome, BehaviorMap,
    NodeBehavior,
};
use tap_pastry::{Overlay, PastryConfig};

use crate::engine::TrialPool;
use crate::report::Series;
use crate::Scale;

/// Malicious fractions swept.
pub const MALICIOUS_FRACTIONS: [f64; 5] = [0.05, 0.10, 0.20, 0.30, 0.40];

/// Redundant-routing fanout.
pub const FANOUT: usize = 8;

/// Trials per point.
const TRIALS: usize = 120;

/// Run the experiment for dropping adversaries (the harder case; against
/// misrouters the plausibility test alone is already decisive).
pub fn run(scale: &Scale) -> Series {
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(scale.seed ^ 0x5EC);
    let metrics = tap_metrics::Registry::new();
    super::apply_journal(&metrics, scale);
    let mut overlay = Overlay::new(PastryConfig::paper_defaults());
    overlay.use_metrics(metrics.clone());
    for _ in 0..scale.nodes {
        overlay.add_random_node(&mut rng);
    }

    let mut series = Series::new(
        "Extension — secure routing success vs. malicious (dropping) fraction",
        "malicious_fraction",
        vec![
            "naive".into(),
            "redundant_f8".into(),
            "iterative".into(),
            "redundant_cost_hops".into(),
            "iterative_cost_queries".into(),
        ],
    );

    // One trial per malicious fraction: each clones the shared overlay
    // (the routing mechanisms take `&mut`) and records into a private
    // registry folded back in trial order. The clone is copy-on-write —
    // O(N) Arc bumps up front, and a trial pays full copies only for the
    // node handles its lazy table evictions actually touch.
    let pool = TrialPool::new(scale, "secure");
    let overlay_ref = &overlay;
    let trials = pool.run(MALICIOUS_FRACTIONS.to_vec(), |_idx, &p, rng| {
        let trial_metrics = tap_metrics::Registry::new();
        super::apply_journal(&trial_metrics, scale);
        let mut overlay = overlay_ref.clone();
        overlay.use_metrics(trial_metrics.clone());
        let count = (overlay.len() as f64 * p).round() as usize;
        let behavior: BehaviorMap = overlay
            .ids()
            .choose_multiple(rng, count)
            .into_iter()
            .map(|id| (id, NodeBehavior::Drop))
            .collect();

        let mut naive_ok = 0usize;
        let mut redundant_ok = 0usize;
        let mut iterative_ok = 0usize;
        let mut redundant_hops = 0usize;
        let mut iterative_queries = 0usize;
        for _ in 0..TRIALS {
            let from = loop {
                let f = overlay.random_node(rng).expect("non-empty");
                if !behavior.contains_key(&f) {
                    break f;
                }
            };
            let key = Id::random(rng);
            let want = closest_responsive(&overlay, &behavior, key);

            if let AttemptOutcome::Claimed { root, .. } =
                adversarial_route(&mut overlay, &behavior, from, key).expect("routes")
            {
                if root == want {
                    naive_ok += 1;
                }
            }
            if let Ok(out) = redundant_route(&mut overlay, &behavior, rng, from, key, FANOUT) {
                redundant_hops += out.total_hops;
                if out.root == want {
                    redundant_ok += 1;
                }
            }
            if let Ok(out) = iterative_secure_lookup(&mut overlay, &behavior, from, key, 200) {
                iterative_queries += out.queries;
                if out.root == want {
                    iterative_ok += 1;
                }
            }
        }
        let row = vec![
            naive_ok as f64 / TRIALS as f64,
            redundant_ok as f64 / TRIALS as f64,
            iterative_ok as f64 / TRIALS as f64,
            redundant_hops as f64 / TRIALS as f64,
            iterative_queries as f64 / TRIALS as f64,
        ];
        (row, trial_metrics)
    });
    for (&p, (row, trial_metrics)) in MALICIOUS_FRACTIONS.iter().zip(trials) {
        series.push(p, row);
        metrics.merge(&trial_metrics);
    }
    series.metrics_json = Some(metrics.snapshot().to_json());
    series
}

/// The closest node to `key` that answers queries (droppers excluded).
/// `closest_iter` walks the ring nearest-first lazily, so this stops after
/// ~1/(1-p) candidates instead of sorting the whole population per call.
fn closest_responsive(overlay: &Overlay, behavior: &BehaviorMap, key: Id) -> Id {
    overlay
        .closest_iter(key)
        .find(|n| !matches!(behavior.get(n), Some(NodeBehavior::Drop)))
        .expect("somebody is honest")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            nodes: 500,
            tunnels: 1,
            seed: 31,
            ..Scale::quick()
        }
    }

    #[test]
    fn mechanisms_rank_as_designed() {
        let s = run(&tiny());
        let naive = s.column("naive").unwrap();
        let redundant = s.column("redundant_f8").unwrap();
        let iterative = s.column("iterative").unwrap();
        for i in 0..s.rows.len() {
            assert!(
                iterative[i] + 0.03 >= redundant[i],
                "row {i}: iterative {} vs redundant {}",
                iterative[i],
                redundant[i]
            );
            assert!(
                redundant[i] + 0.05 >= naive[i],
                "row {i}: redundant {} vs naive {}",
                redundant[i],
                naive[i]
            );
        }
        // Iterative is near-perfect even at 40% droppers.
        assert!(
            *iterative.last().unwrap() > 0.9,
            "iterative at p=0.4: {iterative:?}"
        );
        // Naive degrades visibly by then.
        assert!(
            *naive.last().unwrap() < *iterative.last().unwrap(),
            "naive should trail iterative at p=0.4"
        );
    }

    #[test]
    fn security_has_a_cost() {
        let s = run(&tiny().with_seed(32));
        let hops = s.column("redundant_cost_hops").unwrap();
        let queries = s.column("iterative_cost_queries").unwrap();
        // Redundant copies cost several times a single route; iterative
        // queries grow as droppers waste probes.
        assert!(hops.iter().all(|h| *h > 4.0), "{hops:?}");
        assert!(
            queries.last().unwrap() > queries.first().unwrap(),
            "query cost should grow with the dropper fraction: {queries:?}"
        );
    }
}
