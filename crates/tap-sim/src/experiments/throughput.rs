//! Throughput figure — sustained transfers/sec and delivery latency vs.
//! offered load, on the region-sharded event loop.
//!
//! Not a figure of the paper: this is the repo's scalability check for the
//! netsim core (calendar-queue scheduler + [`ShardedNetwork`]). The
//! workload is a two-hop relay — the smallest shape that exercises both
//! queue churn *and* cross-shard traffic: every transfer `i` picks a
//! deterministic `(src, relay, dst)` triple, launches during a 100 ms ramp,
//! and completes when the second hop is delivered. Offered load sweeps
//! `nodes × {1, 2, 5, 10}` concurrent transfers, so the top point of a
//! `--nodes 100000` run keeps one million transfers in flight at once.
//!
//! Everything in the CSV (transfers/sec over *virtual* time, p50/p99
//! delivery latency) is a pure function of `(seed, nodes, shards→same)` —
//! byte-identical at any `--threads` and `--shards` (see
//! `tests/determinism.rs`). The wall-clock events/sec figure is *not*
//! reproducible run to run, so it travels in [`Series::bench_extras`] and
//! lands only in `BENCH_sim.json`, where `scripts/bench_gate.py` holds a
//! floor under it.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use tap_metrics::Registry;
use tap_netsim::latency::UniformLatency;
use tap_netsim::{EndpointId, Event, NetworkConfig, ShardCtx, ShardedNetwork, SimTime, TimerToken};

use crate::engine::substream_seed;
use crate::report::Series;
use crate::Scale;

/// Bytes per hop of a transfer: one full 1250-byte packet.
pub const TRANSFER_BYTES: u64 = 1_250;

/// Launch ramp: all transfers of a load point start within this window.
pub const RAMP_US: u64 = 100_000;

/// Offered-load sweep, as multiples of the node count.
pub const LOAD_MULTIPLIERS: [usize; 4] = [1, 2, 5, 10];

/// The shard count a [`Scale`] selects: `0` means "auto" (8, clamped to
/// the node count by [`ShardedNetwork::new`]).
pub fn effective_shards(scale: &Scale) -> usize {
    if scale.shards == 0 {
        8
    } else {
        scale.shards
    }
}

/// The swept offered-load points for a network of `nodes` endpoints.
pub fn offered_loads(nodes: usize) -> Vec<usize> {
    LOAD_MULTIPLIERS.iter().map(|m| m * nodes).collect()
}

/// `splitmix64` — the counter-stream primitive behind every route draw:
/// routes are pure functions of `(seed, transfer index)`, never of
/// scheduling order.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The `(src, relay, dst)` triple of transfer `i` — three distinct
/// endpoints, derived only from `(seed, i)`.
fn route(seed: u64, i: u64, nodes: usize) -> (usize, usize, usize) {
    debug_assert!(nodes >= 3, "a two-hop relay needs three distinct endpoints");
    let h0 = splitmix64(seed ^ i.wrapping_mul(0x2545_f491_4f6c_dd1d));
    let h1 = splitmix64(h0);
    let h2 = splitmix64(h1);
    let src = (h0 % nodes as u64) as usize;
    let relay = (src + 1 + (h1 % (nodes as u64 - 1)) as usize) % nodes;
    let mut dst = (h2 % nodes as u64) as usize;
    while dst == src || dst == relay {
        dst = (dst + 1) % nodes;
    }
    (src, relay, dst)
}

/// The virtual launch time of transfer `i` out of `total`, inside the ramp.
fn launch_us(i: u64, total: u64) -> u64 {
    i * RAMP_US / total
}

/// One load point's outcome, in virtual time.
struct LoadPoint {
    /// Delivery latency (launch → second-hop delivery) per transfer, µs,
    /// in transfer-index order.
    latencies_us: Vec<u64>,
    /// Virtual time of the last delivery, µs.
    makespan_us: u64,
    /// Events the sharded loop handed to handlers.
    events: u64,
}

/// Drive one offered-load point to quiescence and collect per-transfer
/// completion times. Deterministic at any shard/thread count.
fn run_load_point(scale: &Scale, transfers: usize, seed: u64, metrics: &Registry) -> LoadPoint {
    let nodes = scale.nodes;
    let shards = effective_shards(scale);
    let mut net: ShardedNetwork<u64, UniformLatency> = ShardedNetwork::new(
        NetworkConfig::paper_defaults(),
        UniformLatency::paper(seed ^ 0x7a9),
        nodes,
        shards,
    );
    let total = transfers as u64;
    for i in 0..total {
        let (src, _, _) = route(seed, i, nodes);
        let owner = EndpointId::from_index(src).expect("endpoint index fits u32");
        net.schedule_timer_at(
            owner,
            SimTime::from_micros(launch_us(i, total)),
            TimerToken(i),
        );
    }

    // Completions funnel through one shared vec; sorting by transfer index
    // afterwards erases any thread-interleaving order, so the aggregate is
    // deterministic even though the push order is not.
    let completions: Arc<Mutex<Vec<(u64, u64)>>> =
        Arc::new(Mutex::new(Vec::with_capacity(transfers)));
    let sink = completions.clone();
    let events = net.run(scale.threads.max(1), move |_| {
        let sink = sink.clone();
        move |ctx: &mut ShardCtx<'_, u64, UniformLatency>, ev: Event<u64>| match ev {
            Event::Timer { token, .. } => {
                let (src, relay, _) = route(seed, token.0, nodes);
                let src = EndpointId::from_index(src).expect("index fits");
                let relay = EndpointId::from_index(relay).expect("index fits");
                ctx.send(src, relay, TRANSFER_BYTES, token.0);
            }
            Event::Message(m) => {
                let i = m.payload;
                let (_, relay, dst) = route(seed, i, nodes);
                if m.dst.index() == relay {
                    let relay = EndpointId::from_index(relay).expect("index fits");
                    let dst = EndpointId::from_index(dst).expect("index fits");
                    ctx.send(relay, dst, TRANSFER_BYTES, i);
                } else {
                    debug_assert_eq!(m.dst.index(), dst, "second hop lands on the route's dst");
                    sink.lock()
                        .expect("completion log poisoned")
                        .push((i, m.delivered_at.as_micros()));
                }
            }
        }
    });
    net.fold_metrics(metrics);

    let mut done = Arc::try_unwrap(completions)
        .expect("run() dropped its handlers")
        .into_inner()
        .expect("completion log poisoned");
    assert_eq!(
        done.len(),
        transfers,
        "every transfer completes in a live network"
    );
    done.sort_unstable();
    let makespan_us = done.iter().map(|&(_, at)| at).max().unwrap_or(0);
    let latencies_us = done
        .iter()
        .map(|&(i, at)| at - launch_us(i, total))
        .collect();
    LoadPoint {
        latencies_us,
        makespan_us,
        events,
    }
}

/// Nearest-rank percentile (`q` in (0, 1]) of an unsorted sample, µs.
fn percentile_us(sample: &[u64], q: f64) -> u64 {
    assert!(!sample.is_empty(), "percentile of an empty sample");
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Run the throughput sweep.
pub fn run(scale: &Scale) -> Series {
    let metrics = Registry::new();
    super::apply_journal(&metrics, scale);
    let mut series = Series::new(
        format!(
            "Throughput — sustained transfers/sec and delivery latency vs. offered load \
             ({} nodes, {} shards)",
            scale.nodes,
            effective_shards(scale)
        ),
        "concurrent_transfers",
        vec!["transfers_per_sec".into(), "p50_ms".into(), "p99_ms".into()],
    );

    let wall_start = Instant::now();
    let mut total_events = 0u64;
    for (pi, &load) in offered_loads(scale.nodes).iter().enumerate() {
        let seed = substream_seed(scale.seed, "throughput", pi);
        let point = run_load_point(scale, load, seed, &metrics);
        total_events += point.events;
        let makespan_s = point.makespan_us as f64 / 1e6;
        let tps = load as f64 / makespan_s;
        let p50 = percentile_us(&point.latencies_us, 0.50) as f64 / 1e3;
        let p99 = percentile_us(&point.latencies_us, 0.99) as f64 / 1e3;
        series.push(load as f64, vec![tps, p50, p99]);
    }
    let wall = wall_start.elapsed().as_secs_f64();
    series.metrics_json = Some(metrics.snapshot().to_json());
    series.bench_extras.push((
        "events_per_sec".into(),
        total_events as f64 / wall.max(1e-9),
    ));
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            nodes: 30,
            seed: 11,
            ..Scale::quick()
        }
    }

    #[test]
    fn routes_are_distinct_and_stable() {
        for i in 0..500 {
            let (s, r, d) = route(42, i, 30);
            assert_eq!((s, r, d), route(42, i, 30), "pure function");
            assert!(s != r && r != d && s != d, "transfer {i}: {s} {r} {d}");
            assert!(s < 30 && r < 30 && d < 30);
        }
        // Minimum viable population.
        let (s, r, d) = route(7, 0, 3);
        assert!(s != r && r != d && s != d);
    }

    #[test]
    fn launch_ramp_is_monotone_and_bounded() {
        let total = 1_000;
        for i in 1..total {
            assert!(launch_us(i, total) >= launch_us(i - 1, total));
        }
        assert!(launch_us(total - 1, total) < RAMP_US);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sample, 0.50), 50);
        assert_eq!(percentile_us(&sample, 0.99), 99);
        assert_eq!(percentile_us(&sample, 1.0), 100);
        assert_eq!(percentile_us(&[7], 0.5), 7);
    }

    #[test]
    fn figure_completes_and_reports_sane_numbers() {
        let s = run(&tiny());
        assert_eq!(s.rows.len(), LOAD_MULTIPLIERS.len());
        let tps = s.column("transfers_per_sec").unwrap();
        let p50 = s.column("p50_ms").unwrap();
        let p99 = s.column("p99_ms").unwrap();
        for i in 0..s.rows.len() {
            assert!(tps[i] > 0.0, "row {i}");
            // Two hops of U[1, 230] ms propagation: the fastest possible
            // transfer still takes ≥ 2 ms, and p99 dominates p50.
            assert!(p50[i] >= 2.0, "row {i}: p50 {}", p50[i]);
            assert!(p99[i] >= p50[i], "row {i}");
        }
        // Offered load doubles → completed transfers double over the same
        // ramp, so sustained tps must grow with load.
        assert!(tps[1] > tps[0], "{tps:?}");
        assert!(s
            .metrics_json
            .as_deref()
            .unwrap()
            .contains("netsim.shard.delivered"));
        assert_eq!(s.bench_extras.len(), 1);
        assert_eq!(s.bench_extras[0].0, "events_per_sec");
        assert!(s.bench_extras[0].1 > 0.0);
    }

    #[test]
    fn csv_is_invariant_across_shards_and_threads() {
        let base = run(&tiny()).to_csv();
        let sharded = run(&Scale {
            shards: 3,
            ..tiny()
        });
        assert_eq!(sharded.to_csv(), base, "shard count leaked into results");
        let threaded = run(&Scale {
            threads: 4,
            shards: 5,
            ..tiny()
        });
        assert_eq!(threaded.to_csv(), base, "thread count leaked into results");
    }
}
