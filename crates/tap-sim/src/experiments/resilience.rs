//! Resilience sweep — graceful degradation under injected faults.
//!
//! Not a paper figure: the paper's §7 evaluation assumes fail-stop nodes
//! and a lossless wire. This sweep measures how TAP's tunnel transit (with
//! its delivery-timeout/retry shim and §5 hint fallback) degrades when the
//! wire itself misbehaves: per-link message loss and duplication, a
//! partition/heal cycle through the middle third of the run, and a
//! population of nodes crashed on the wire while the overlay still
//! believes them live.
//!
//! The x axis is the per-link loss probability in permille, swept around
//! the `--faults` center point; each row reports the delivered fraction,
//! resends per transfer, and give-ups per transfer. The `x = 0` row is the
//! fault-free baseline and must deliver everything.
//!
//! Fault injection is seed-deterministic ([`tap_netsim::FaultPlan`] owns
//! its own RNG substream) and each (loss, sim) pair is an independent
//! trial on the figure's [`TrialPool`], so the emitted CSV is
//! byte-identical at any `--threads N`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tap_core::metrics::CoreInstruments;
use tap_core::netdrive::NetDriver;
use tap_core::tha::{Tha, ThaFactory};
use tap_core::transit::{HintCache, TransitError, TransitOptions};
use tap_core::tunnel::Tunnel;
use tap_core::wire::Destination;
use tap_id::Id;
use tap_metrics::Registry;
use tap_netsim::latency::UniformLatency;
use tap_netsim::{EndpointId, FaultPlan, Network, NetworkConfig, SimDuration};
use tap_pastry::storage::ReplicaStore;
use tap_pastry::{Overlay, PastryConfig};

use crate::engine::{substream_seed, TrialPool};
use crate::report::Series;
use crate::Scale;

/// Tunnel length used throughout the sweep (the paper's default l = 3).
const TUNNEL_LENGTH: usize = 3;

/// Send attempts beyond the first before a hop is abandoned.
const RETRY_BUDGET: u32 = 6;

/// The swept loss levels (permille): the fault-free baseline plus points
/// around `center`. `center = 0` collapses to the baseline alone.
pub fn loss_points(center: u32) -> Vec<u32> {
    let mut pts = vec![0, center / 4, center / 2, center, (center * 2).min(1000)];
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// Run the sweep at `scale` (`fault_permille` is the center point).
pub fn run(scale: &Scale) -> Series {
    let metrics = Registry::new();
    super::apply_journal(&metrics, scale);
    let mut series = Series::new(
        "Resilience — tunnel transfer outcomes vs. injected per-link loss (permille)".to_string(),
        "loss_permille",
        vec![
            "delivered_frac".into(),
            "retries_per_xfer".into(),
            "giveups_per_xfer".into(),
        ],
    );

    // Every trial routes over the same membership, and faults live in the
    // wire, not the overlay — so build the overlay once and hand each
    // trial a copy-on-write clone (O(N) Arc bumps, and since nodes never
    // leave the overlay, routing never evicts and nothing unshares).
    let mut base_rng = StdRng::seed_from_u64(substream_seed(scale.seed, "resilience-base", 0));
    let mut base = Overlay::new(PastryConfig::paper_defaults());
    base.use_metrics(metrics.clone());
    let nodes: Vec<Id> = (0..scale.nodes)
        .map(|_| base.add_random_node(&mut base_rng))
        .collect();

    let points = loss_points(scale.fault_permille);
    let sims = scale.latency_sims.max(1);
    let transfers = scale.latency_transfers.max(1);
    let trials: Vec<(u32, usize)> = points
        .iter()
        .flat_map(|&loss| (0..sims).map(move |sim| (loss, sim)))
        .collect();
    let pool = TrialPool::new(scale, "resilience");
    let results = pool.run(trials, |idx, &(loss, _sim), rng| {
        let trial_metrics = Registry::new();
        super::apply_journal(&trial_metrics, scale);
        let delivered = simulate_one(
            &base,
            &nodes,
            transfers,
            loss,
            pool.trial_seed(idx),
            rng,
            &trial_metrics,
        );
        (delivered, trial_metrics)
    });

    let mut results = results.into_iter();
    for &loss in &points {
        let mut delivered = 0usize;
        let point_metrics = Registry::new();
        for _ in 0..sims {
            let (d, trial_metrics) = results.next().expect("one trial per (loss, sim)");
            delivered += d;
            point_metrics.merge(&trial_metrics);
            metrics.merge(&trial_metrics);
        }
        let snap = point_metrics.snapshot();
        let denom = (sims * transfers) as f64;
        series.push(
            f64::from(loss),
            vec![
                delivered as f64 / denom,
                snap.counter("core.transit.retries") as f64 / denom,
                snap.counter("core.transit.giveups") as f64 / denom,
            ],
        );
    }
    series.metrics_json = Some(metrics.snapshot().to_json());
    series
}

/// One simulation: `transfers` hinted tunnel transfers under loss level
/// `loss`, with a partition/heal cycle and a crashed-node window through
/// the middle third, over a copy-on-write clone of the shared base
/// overlay. Returns how many transfers delivered.
fn simulate_one(
    base: &Overlay,
    nodes: &[Id],
    transfers: usize,
    loss: u32,
    seed: u64,
    rng: &mut StdRng,
    metrics: &Registry,
) -> usize {
    let mut overlay = base.clone();
    overlay.use_metrics(metrics.clone());
    let mut net: Network<u64, UniformLatency> = Network::new(
        NetworkConfig::paper_defaults(),
        UniformLatency::paper(seed ^ 0x1a7e),
    );
    net.use_metrics(metrics.clone());
    let mut driver = NetDriver::new(net);
    driver.use_instruments(CoreInstruments::new(metrics));

    let eps: Vec<EndpointId> = nodes.iter().map(|&id| driver.register(id)).collect();
    let mut thas: ReplicaStore<Tha> = ReplicaStore::new(3);
    thas.use_metrics(metrics.clone());

    // loss = 0 is the clean control row: no faults of any kind.
    if loss > 0 {
        driver.network_mut().install_faults(
            FaultPlan::new(seed)
                .with_loss(loss)
                .with_duplication(loss / 5)
                .with_jitter(SimDuration::from_millis(50))
                .with_spike(loss / 10, SimDuration::from_millis(500)),
        );
    }

    // The chaos window covers the middle third of the run: a named cut
    // isolating every 20th endpoint, plus every 50th node crashed on the
    // wire (overlay-live — the split-brain the hint fallback handles).
    let cut_a: Vec<EndpointId> = eps.iter().copied().step_by(20).collect();
    let cut_b: Vec<EndpointId> = eps
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 20 != 0)
        .map(|(_, e)| *e)
        .collect();
    let crashed: Vec<Id> = nodes.iter().copied().skip(7).step_by(50).collect();
    let window = (transfers / 3, 2 * transfers / 3);

    let mut delivered = 0usize;
    for t in 0..transfers {
        if loss > 0 && t == window.0 {
            driver.network_mut().partition("sweep-cut", &cut_a, &cut_b);
            for &id in &crashed {
                driver.kill_node(id);
            }
        }
        if loss > 0 && t == window.1 {
            driver.network_mut().heal("sweep-cut");
            for &id in &crashed {
                driver.revive_node(id);
            }
        }
        if transfer_once(&mut overlay, &mut thas, &mut driver, rng) {
            delivered += 1;
        }
    }
    delivered
}

/// One hinted tunnel transfer between random nodes; true iff it delivered.
fn transfer_once(
    overlay: &mut Overlay,
    thas: &mut ReplicaStore<Tha>,
    driver: &mut NetDriver<UniformLatency>,
    rng: &mut StdRng,
) -> bool {
    let initiator = overlay.random_node(rng).expect("non-empty overlay");
    let mut factory = ThaFactory::new(rng, initiator);
    let mut hops = Vec::with_capacity(TUNNEL_LENGTH);
    while hops.len() < TUNNEL_LENGTH {
        let s = factory.next(rng);
        if thas
            .insert(overlay, s.hopid, s.stored())
            .expect("overlay never empties mid-sweep")
        {
            hops.push(s);
        }
    }
    let tunnel = Tunnel::new(hops);
    let mut hints = HintCache::default();
    hints.refresh(overlay, &tunnel.hop_ids());

    let dest = loop {
        let d = overlay.random_node(rng).expect("non-empty overlay");
        if d != initiator {
            break d;
        }
    };
    let onion = tunnel.build_onion(rng, Destination::Node(dest), b"payload", Some(&hints));
    let outcome = driver.drive_timed_with_hints(
        overlay,
        thas,
        initiator,
        tunnel.entry_hopid(),
        onion,
        0,
        TransitOptions {
            use_hints: true,
            retry_budget: RETRY_BUDGET,
        },
        Some(&mut hints),
    );
    for hopid in tunnel.hop_ids() {
        thas.remove(hopid);
    }
    match outcome {
        Ok(_) => true,
        Err(TransitError::RetriesExhausted { .. }) => false,
        // The overlay itself never changes, so any other transit error
        // would be a harness bug, not an injected fault.
        Err(e) => panic!("unexpected transit failure under faults: {e:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            nodes: 250,
            latency_sims: 1,
            latency_transfers: 24,
            fault_permille: 200,
            seed: 11,
            ..Scale::quick()
        }
    }

    #[test]
    fn loss_points_bracket_the_center() {
        assert_eq!(loss_points(100), vec![0, 25, 50, 100, 200]);
        assert_eq!(loss_points(0), vec![0]);
        assert_eq!(loss_points(800), vec![0, 200, 400, 800, 1000]);
    }

    #[test]
    fn baseline_is_lossless_and_chaos_degrades_gracefully() {
        let s = run(&tiny());
        let delivered = s.column("delivered_frac").unwrap();
        let retries = s.column("retries_per_xfer").unwrap();
        let giveups = s.column("giveups_per_xfer").unwrap();

        // Row 0 is the fault-free control: everything arrives, untouched.
        assert_eq!(s.rows[0].x, 0.0);
        assert_eq!(delivered[0], 1.0);
        assert_eq!(retries[0], 0.0);
        assert_eq!(giveups[0], 0.0);

        // Under faults the shim works for its deliveries…
        let last = delivered.len() - 1;
        assert!(retries[last] > 0.0, "40% loss must force resends");
        // …and degradation is graceful, not a cliff: most transfers still
        // arrive, and every non-delivery is an accounted give-up.
        assert!(delivered[last] > 0.5, "delivered {delivered:?}");
        for i in 0..=last {
            assert!(
                (delivered[i] + giveups[i] - 1.0).abs() < 1e-9,
                "row {i}: delivered {} + giveups {} must cover every transfer",
                delivered[i],
                giveups[i]
            );
        }
    }

    #[test]
    fn faults_zero_turns_the_sweep_off() {
        let s = run(&Scale {
            fault_permille: 0,
            ..tiny()
        });
        assert_eq!(s.rows.len(), 1, "only the control row");
        assert_eq!(s.column("delivered_frac").unwrap()[0], 1.0);
    }
}
