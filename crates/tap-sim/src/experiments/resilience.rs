//! Resilience sweep — graceful degradation under injected faults.
//!
//! Not a paper figure: the paper's §7 evaluation assumes fail-stop nodes
//! and a lossless wire. This sweep measures how TAP's tunnel transit (with
//! its delivery-timeout/retry shim and §5 hint fallback) degrades when the
//! wire itself misbehaves: per-link message loss and duplication, a
//! partition/heal cycle through the middle third of the run, and a
//! population of nodes crashed on the wire while the overlay still
//! believes them live.
//!
//! The x axis is the per-link loss probability in permille, swept around
//! the `--faults` center point; each row reports the delivered fraction,
//! resends per transfer, and give-ups per transfer. The `x = 0` row is the
//! fault-free baseline and must deliver everything.
//!
//! Fault injection is seed-deterministic ([`tap_netsim::FaultPlan`] owns
//! its own RNG substream) and each (loss, sim) pair is an independent
//! trial on the figure's [`TrialPool`], so the emitted CSV is
//! byte-identical at any `--threads N`.
//!
//! **Multipath mode** (`--multipath N/K`, i.e. [`Scale::mp_n`] > 0)
//! switches the figure to a head-to-head comparison at each loss level:
//! the same ~9 KB payload shipped once per transfer as a single-path
//! hinted tunnel transfer with the retry shim (`sp_*` columns) and once as
//! an erasure-coded `(n, k)` stripe set over `n` disjoint tunnels
//! ([`tap_core::multipath::send_striped`], `mp_*` columns). Both phases
//! run under the same fault-plan seed and the same partition/crash window,
//! so every row answers "at this fault level, what did coding buy?":
//! delivered fraction, p99 transfer latency, resends per transfer, and the
//! per-relay exposure (the largest fraction of one transfer's stripes any
//! single relay carried — 1.0 for single-path by construction). With
//! `mp_n = 0` (the default) this mode is fully off and the classic CSV is
//! byte-identical to previous releases.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tap_core::metrics::CoreInstruments;
use tap_core::multipath::{form_disjoint_tunnels, send_striped, MultipathConfig, MultipathError};
use tap_core::netdrive::NetDriver;
use tap_core::tha::{Tha, ThaFactory};
use tap_core::transit::{HintCache, TransitError, TransitOptions};
use tap_core::tunnel::Tunnel;
use tap_core::wire::Destination;
use tap_id::Id;
use tap_metrics::Registry;
use tap_netsim::latency::UniformLatency;
use tap_netsim::{EndpointId, FaultPlan, Network, NetworkConfig, SimDuration};
use tap_pastry::storage::ReplicaStore;
use tap_pastry::{Overlay, PastryConfig};

use crate::engine::{substream_seed, TrialPool};
use crate::report::Series;
use crate::Scale;

/// Tunnel length used throughout the sweep (the paper's default l = 3).
const TUNNEL_LENGTH: usize = 3;

/// Send attempts beyond the first before a hop is abandoned.
const RETRY_BUDGET: u32 = 6;

/// The swept loss levels (permille): the fault-free baseline plus points
/// around `center`. `center = 0` collapses to the baseline alone.
pub fn loss_points(center: u32) -> Vec<u32> {
    let mut pts = vec![0, center / 4, center / 2, center, (center * 2).min(1000)];
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// Payload shipped per transfer in multipath mode, for both the
/// single-path and the coded phase: three default erasure-code chunks, so
/// a 5/3 stripe set carries ~payload/3 per tunnel.
const MP_PAYLOAD_LEN: usize = 9216;

/// Scatter prefix digits for [`form_disjoint_tunnels`] (Pastry b = 4).
const SCATTER_B: u32 = 4;

/// Run the sweep at `scale` (`fault_permille` is the center point).
/// `mp_n = 0` runs the classic single-path sweep; `mp_n > 0` runs the
/// coded-multipath-vs-single-path comparison.
pub fn run(scale: &Scale) -> Series {
    if scale.mp_n > 0 {
        run_multipath(scale)
    } else {
        run_classic(scale)
    }
}

/// The classic sweep: single-path transfers only, the original column set.
fn run_classic(scale: &Scale) -> Series {
    let metrics = Registry::new();
    super::apply_journal(&metrics, scale);
    let mut series = Series::new(
        "Resilience — tunnel transfer outcomes vs. injected per-link loss (permille)".to_string(),
        "loss_permille",
        vec![
            "delivered_frac".into(),
            "retries_per_xfer".into(),
            "giveups_per_xfer".into(),
        ],
    );

    // Every trial routes over the same membership, and faults live in the
    // wire, not the overlay — so build the overlay once and hand each
    // trial a copy-on-write clone (O(N) Arc bumps, and since nodes never
    // leave the overlay, routing never evicts and nothing unshares).
    let mut base_rng = StdRng::seed_from_u64(substream_seed(scale.seed, "resilience-base", 0));
    let mut base = Overlay::new(PastryConfig::paper_defaults());
    base.use_metrics(metrics.clone());
    let nodes: Vec<Id> = (0..scale.nodes)
        .map(|_| base.add_random_node(&mut base_rng))
        .collect();

    let points = loss_points(scale.fault_permille);
    let sims = scale.latency_sims.max(1);
    let transfers = scale.latency_transfers.max(1);
    let trials: Vec<(u32, usize)> = points
        .iter()
        .flat_map(|&loss| (0..sims).map(move |sim| (loss, sim)))
        .collect();
    let pool = TrialPool::new(scale, "resilience");
    let results = pool.run(trials, |idx, &(loss, _sim), rng| {
        let trial_metrics = Registry::new();
        super::apply_journal(&trial_metrics, scale);
        let delivered = simulate_one(
            &base,
            &nodes,
            transfers,
            loss,
            pool.trial_seed(idx),
            rng,
            &trial_metrics,
        );
        (delivered, trial_metrics)
    });

    let mut results = results.into_iter();
    for &loss in &points {
        let mut delivered = 0usize;
        let point_metrics = Registry::new();
        for _ in 0..sims {
            let (d, trial_metrics) = results.next().expect("one trial per (loss, sim)");
            delivered += d;
            point_metrics.merge(&trial_metrics);
            metrics.merge(&trial_metrics);
        }
        let snap = point_metrics.snapshot();
        let denom = (sims * transfers) as f64;
        series.push(
            f64::from(loss),
            vec![
                delivered as f64 / denom,
                snap.counter("core.transit.retries") as f64 / denom,
                snap.counter("core.transit.giveups") as f64 / denom,
            ],
        );
    }
    series.metrics_json = Some(metrics.snapshot().to_json());
    series
}

/// One simulation: `transfers` hinted tunnel transfers under loss level
/// `loss`, with a partition/heal cycle and a crashed-node window through
/// the middle third, over a copy-on-write clone of the shared base
/// overlay. Returns how many transfers delivered.
fn simulate_one(
    base: &Overlay,
    nodes: &[Id],
    transfers: usize,
    loss: u32,
    seed: u64,
    rng: &mut StdRng,
    metrics: &Registry,
) -> usize {
    chaos_phase(
        base,
        nodes,
        transfers,
        loss,
        seed,
        metrics,
        rng,
        |overlay, thas, driver, rng| {
            transfer_once(overlay, thas, driver, rng, b"payload")
                .map(|elapsed| (elapsed.as_micros(), 1.0))
        },
    )
    .delivered
}

/// One hinted tunnel transfer of `core` between random nodes;
/// `Some(elapsed)` iff it delivered.
fn transfer_once(
    overlay: &mut Overlay,
    thas: &mut ReplicaStore<Tha>,
    driver: &mut NetDriver<UniformLatency>,
    rng: &mut StdRng,
    core: &[u8],
) -> Option<SimDuration> {
    let initiator = overlay.random_node(rng).expect("non-empty overlay");
    let mut factory = ThaFactory::new(rng, initiator);
    let mut hops = Vec::with_capacity(TUNNEL_LENGTH);
    while hops.len() < TUNNEL_LENGTH {
        let s = factory.next(rng);
        if thas
            .insert(overlay, s.hopid, s.stored())
            .expect("overlay never empties mid-sweep")
        {
            hops.push(s);
        }
    }
    let tunnel = Tunnel::new(hops);
    let mut hints = HintCache::default();
    hints.refresh(overlay, &tunnel.hop_ids());

    let dest = loop {
        let d = overlay.random_node(rng).expect("non-empty overlay");
        if d != initiator {
            break d;
        }
    };
    let onion = tunnel.build_onion(rng, Destination::Node(dest), core, Some(&hints));
    let outcome = driver.drive_timed_with_hints(
        overlay,
        thas,
        initiator,
        tunnel.entry_hopid(),
        onion,
        0,
        TransitOptions {
            use_hints: true,
            retry_budget: RETRY_BUDGET,
        },
        Some(&mut hints),
    );
    for hopid in tunnel.hop_ids() {
        thas.remove(hopid);
    }
    match outcome {
        Ok((_, report)) => Some(report.elapsed),
        Err(TransitError::RetriesExhausted { .. }) => None,
        // The overlay itself never changes, so any other transit error
        // would be a harness bug, not an injected fault.
        Err(e) => panic!("unexpected transit failure under faults: {e:?}"),
    }
}

/// What one phase (single-path or multipath) of one trial delivered.
#[derive(Default)]
struct PhaseStats {
    delivered: usize,
    /// Virtual elapsed time of each delivered transfer, microseconds.
    latencies_us: Vec<u64>,
    /// Summed per-relay exposure of delivered transfers (largest fraction
    /// of one transfer's stripes carried by any single relay).
    exposure_sum: f64,
}

/// The comparison sweep: each trial runs the *same* transfer schedule
/// twice under the same fault seed — single-path retry vs. coded
/// `(n, k)` multipath — and each row reports both column families.
fn run_multipath(scale: &Scale) -> Series {
    let n = scale.mp_n;
    let k = scale.mp_k.clamp(1, n);
    let metrics = Registry::new();
    super::apply_journal(&metrics, scale);
    let mut series = Series::new(
        format!(
            "Resilience — coded {n}/{k} multipath vs. single-path retry \
             vs. injected per-link loss (permille)"
        ),
        "loss_permille",
        vec![
            "sp_delivered_frac".into(),
            "sp_p99_ms".into(),
            "sp_retries_per_xfer".into(),
            "sp_relay_exposure".into(),
            "mp_delivered_frac".into(),
            "mp_p99_ms".into(),
            "mp_retries_per_xfer".into(),
            "mp_relay_exposure".into(),
        ],
    );

    // Same shared base overlay trick as the classic sweep.
    let mut base_rng = StdRng::seed_from_u64(substream_seed(scale.seed, "resilience-base", 0));
    let mut base = Overlay::new(PastryConfig::paper_defaults());
    base.use_metrics(metrics.clone());
    let nodes: Vec<Id> = (0..scale.nodes)
        .map(|_| base.add_random_node(&mut base_rng))
        .collect();

    let points = loss_points(scale.fault_permille);
    let sims = scale.latency_sims.max(1);
    let transfers = scale.latency_transfers.max(1);
    let trials: Vec<(u32, usize)> = points
        .iter()
        .flat_map(|&loss| (0..sims).map(move |sim| (loss, sim)))
        .collect();
    let pool = TrialPool::new(scale, "resilience-mp");
    let results = pool.run(trials, |idx, &(loss, _sim), rng| {
        let sp_metrics = Registry::new();
        let mp_metrics = Registry::new();
        super::apply_journal(&sp_metrics, scale);
        super::apply_journal(&mp_metrics, scale);
        let seed = pool.trial_seed(idx);
        let payload: Vec<u8> = (0..MP_PAYLOAD_LEN).map(|i| (i * 131 + 7) as u8).collect();
        let sp = chaos_phase(
            &base,
            &nodes,
            transfers,
            loss,
            seed,
            &sp_metrics,
            rng,
            |overlay, thas, driver, rng| {
                transfer_once(overlay, thas, driver, rng, &payload)
                    .map(|elapsed| (elapsed.as_micros(), 1.0))
            },
        );
        let mp_ins = CoreInstruments::new(&mp_metrics);
        let mp = chaos_phase(
            &base,
            &nodes,
            transfers,
            loss,
            seed,
            &mp_metrics,
            rng,
            |overlay, thas, driver, rng| {
                mp_transfer_once(overlay, thas, driver, rng, &payload, n, k, &mp_ins)
            },
        );
        (sp, sp_metrics, mp, mp_metrics)
    });

    let mut results = results.into_iter();
    for &loss in &points {
        let mut sp = PhaseStats::default();
        let mut mp = PhaseStats::default();
        let sp_point = Registry::new();
        let mp_point = Registry::new();
        for _ in 0..sims {
            let (s, s_reg, m, m_reg) = results.next().expect("one trial per (loss, sim)");
            sp.delivered += s.delivered;
            sp.latencies_us.extend(s.latencies_us);
            sp.exposure_sum += s.exposure_sum;
            mp.delivered += m.delivered;
            mp.latencies_us.extend(m.latencies_us);
            mp.exposure_sum += m.exposure_sum;
            sp_point.merge(&s_reg);
            mp_point.merge(&m_reg);
            metrics.merge(&s_reg);
            metrics.merge(&m_reg);
        }
        let denom = (sims * transfers) as f64;
        let expo = |p: &PhaseStats| {
            if p.delivered > 0 {
                p.exposure_sum / p.delivered as f64
            } else {
                0.0
            }
        };
        let values = vec![
            sp.delivered as f64 / denom,
            p99_ms(&mut sp.latencies_us),
            sp_point.snapshot().counter("core.transit.retries") as f64 / denom,
            expo(&sp),
            mp.delivered as f64 / denom,
            p99_ms(&mut mp.latencies_us),
            mp_point.snapshot().counter("core.transit.retries") as f64 / denom,
            expo(&mp),
        ];
        if loss == scale.fault_permille && loss > 0 {
            // The gate-worthy numbers at the sweep's reference fault level.
            series
                .bench_extras
                .push(("sp_delivered_frac".into(), values[0]));
            series.bench_extras.push(("sp_p99_ms".into(), values[1]));
            series
                .bench_extras
                .push(("mp_delivered_frac".into(), values[4]));
            series.bench_extras.push(("mp_p99_ms".into(), values[5]));
        }
        series.push(f64::from(loss), values);
    }
    series.metrics_json = Some(metrics.snapshot().to_json());
    series
}

/// p99 of `lat` (microseconds) in milliseconds; 0 when nothing delivered.
fn p99_ms(lat_us: &mut [u64]) -> f64 {
    if lat_us.is_empty() {
        return 0.0;
    }
    lat_us.sort_unstable();
    let idx = (lat_us.len() * 99).div_ceil(100) - 1;
    lat_us[idx] as f64 / 1000.0
}

/// One phase of a comparison trial: the classic sweep's scaffold (clean
/// overlay clone, fresh wire, the same fault plan, partition and crash
/// window at the same transfer indices) around a caller-supplied transfer.
/// The transfer returns `Some((elapsed_us, relay_exposure))` on delivery.
#[allow(clippy::too_many_arguments)]
fn chaos_phase<F>(
    base: &Overlay,
    nodes: &[Id],
    transfers: usize,
    loss: u32,
    seed: u64,
    metrics: &Registry,
    rng: &mut StdRng,
    mut xfer: F,
) -> PhaseStats
where
    F: FnMut(
        &mut Overlay,
        &mut ReplicaStore<Tha>,
        &mut NetDriver<UniformLatency>,
        &mut StdRng,
    ) -> Option<(u64, f64)>,
{
    let mut overlay = base.clone();
    overlay.use_metrics(metrics.clone());
    let mut net: Network<u64, UniformLatency> = Network::new(
        NetworkConfig::paper_defaults(),
        UniformLatency::paper(seed ^ 0x1a7e),
    );
    net.use_metrics(metrics.clone());
    let mut driver = NetDriver::new(net);
    driver.use_instruments(CoreInstruments::new(metrics));

    let eps: Vec<EndpointId> = nodes.iter().map(|&id| driver.register(id)).collect();
    let mut thas: ReplicaStore<Tha> = ReplicaStore::new(3);
    thas.use_metrics(metrics.clone());

    if loss > 0 {
        driver.network_mut().install_faults(
            FaultPlan::new(seed)
                .with_loss(loss)
                .with_duplication(loss / 5)
                .with_jitter(SimDuration::from_millis(50))
                .with_spike(loss / 10, SimDuration::from_millis(500)),
        );
    }

    let cut_a: Vec<EndpointId> = eps.iter().copied().step_by(20).collect();
    let cut_b: Vec<EndpointId> = eps
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 20 != 0)
        .map(|(_, e)| *e)
        .collect();
    let crashed: Vec<Id> = nodes.iter().copied().skip(7).step_by(50).collect();
    let window = (transfers / 3, 2 * transfers / 3);

    let mut stats = PhaseStats::default();
    for t in 0..transfers {
        if loss > 0 && t == window.0 {
            driver.network_mut().partition("sweep-cut", &cut_a, &cut_b);
            for &id in &crashed {
                driver.kill_node(id);
            }
        }
        if loss > 0 && t == window.1 {
            driver.network_mut().heal("sweep-cut");
            for &id in &crashed {
                driver.revive_node(id);
            }
        }
        if let Some((us, exposure)) = xfer(&mut overlay, &mut thas, &mut driver, rng) {
            stats.delivered += 1;
            stats.latencies_us.push(us);
            stats.exposure_sum += exposure;
        }
    }
    stats
}

/// One coded `(n, k)` multipath transfer between random nodes: deploy an
/// anchor pool, form up to `n` disjoint tunnels (degrading explicitly when
/// the pool runs short), stripe the payload across them, reconstruct from
/// the first `k` fragments. `Some((elapsed_us, exposure))` iff delivered,
/// where exposure = max stripes any relay carried / stripes launched.
#[allow(clippy::too_many_arguments)]
fn mp_transfer_once(
    overlay: &mut Overlay,
    thas: &mut ReplicaStore<Tha>,
    driver: &mut NetDriver<UniformLatency>,
    rng: &mut StdRng,
    payload: &[u8],
    n: usize,
    k: usize,
    instruments: &CoreInstruments,
) -> Option<(u64, f64)> {
    let initiator = overlay.random_node(rng).expect("non-empty overlay");
    let mut factory = ThaFactory::new(rng, initiator);
    let mut anchors = Vec::with_capacity(2 * n * TUNNEL_LENGTH);
    while anchors.len() < 2 * n * TUNNEL_LENGTH {
        let s = factory.next(rng);
        if thas
            .insert(overlay, s.hopid, s.stored())
            .expect("overlay never empties mid-sweep")
        {
            anchors.push(s);
        }
    }
    let tunnels = form_disjoint_tunnels(rng, &anchors, n, TUNNEL_LENGTH, SCATTER_B);
    let mut hints = HintCache::default();
    let hop_ids: Vec<Id> = tunnels.iter().flat_map(|t| t.hop_ids()).collect();
    hints.refresh(overlay, &hop_ids);

    let dest = loop {
        let d = overlay.random_node(rng).expect("non-empty overlay");
        if d != initiator {
            break d;
        }
    };
    let outcome = send_striped(
        driver,
        overlay,
        thas,
        rng,
        initiator,
        dest,
        &tunnels,
        payload,
        MultipathConfig::new(n as u8, k as u8),
        TransitOptions {
            use_hints: true,
            retry_budget: RETRY_BUDGET,
        },
        Some(&mut hints),
        Some(instruments),
    );
    for s in &anchors {
        thas.remove(s.hopid);
    }
    match outcome {
        Ok(out) => {
            let exposure = if out.report.stripes_total > 0 {
                f64::from(out.report.max_stripes_per_relay) / out.report.stripes_total as f64
            } else {
                1.0
            };
            Some((out.report.elapsed.as_micros(), exposure))
        }
        Err(MultipathError::Transit(TransitError::StripesExhausted { .. })) => None,
        // Anything else (no tunnels, decode failure, unexpected transit
        // error) is a harness bug, not an injected fault.
        Err(e) => panic!("unexpected multipath failure under faults: {e:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            nodes: 250,
            latency_sims: 1,
            latency_transfers: 24,
            fault_permille: 200,
            seed: 11,
            ..Scale::quick()
        }
    }

    #[test]
    fn loss_points_bracket_the_center() {
        assert_eq!(loss_points(100), vec![0, 25, 50, 100, 200]);
        assert_eq!(loss_points(0), vec![0]);
        assert_eq!(loss_points(800), vec![0, 200, 400, 800, 1000]);
    }

    #[test]
    fn baseline_is_lossless_and_chaos_degrades_gracefully() {
        let s = run(&tiny());
        let delivered = s.column("delivered_frac").unwrap();
        let retries = s.column("retries_per_xfer").unwrap();
        let giveups = s.column("giveups_per_xfer").unwrap();

        // Row 0 is the fault-free control: everything arrives, untouched.
        assert_eq!(s.rows[0].x, 0.0);
        assert_eq!(delivered[0], 1.0);
        assert_eq!(retries[0], 0.0);
        assert_eq!(giveups[0], 0.0);

        // Under faults the shim works for its deliveries…
        let last = delivered.len() - 1;
        assert!(retries[last] > 0.0, "40% loss must force resends");
        // …and degradation is graceful, not a cliff: most transfers still
        // arrive, and every non-delivery is an accounted give-up.
        assert!(delivered[last] > 0.5, "delivered {delivered:?}");
        for i in 0..=last {
            assert!(
                (delivered[i] + giveups[i] - 1.0).abs() < 1e-9,
                "row {i}: delivered {} + giveups {} must cover every transfer",
                delivered[i],
                giveups[i]
            );
        }
    }

    fn tiny_mp() -> Scale {
        Scale {
            mp_n: 5,
            mp_k: 3,
            fault_permille: 100,
            // A wider sample than the classic test: the coded-vs-retry
            // delivery gap at one loss point is a few percent, which 24
            // transfers cannot resolve above binomial noise.
            latency_sims: 2,
            latency_transfers: 48,
            ..tiny()
        }
    }

    #[test]
    fn multipath_mode_beats_single_path_retry_under_chaos() {
        let s = run(&tiny_mp());
        let sp_d = s.column("sp_delivered_frac").unwrap();
        let mp_d = s.column("mp_delivered_frac").unwrap();
        let sp_p99 = s.column("sp_p99_ms").unwrap();
        let mp_p99 = s.column("mp_p99_ms").unwrap();
        let sp_expo = s.column("sp_relay_exposure").unwrap();
        let mp_expo = s.column("mp_relay_exposure").unwrap();

        // Row 0 is the fault-free control: both modes deliver everything.
        assert_eq!(s.rows[0].x, 0.0);
        assert_eq!(sp_d[0], 1.0);
        assert_eq!(mp_d[0], 1.0);

        // Disjoint stripes mean no relay ever carries the whole transfer;
        // a single-path relay always does.
        for i in 0..s.rows.len() {
            if sp_d[i] > 0.0 {
                assert_eq!(sp_expo[i], 1.0, "row {i}");
            }
            if mp_d[i] > 0.0 {
                assert!(mp_expo[i] < 1.0, "row {i}: exposure {}", mp_expo[i]);
            }
        }

        // The acceptance row: at the reference fault level (100 permille
        // loss plus the partition/crash window) coding must deliver
        // strictly more, strictly faster at the tail.
        let center = s
            .rows
            .iter()
            .position(|r| r.x == 100.0)
            .expect("center point present");
        assert!(
            mp_d[center] > sp_d[center],
            "coded multipath must out-deliver single-path retry: mp {} vs sp {}",
            mp_d[center],
            sp_d[center]
        );
        assert!(
            mp_p99[center] < sp_p99[center],
            "coded multipath must cut the tail: mp {} ms vs sp {} ms",
            mp_p99[center],
            sp_p99[center]
        );

        // The gate-worthy numbers surface as bench extras.
        let extra = |key: &str| {
            s.bench_extras
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing bench extra {key}"))
        };
        assert_eq!(extra("mp_delivered_frac"), mp_d[center]);
        assert_eq!(extra("sp_delivered_frac"), sp_d[center]);
        assert_eq!(extra("mp_p99_ms"), mp_p99[center]);
        assert_eq!(extra("sp_p99_ms"), sp_p99[center]);
    }

    #[test]
    fn multipath_off_keeps_the_classic_columns() {
        let s = run(&tiny());
        assert_eq!(
            s.columns,
            vec!["delivered_frac", "retries_per_xfer", "giveups_per_xfer"],
            "mp_n = 0 must leave the classic sweep untouched"
        );
    }

    #[test]
    fn faults_zero_turns_the_sweep_off() {
        let s = run(&Scale {
            fault_permille: 0,
            ..tiny()
        });
        assert_eq!(s.rows.len(), 1, "only the control row");
        assert_eq!(s.column("delivered_frac").unwrap()[0], 1.0);
    }
}
