//! Figure 4 — the anonymity knobs (§7.2).
//!
//! (a) corruption vs. replication factor `k` (p = 0.1, l = 5): "a bigger
//! replication factor allows malicious nodes to be able to learn more
//! THAs"; (b) corruption vs. tunnel length `l` (p = 0.1, k = 3): "the
//! fraction decreases with the increasing tunnel length, and the tunnel
//! length of 5 catches the knee of the curve."

use tap_core::tha::Tha;
use tap_core::Collusion;
use tap_id::Id;
use tap_pastry::storage::ReplicaStore;

use crate::experiments::{deploy_tunnels, Testbed};
use crate::report::Series;
use crate::Scale;

/// Replication factors swept in Fig. 4(a). Bounded above by the leaf-set
/// reach (k ≤ |L|/2 + 1 with the paper's |L| = 16).
pub const REPLICATION_FACTORS: [usize; 7] = [1, 2, 3, 4, 5, 6, 8];

/// Tunnel lengths swept in Fig. 4(b).
pub const TUNNEL_LENGTHS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// Malicious fraction held fixed ("the value of p is fixed to be 0.1").
pub const P_MALICIOUS: f64 = 0.1;

/// Independent collusion draws averaged per point.
const DRAWS: usize = 5;

/// Fig. 4(a): corruption vs. replication factor.
pub fn by_replication(scale: &Scale) -> Series {
    let l = 5;
    // Build once at k=3, then re-replicate the same hopids at each k.
    let mut tb = Testbed::build(scale.nodes, scale.tunnels, 3, l, scale.seed ^ 0xF164A);
    tb.apply_journal(scale);
    let hop_lists = tb.hop_id_lists();

    let mut series = Series::new(
        "Fig. 4(a) — corrupted tunnels vs. replication factor (p=0.1, l=5)",
        "replication_factor",
        vec!["corrupted".into(), "analytic".into()],
    );

    for &k in &REPLICATION_FACTORS {
        let store = restore_with_k(&tb, k);
        let mut total = 0.0;
        for _ in 0..DRAWS {
            let collusion = Collusion::mark_fraction(&tb.overlay, &mut tb.rng, P_MALICIOUS);
            total += collusion.corruption_rate(&store, &hop_lists, false);
        }
        let analytic = (1.0 - (1.0 - P_MALICIOUS).powi(k as i32)).powi(l as i32);
        series.push(k as f64, vec![total / DRAWS as f64, analytic]);
    }
    series.metrics_json = Some(tb.metrics_json());
    series
}

/// Fig. 4(b): corruption vs. tunnel length.
pub fn by_length(scale: &Scale) -> Series {
    let k = 3;
    let mut series = Series::new(
        "Fig. 4(b) — corrupted tunnels vs. tunnel length (p=0.1, k=3)",
        "tunnel_length",
        vec!["corrupted".into(), "analytic".into()],
    );

    // One overlay reused across lengths; fresh tunnels per length.
    let mut tb = Testbed::build(scale.nodes, 0, k, 1, scale.seed ^ 0xF164B);
    tb.apply_journal(scale);
    for &l in &TUNNEL_LENGTHS {
        let mut store: ReplicaStore<Tha> = ReplicaStore::new(k);
        store.use_metrics(tb.metrics.clone());
        let tunnels = deploy_tunnels(&tb.overlay, &mut store, &mut tb.rng, scale.tunnels, l);
        let hop_lists: Vec<Vec<Id>> = tunnels.iter().map(|t| t.hop_ids()).collect();
        let mut total = 0.0;
        for _ in 0..DRAWS {
            let collusion = Collusion::mark_fraction(&tb.overlay, &mut tb.rng, P_MALICIOUS);
            total += collusion.corruption_rate(&store, &hop_lists, false);
        }
        let analytic = (1.0 - (1.0 - P_MALICIOUS).powi(k as i32)).powi(l as i32);
        series.push(l as f64, vec![total / DRAWS as f64, analytic]);
    }
    series.metrics_json = Some(tb.metrics_json());
    series
}

fn restore_with_k(tb: &Testbed, k: usize) -> ReplicaStore<Tha> {
    let mut store = ReplicaStore::new(k);
    store.use_metrics(tb.metrics.clone());
    for t in &tb.tunnels {
        for h in &t.hops {
            store
                .insert(&tb.overlay, h.hopid, h.stored())
                .expect("testbed overlay is non-empty");
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            nodes: 500,
            tunnels: 400,
            latency_sims: 1,
            latency_transfers: 1,
            churn_units: 1,
            churn_per_unit: 1,
            seed: 5,
            journal_cap: 0,
        }
    }

    #[test]
    fn figure4a_monotone_in_k() {
        let s = by_replication(&tiny());
        let m = s.column("corrupted").unwrap();
        assert_eq!(m.len(), REPLICATION_FACTORS.len());
        // "As the replication factor increases, the fraction of tunnels
        // that are corrupted increases." Allow small statistical wiggle.
        for w in m.windows(2) {
            assert!(w[1] + 0.03 >= w[0], "corruption should grow with k: {m:?}");
        }
        // Large-k corruption clearly exceeds k=1.
        assert!(m.last().unwrap() > &(m[0] + 0.01), "{m:?}");
    }

    #[test]
    fn figure4b_decreases_with_length_and_knees_at_5() {
        let s = by_length(&tiny());
        let m = s.column("corrupted").unwrap();
        // "The fraction decreases with the increasing tunnel length."
        for w in m.windows(2) {
            assert!(w[1] <= w[0] + 0.03, "corruption should fall with l: {m:?}");
        }
        // The knee: by l=5 the curve is within a hair of its floor.
        let at5 = m[4];
        let floor = m.last().unwrap();
        assert!(
            at5 - floor < 0.02,
            "l=5 should catch the knee (at5={at5:.4}, floor={floor:.4})"
        );
        // And l=1 is dramatically worse than l=5.
        assert!(m[0] > at5 + 0.10, "l=1 ({}) vs l=5 ({at5})", m[0]);
    }

    #[test]
    fn sweeps_track_analytic_models() {
        let a = by_replication(&tiny().with_seed(6));
        for (m, x) in a
            .column("corrupted")
            .unwrap()
            .iter()
            .zip(a.column("analytic").unwrap().iter())
        {
            assert!((m - x).abs() < 0.07, "4a measured {m} vs analytic {x}");
        }
        let b = by_length(&tiny().with_seed(7));
        for (m, x) in b
            .column("corrupted")
            .unwrap()
            .iter()
            .zip(b.column("analytic").unwrap().iter())
        {
            assert!((m - x).abs() < 0.07, "4b measured {m} vs analytic {x}");
        }
    }
}
