//! Figure 4 — the anonymity knobs (§7.2).
//!
//! (a) corruption vs. replication factor `k` (p = 0.1, l = 5): "a bigger
//! replication factor allows malicious nodes to be able to learn more
//! THAs"; (b) corruption vs. tunnel length `l` (p = 0.1, k = 3): "the
//! fraction decreases with the increasing tunnel length, and the tunnel
//! length of 5 catches the knee of the curve."

use tap_core::tha::Tha;
use tap_core::Collusion;
use tap_id::Id;
use tap_metrics::Registry;
use tap_pastry::storage::ReplicaStore;

use crate::engine::TrialPool;
use crate::experiments::{deploy_tunnels, Testbed};
use crate::report::Series;
use crate::Scale;

/// Replication factors swept in Fig. 4(a). Bounded above by the leaf-set
/// reach (k ≤ |L|/2 + 1 with the paper's |L| = 16).
pub const REPLICATION_FACTORS: [usize; 7] = [1, 2, 3, 4, 5, 6, 8];

/// Tunnel lengths swept in Fig. 4(b).
pub const TUNNEL_LENGTHS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// Malicious fraction held fixed ("the value of p is fixed to be 0.1").
pub const P_MALICIOUS: f64 = 0.1;

/// Independent collusion draws averaged per point.
const DRAWS: usize = 5;

/// Fig. 4(a): corruption vs. replication factor.
pub fn by_replication(scale: &Scale) -> Series {
    let l = 5;
    // Build once at k=3, then re-replicate the same hopids at each k.
    let tb = Testbed::build(scale.nodes, scale.tunnels, 3, l, scale.seed ^ 0xF164A);
    tb.apply_journal(scale);
    let hop_lists = tb.hop_id_lists();

    let mut series = Series::new(
        "Fig. 4(a) — corrupted tunnels vs. replication factor (p=0.1, l=5)",
        "replication_factor",
        vec!["corrupted".into(), "analytic".into()],
    );

    // One trial per replication factor: each rebuilds its own store over
    // the shared hopids and records into a private registry.
    let pool = TrialPool::new(scale, "fig4a");
    let tb_ref = &tb;
    let trials = pool.run(REPLICATION_FACTORS.to_vec(), |_idx, &k, rng| {
        let trial_metrics = Registry::new();
        crate::experiments::apply_journal(&trial_metrics, scale);
        let store = restore_with_k(tb_ref, k, &trial_metrics);
        let mut total = 0.0;
        for _ in 0..DRAWS {
            let collusion = Collusion::mark_fraction(&tb_ref.overlay, rng, P_MALICIOUS);
            total += collusion.corruption_rate(&store, &hop_lists, false);
        }
        let analytic = (1.0 - (1.0 - P_MALICIOUS).powi(k as i32)).powi(l as i32);
        (vec![total / DRAWS as f64, analytic], trial_metrics)
    });
    for (&k, (row, trial_metrics)) in REPLICATION_FACTORS.iter().zip(trials) {
        series.push(k as f64, row);
        tb.metrics.merge(&trial_metrics);
    }
    series.metrics_json = Some(tb.metrics_json());
    series
}

/// Fig. 4(b): corruption vs. tunnel length.
pub fn by_length(scale: &Scale) -> Series {
    let k = 3;
    let mut series = Series::new(
        "Fig. 4(b) — corrupted tunnels vs. tunnel length (p=0.1, k=3)",
        "tunnel_length",
        vec!["corrupted".into(), "analytic".into()],
    );

    // One overlay reused across lengths; fresh tunnels per length, each
    // length an independent trial on its own RNG substream.
    let tb = Testbed::build(scale.nodes, 0, k, 1, scale.seed ^ 0xF164B);
    tb.apply_journal(scale);
    let pool = TrialPool::new(scale, "fig4b");
    let tb_ref = &tb;
    let trials = pool.run(TUNNEL_LENGTHS.to_vec(), |_idx, &l, rng| {
        let trial_metrics = Registry::new();
        crate::experiments::apply_journal(&trial_metrics, scale);
        let mut store: ReplicaStore<Tha> = ReplicaStore::new(k);
        store.use_metrics(trial_metrics.clone());
        let tunnels = deploy_tunnels(&tb_ref.overlay, &mut store, rng, scale.tunnels, l);
        let hop_lists: Vec<Vec<Id>> = tunnels.iter().map(|t| t.hop_ids()).collect();
        let mut total = 0.0;
        for _ in 0..DRAWS {
            let collusion = Collusion::mark_fraction(&tb_ref.overlay, rng, P_MALICIOUS);
            total += collusion.corruption_rate(&store, &hop_lists, false);
        }
        let analytic = (1.0 - (1.0 - P_MALICIOUS).powi(k as i32)).powi(l as i32);
        (vec![total / DRAWS as f64, analytic], trial_metrics)
    });
    for (&l, (row, trial_metrics)) in TUNNEL_LENGTHS.iter().zip(trials) {
        series.push(l as f64, row);
        tb.metrics.merge(&trial_metrics);
    }
    series.metrics_json = Some(tb.metrics_json());
    series
}

fn restore_with_k(tb: &Testbed, k: usize, metrics: &Registry) -> ReplicaStore<Tha> {
    let mut store = ReplicaStore::new(k);
    store.use_metrics(metrics.clone());
    for t in &tb.tunnels {
        for h in &t.hops {
            store
                .insert(&tb.overlay, h.hopid, h.stored())
                .expect("testbed overlay is non-empty");
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            nodes: 500,
            tunnels: 400,
            seed: 5,
            ..Scale::quick()
        }
    }

    #[test]
    fn figure4a_monotone_in_k() {
        let s = by_replication(&tiny());
        let m = s.column("corrupted").unwrap();
        assert_eq!(m.len(), REPLICATION_FACTORS.len());
        // "As the replication factor increases, the fraction of tunnels
        // that are corrupted increases." Allow small statistical wiggle.
        for w in m.windows(2) {
            assert!(w[1] + 0.03 >= w[0], "corruption should grow with k: {m:?}");
        }
        // Large-k corruption clearly exceeds k=1.
        assert!(m.last().unwrap() > &(m[0] + 0.01), "{m:?}");
    }

    #[test]
    fn figure4b_decreases_with_length_and_knees_at_5() {
        let s = by_length(&tiny());
        let m = s.column("corrupted").unwrap();
        // "The fraction decreases with the increasing tunnel length."
        for w in m.windows(2) {
            assert!(w[1] <= w[0] + 0.03, "corruption should fall with l: {m:?}");
        }
        // The knee: by l=5 the curve is within a hair of its floor.
        let at5 = m[4];
        let floor = m.last().unwrap();
        assert!(
            at5 - floor < 0.02,
            "l=5 should catch the knee (at5={at5:.4}, floor={floor:.4})"
        );
        // And l=1 is dramatically worse than l=5.
        assert!(m[0] > at5 + 0.10, "l=1 ({}) vs l=5 ({at5})", m[0]);
    }

    #[test]
    fn sweeps_track_analytic_models() {
        let a = by_replication(&tiny().with_seed(6));
        for (m, x) in a
            .column("corrupted")
            .unwrap()
            .iter()
            .zip(a.column("analytic").unwrap().iter())
        {
            assert!((m - x).abs() < 0.07, "4a measured {m} vs analytic {x}");
        }
        let b = by_length(&tiny().with_seed(7));
        for (m, x) in b
            .column("corrupted")
            .unwrap()
            .iter()
            .zip(b.column("analytic").unwrap().iter())
        {
            assert!((m - x).abs() < 0.07, "4b measured {m} vs analytic {x}");
        }
    }
}
