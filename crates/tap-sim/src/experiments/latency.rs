//! Figure 6 — 2 Mb transfer latency vs. network size (§7.3).
//!
//! "We simulated the size of a P2P network from 100 to 10,000 nodes. Each
//! link … had a random latency from 1 ms to 230 ms … All links had a
//! simulated bandwidth of 1.5 Mb/s. A randomly chosen initiator
//! transferred a 2 Mb file with a random fileid to a node whose nodeid is
//! numerically closest to the fileid" — overtly, through TAP's basic
//! tunnels, and through TAP's §5 hint-optimized tunnels, at l ∈ {3, 5}.
//!
//! Every variant produces a node-level store-and-forward path; the path is
//! then replayed against the discrete-event network (per-hop 1.5 Mb/s
//! serialization plus pairwise propagation delay), exactly the cost model
//! of the paper's emulator.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use tap_core::metrics::CoreInstruments;
use tap_core::tha::{Tha, ThaFactory};
use tap_core::transit::{self, HintCache, TransitOptions};
use tap_core::tunnel::Tunnel;
use tap_core::wire::Destination;
use tap_id::{Id, IdHashMap};
use tap_metrics::Registry;
use tap_netsim::latency::{EuclideanLatency, LatencyModel, RemappedLatency, UniformLatency};
use tap_netsim::{
    EndpointId, Event, NetworkConfig, ShardCtx, ShardedNetwork, SimDuration, SimTime, TimerToken,
};
use tap_pastry::storage::ReplicaStore;
use tap_pastry::{Overlay, PastryConfig};

use super::throughput::effective_shards;
use crate::engine::{substream_seed, TrialPool};
use crate::report::Series;
use crate::Scale;

/// The transferred file: 2 Mb = 250 000 bytes.
pub const FILE_BYTES: u64 = 250_000;

/// Log-spaced network sizes from 100 up to `max` (inclusive).
pub fn network_sizes(max: usize) -> Vec<usize> {
    let max = max.max(100);
    let points = 5usize;
    let lo = 100f64;
    let hi = max as f64;
    let mut out: Vec<usize> = (0..points)
        .map(|i| {
            let f = i as f64 / (points - 1) as f64;
            (lo * (hi / lo).powf(f)).round() as usize
        })
        .collect();
    out.dedup();
    out
}

/// Which pairwise-delay model the emulated Internet uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyModel {
    /// The paper's setting: each link U[1, 230] ms, independent.
    Uniform,
    /// Ablation: endpoints on a 2D torus; delay grows with distance
    /// (respects the triangle inequality, unlike independent draws).
    Euclidean,
}

/// Run the experiment with the paper's uniform link model.
pub fn run(scale: &Scale) -> Series {
    run_with_model(scale, TopologyModel::Uniform)
}

/// Run the experiment under a chosen topology model (the topology
/// ablation compares the two).
pub fn run_with_model(scale: &Scale, model: TopologyModel) -> Series {
    let metrics = Registry::new();
    super::apply_journal(&metrics, scale);
    let mut series = Series::new(
        format!(
            "Fig. 6 — 2 Mb transfer latency (seconds) vs. number of peer nodes [{model:?} links]"
        ),
        "nodes",
        vec![
            "overt".into(),
            "tap_basic_l5".into(),
            "tap_opt_l5".into(),
            "tap_basic_l3".into(),
            "tap_opt_l3".into(),
        ],
    );

    // Building the overlay dominates a trial's cost at paper scale, and
    // every sim at a given size routes over an identically-seeded one —
    // so build each size's overlay exactly once, up front, and hand every
    // trial a copy-on-write clone (O(N) Arc bumps; the static network
    // never kills a node, so routing never evicts and nothing unshares).
    let sizes = network_sizes(scale.nodes);
    let bases: Vec<(Overlay, Vec<Id>)> = sizes
        .iter()
        .map(|&n| {
            let mut rng = StdRng::seed_from_u64(substream_seed(scale.seed, "fig6-base", n));
            let mut overlay = Overlay::new(PastryConfig::paper_defaults());
            overlay.use_metrics(metrics.clone());
            let ids = (0..n).map(|_| overlay.add_random_node(&mut rng)).collect();
            (overlay, ids)
        })
        .collect();

    // The paper's 30 independent simulations per network size are the
    // trial list: every (size, sim) pair is one trial on its own RNG
    // substream with its own network + registry, reading the shared base
    // overlays, so the whole figure fans out across workers.
    let trials: Vec<(usize, usize)> = (0..sizes.len())
        .flat_map(|si| (0..scale.latency_sims).map(move |sim| (si, sim)))
        .collect();
    let pool = TrialPool::new(scale, "fig6");
    let results = pool.run(trials, |idx, &(si, _sim), _rng| {
        let trial_metrics = Registry::new();
        super::apply_journal(&trial_metrics, scale);
        let seed = pool.trial_seed(idx);
        let (base, ids) = &bases[si];
        let shards = effective_shards(scale);
        let per_transfer = match model {
            TopologyModel::Uniform => simulate_one(
                base,
                ids,
                scale.latency_transfers,
                seed,
                UniformLatency::paper(seed ^ 0x1a7e),
                &trial_metrics,
                shards,
            ),
            TopologyModel::Euclidean => simulate_one(
                base,
                ids,
                scale.latency_transfers,
                seed,
                EuclideanLatency::paper(seed ^ 0x1a7e),
                &trial_metrics,
                shards,
            ),
        };
        (per_transfer, trial_metrics)
    });

    let mut results = results.into_iter();
    for &n in &sizes {
        let mut sums = [0.0f64; 5];
        for _ in 0..scale.latency_sims {
            let (per_transfer, trial_metrics) = results.next().expect("one trial per (size, sim)");
            for (slot, v) in per_transfer.iter().enumerate() {
                sums[slot] += v;
            }
            metrics.merge(&trial_metrics);
        }
        let denom = (scale.latency_sims * scale.latency_transfers) as f64;
        series.push(n as f64, sums.iter().map(|s| s / denom).collect());
    }
    series.metrics_json = Some(metrics.snapshot().to_json());
    series
        .bench_extras
        .push(("cipher_gbps".into(), measure_cipher_gbps()));
    series
}

/// Measured throughput of the fused onion codec — the wire-level kernel
/// this figure's transfer times stand on. Seals a representative l = 5
/// onion (40-byte headers, 4 KiB core) from a warmed builder and reports
/// ciphered GB/s: every layer's keystream covers its whole body, so one
/// seal ciphers Σᵢ bodyᵢ bytes. Travels as a bench extra (BENCH_sim.json
/// only — never a figure CSV), where the bench gate holds a floor under
/// it.
fn measure_cipher_gbps() -> f64 {
    use tap_crypto::chacha20::NONCE_LEN;
    use tap_crypto::cipher::{SymmetricKey, TAG_LEN};
    use tap_crypto::onion::{OnionBuilder, LAYER_MARGIN};

    const LAYERS: usize = 5;
    const HEADER: usize = 40;
    const CORE: usize = 4096;
    let mut rng = StdRng::seed_from_u64(0xC1BE6B);
    let layers: Vec<_> = (0..LAYERS)
        .map(|i| (SymmetricKey::generate(&mut rng), vec![i as u8; HEADER]))
        .collect();
    let core = vec![0xA5u8; CORE];
    let mut b = OnionBuilder::new();
    b.seal(&mut rng, &layers, &core); // warm the builder and caches

    let total = b.as_bytes().len();
    let ciphered_per_seal: usize = (0..LAYERS)
        .map(|i| {
            let start = i * (LAYER_MARGIN + HEADER);
            let end = total - i * TAG_LEN;
            // Layer i ciphers everything between its nonce and its tag.
            end - start - NONCE_LEN - TAG_LEN
        })
        .sum();

    let iters = 2000u32;
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        b.seal(&mut rng, &layers, &core);
    }
    let wall = t0.elapsed().as_secs_f64();
    iters as f64 * ciphered_per_seal as f64 / wall.max(1e-9) / 1e9
}

/// One simulation over a copy-on-write clone of the shared base overlay:
/// returns summed seconds per variant.
///
/// The serial loop interleaved path construction with replay on one
/// [`tap_netsim::Network`]; here the two are split so the replays run on
/// the sharded conservative-lookahead loop, bit-identically:
///
/// 1. *Plan* (RNG-bearing): every transfer's routes, tunnels and onions
///    are built in the exact serial RNG order; each variant's
///    store-and-forward chain is recorded instead of replayed. Replays
///    never touched the RNG, so deferring them changes nothing upstream.
/// 2. *Replay* (RNG-free): each chain position becomes a *private*
///    endpoint — in the serial replay every NIC was provably idle at each
///    send (a chain's sends strictly follow the previous hop's delivery,
///    and chains follow each other), so private NICs see identical queue
///    state. [`RemappedLatency`] gives private endpoints the pairwise
///    delays of the nodes they stand for, timers launch every chain at
///    t = 0 (durations are start-relative, so serial clock offsets
///    cancel), and completions are summed in chain-creation order —
///    the serial f64 accumulation order. Degenerate (< 2 hop) chains
///    contribute the same `+0.0` they did serially.
fn simulate_one<L: LatencyModel + Sync>(
    base: &Overlay,
    ids: &[Id],
    transfers: usize,
    seed: u64,
    latency: L,
    metrics: &Registry,
    shards: usize,
) -> [f64; 5] {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut overlay = base.clone();
    overlay.use_metrics(metrics.clone());
    let mut node_ep: IdHashMap<EndpointId> = IdHashMap::default();
    for (i, &id) in ids.iter().enumerate() {
        node_ep.insert(id, EndpointId::from_index(i).expect("node index fits u32"));
    }
    let mut thas: ReplicaStore<Tha> = ReplicaStore::new(3);
    thas.use_metrics(metrics.clone());
    let instruments = CoreInstruments::new(metrics);

    // Phase 1: plan chains in serial accumulation order (transfer-major,
    // variant-minor).
    let mut chains: Vec<(usize, Vec<EndpointId>)> = Vec::with_capacity(transfers * 5);
    for _ in 0..transfers {
        let initiator = overlay.random_node(&mut rng).expect("nodes exist");
        let fid = Id::random(&mut rng);

        // Variant 0: overt transfer along the plain Pastry route.
        let overt_path = overlay
            .route(initiator, fid)
            .expect("consistent overlay routes")
            .path;
        chains.push((0, dedup_chain(&node_ep, &overt_path)));

        // TAP variants: fresh tunnels per transfer, torn down afterwards.
        for (slot, &(l, hinted)) in [(5usize, false), (5, true), (3, false), (3, true)]
            .iter()
            .enumerate()
        {
            let path = tap_path(
                &mut overlay,
                &mut thas,
                &mut rng,
                initiator,
                fid,
                l,
                hinted,
                &instruments,
            );
            chains.push((slot + 1, dedup_chain(&node_ep, &path)));
        }
    }

    // Phase 2: one sharded run over private per-(chain, position)
    // endpoints.
    let mut sums = [0.0f64; 5];
    let mut map: Vec<EndpointId> = Vec::new(); // private index -> node endpoint
    let mut chain_of: Vec<u32> = Vec::new(); // private index -> live-chain index
    let mut live: Vec<(usize, u32, u32)> = Vec::new(); // (slot, start, end) in private space
    for (slot, eps) in &chains {
        if eps.len() < 2 {
            continue; // free serially, free here: contributes +0.0
        }
        let start = map.len() as u32;
        let ci = live.len() as u32;
        for &ep in eps {
            map.push(ep);
            chain_of.push(ci);
        }
        live.push((*slot, start, start + eps.len() as u32));
    }
    if !live.is_empty() {
        let total = map.len();
        let remapped = RemappedLatency::new(latency, map, ids.len());
        let mut net: ShardedNetwork<u32, RemappedLatency<L>> =
            ShardedNetwork::new(NetworkConfig::paper_defaults(), remapped, total, shards);
        for (ci, &(_, start, _)) in live.iter().enumerate() {
            net.schedule_timer_at(private_ep(start), SimTime::ZERO, TimerToken(ci as u64));
        }
        let done: Mutex<Vec<SimDuration>> = Mutex::new(vec![SimDuration::ZERO; live.len()]);
        let (live_ref, chain_ref, done_ref) = (&live, &chain_of, &done);
        // One worker: the TrialPool already spreads (size, sim) trials
        // across threads, so nesting another pool per trial only adds
        // barrier overhead — sharding still partitions state and events.
        net.run(1, |_| {
            move |ctx: &mut ShardCtx<'_, u32, RemappedLatency<L>>, ev: Event<u32>| match ev {
                Event::Timer { token, .. } => {
                    let (_, start, _) = live_ref[token.0 as usize];
                    ctx.send(
                        private_ep(start),
                        private_ep(start + 1),
                        FILE_BYTES,
                        start + 1,
                    );
                }
                Event::Message(m) => {
                    let g = m.payload;
                    let ci = chain_ref[g as usize] as usize;
                    let (_, _, end) = live_ref[ci];
                    if g + 1 < end {
                        ctx.send(private_ep(g), private_ep(g + 1), FILE_BYTES, g + 1);
                    } else {
                        done_ref.lock().expect("completion log poisoned")[ci] =
                            m.delivered_at - SimTime::ZERO;
                    }
                }
            }
        });
        net.fold_metrics(metrics);
        let done = done.into_inner().expect("completion log poisoned");
        for (ci, &(slot, _, _)) in live.iter().enumerate() {
            sums[slot] += done[ci].as_secs_f64();
        }
    }
    sums
}

fn private_ep(i: u32) -> EndpointId {
    EndpointId::from_index(i as usize).expect("private index fits u32")
}

/// Map a node path onto node endpoints, dropping consecutive duplicates
/// (a hop relaying to itself is free).
fn dedup_chain(node_ep: &IdHashMap<EndpointId>, path: &[Id]) -> Vec<EndpointId> {
    let mut eps: Vec<EndpointId> = Vec::with_capacity(path.len());
    for id in path {
        let ep = node_ep[id];
        if eps.last() != Some(&ep) {
            eps.push(ep);
        }
    }
    eps
}

/// Build a fresh tunnel of length `l` for `initiator`, drive the transfer
/// header through it, and return the node-level path the file follows.
#[allow(clippy::too_many_arguments)]
fn tap_path(
    overlay: &mut Overlay,
    thas: &mut ReplicaStore<Tha>,
    rng: &mut StdRng,
    initiator: Id,
    fid: Id,
    l: usize,
    hinted: bool,
    instruments: &CoreInstruments,
) -> Vec<Id> {
    let mut factory = ThaFactory::new(rng, initiator);
    let mut hops = Vec::with_capacity(l);
    while hops.len() < l {
        let s = factory.next(rng);
        if thas
            .insert(overlay, s.hopid, s.stored())
            .expect("testbed overlay is non-empty")
        {
            hops.push(s);
        }
    }
    let tunnel = Tunnel::new(hops.clone());
    let hints = hinted.then(|| {
        let mut cache = HintCache::default();
        cache.refresh(overlay, &tunnel.hop_ids());
        cache
    });
    let onion = tunnel.build_onion_instrumented(
        rng,
        Destination::KeyRoot(fid),
        b"push",
        hints.as_ref(),
        Some(instruments),
    );
    let (_, report) = transit::drive_instrumented(
        overlay,
        thas,
        initiator,
        tunnel.entry_hopid(),
        onion,
        TransitOptions {
            use_hints: hinted,
            ..TransitOptions::default()
        },
        Some(instruments),
    )
    .expect("static network: tunnels cannot break mid-experiment");
    for h in &hops {
        thas.remove(h.hopid);
    }
    report.node_path
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use tap_netsim::Network;

    /// The pre-port serial replay: a node path as a store-and-forward
    /// transfer on the shared [`Network`], consecutive duplicates free.
    /// Kept as the reference the sharded batch must reproduce bit-for-bit.
    fn replay<L: LatencyModel>(
        net: &mut Network<usize, L>,
        endpoint_of: &HashMap<Id, EndpointId>,
        path: &[Id],
    ) -> SimDuration {
        let mut eps: Vec<EndpointId> = Vec::with_capacity(path.len());
        for id in path {
            let ep = endpoint_of[id];
            if eps.last() != Some(&ep) {
                eps.push(ep);
            }
        }
        if eps.len() < 2 {
            return SimDuration::ZERO;
        }
        let start = net.now();
        net.send(eps[0], eps[1], FILE_BYTES, 1);
        while let Some(ev) = net.next_event() {
            if let Event::Message(m) = ev {
                let arrived = m.payload;
                if arrived + 1 < eps.len() {
                    net.send(eps[arrived], eps[arrived + 1], FILE_BYTES, arrived + 1);
                } else {
                    return m.delivered_at - start;
                }
            }
        }
        unreachable!("the transfer chain always completes in a live network")
    }

    /// The pre-port serial body of [`simulate_one`], verbatim: replays
    /// interleaved with planning on one shared serial network.
    fn simulate_one_serial<L: LatencyModel>(
        base: &Overlay,
        ids: &[Id],
        transfers: usize,
        seed: u64,
        latency: L,
        metrics: &Registry,
    ) -> [f64; 5] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = base.clone();
        overlay.use_metrics(metrics.clone());
        let mut net: Network<usize, L> = Network::new(NetworkConfig::paper_defaults(), latency);
        net.use_metrics(metrics.clone());
        let mut endpoint_of: HashMap<Id, EndpointId> = HashMap::with_capacity(ids.len());
        for &id in ids {
            endpoint_of.insert(id, net.add_endpoint());
        }
        let mut thas: ReplicaStore<Tha> = ReplicaStore::new(3);
        thas.use_metrics(metrics.clone());
        let instruments = CoreInstruments::new(metrics);

        let mut sums = [0.0f64; 5];
        for _ in 0..transfers {
            let initiator = overlay.random_node(&mut rng).expect("nodes exist");
            let fid = Id::random(&mut rng);
            let overt_path = overlay
                .route(initiator, fid)
                .expect("consistent overlay routes")
                .path;
            sums[0] += replay(&mut net, &endpoint_of, &overt_path).as_secs_f64();
            for (slot, &(l, hinted)) in [(5usize, false), (5, true), (3, false), (3, true)]
                .iter()
                .enumerate()
            {
                let path = tap_path(
                    &mut overlay,
                    &mut thas,
                    &mut rng,
                    initiator,
                    fid,
                    l,
                    hinted,
                    &instruments,
                );
                sums[slot + 1] += replay(&mut net, &endpoint_of, &path).as_secs_f64();
            }
        }
        sums
    }

    #[test]
    fn sharded_replay_matches_the_serial_loop_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(substream_seed(3, "fig6-base", 0));
        let mut overlay = Overlay::new(PastryConfig::paper_defaults());
        let ids: Vec<Id> = (0..400)
            .map(|_| overlay.add_random_node(&mut rng))
            .collect();
        for seed in [11u64, 12] {
            let serial = simulate_one_serial(
                &overlay,
                &ids,
                8,
                seed,
                UniformLatency::paper(seed ^ 0x1a7e),
                &Registry::new(),
            );
            for shards in [1usize, 2, 8] {
                let sharded = simulate_one(
                    &overlay,
                    &ids,
                    8,
                    seed,
                    UniformLatency::paper(seed ^ 0x1a7e),
                    &Registry::new(),
                    shards,
                );
                assert_eq!(
                    serial.map(f64::to_bits),
                    sharded.map(f64::to_bits),
                    "seed={seed} shards={shards}"
                );
            }
            // The coordinate-model path (private endpoints remapped onto
            // serially-placed coords) must agree too.
            let serial = simulate_one_serial(
                &overlay,
                &ids,
                8,
                seed,
                EuclideanLatency::paper(seed ^ 0x1a7e),
                &Registry::new(),
            );
            let sharded = simulate_one(
                &overlay,
                &ids,
                8,
                seed,
                EuclideanLatency::paper(seed ^ 0x1a7e),
                &Registry::new(),
                4,
            );
            assert_eq!(
                serial.map(f64::to_bits),
                sharded.map(f64::to_bits),
                "euclidean seed={seed}"
            );
        }
    }

    fn tiny() -> Scale {
        Scale {
            nodes: 600,
            tunnels: 1,
            latency_sims: 2,
            latency_transfers: 12,
            seed: 3,
            ..Scale::quick()
        }
    }

    #[test]
    fn network_sizes_are_log_spaced() {
        let s = network_sizes(10_000);
        assert_eq!(s.first(), Some(&100));
        assert_eq!(s.last(), Some(&10_000));
        assert!(s.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(network_sizes(100), vec![100]);
    }

    #[test]
    fn figure6_orderings() {
        let s = run(&tiny());
        let overt = s.column("overt").unwrap();
        let basic5 = s.column("tap_basic_l5").unwrap();
        let opt5 = s.column("tap_opt_l5").unwrap();
        let basic3 = s.column("tap_basic_l3").unwrap();
        let opt3 = s.column("tap_opt_l3").unwrap();

        for i in 0..s.rows.len() {
            // "TAP's basic tunneling mechanism introduces a significant
            // latency penalty" — basic ≫ overt.
            assert!(
                basic5[i] > overt[i] * 1.5,
                "row {i}: basic5 {} vs overt {}",
                basic5[i],
                overt[i]
            );
            // "A longer tunnel introduces bigger performance overhead."
            assert!(basic5[i] > basic3[i], "row {i}");
            // "TAP's performance optimized tunneling mechanism can
            // dramatically reduce the latency penalty."
            assert!(opt5[i] < basic5[i], "row {i}");
            assert!(opt3[i] < basic3[i], "row {i}");
            // The optimization cannot beat the overt direct route.
            assert!(opt3[i] >= overt[i] * 0.8, "row {i}");
        }

        // Transfer times are in a plausible absolute band: a 2 Mb file at
        // 1.5 Mb/s costs 1.33 s per store-and-forward hop, and every path
        // has at least one hop.
        assert!(overt.iter().all(|t| *t > 1.0), "{overt:?}");
        assert!(basic5.iter().all(|t| *t < 60.0), "{basic5:?}");
    }

    #[test]
    fn euclidean_topology_preserves_orderings() {
        let scale = Scale {
            nodes: 300,
            latency_sims: 1,
            latency_transfers: 10,
            ..tiny()
        };
        let s = run_with_model(&scale, TopologyModel::Euclidean);
        let overt = s.column("overt").unwrap();
        let basic5 = s.column("tap_basic_l5").unwrap();
        let opt5 = s.column("tap_opt_l5").unwrap();
        for i in 0..s.rows.len() {
            assert!(basic5[i] > overt[i], "row {i}");
            assert!(opt5[i] < basic5[i], "row {i}");
        }
    }

    #[test]
    fn replay_costs_match_hand_arithmetic() {
        let mut net: Network<usize, UniformLatency> =
            Network::new(NetworkConfig::paper_defaults(), UniformLatency::paper(9));
        let a = net.add_endpoint();
        let b = net.add_endpoint();
        let c = net.add_endpoint();
        let mut map = HashMap::new();
        let (ia, ib, ic) = (Id::from_u64(1), Id::from_u64(2), Id::from_u64(3));
        map.insert(ia, a);
        map.insert(ib, b);
        map.insert(ic, c);
        let d = replay(&mut net, &map, &[ia, ib, ic]);
        let expect =
            SimDuration::from_micros(2 * 1_333_334) + net.link_delay(a, b) + net.link_delay(b, c);
        assert_eq!(d, expect);
        // Degenerate paths cost nothing.
        assert_eq!(replay(&mut net, &map, &[ia]), SimDuration::ZERO);
        assert_eq!(replay(&mut net, &map, &[ia, ia]), SimDuration::ZERO);
    }
}
