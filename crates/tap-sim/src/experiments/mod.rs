//! The experiments, one module per figure, plus the shared testbed.

pub mod churn;
pub mod collusion;
pub mod latency;
pub mod node_failures;
pub mod resilience;
pub mod secure_routing;
pub mod sweeps;
pub mod throughput;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Scale;
use tap_core::tha::{Tha, ThaFactory, ThaSecret};
use tap_id::Id;
use tap_metrics::Registry;
use tap_pastry::storage::ReplicaStore;
use tap_pastry::{Overlay, PastryConfig};

/// A populated overlay with tunnels, shared by the anonymity experiments.
///
/// Tunnels here are kept as hop-id lists plus their secrets; the transit
/// and crypto layers are exercised by the unit/integration suites and by
/// spot checks inside the experiments, while the bulk statistics run on
/// the membership predicates that determine them (identical outcomes, a
/// few orders of magnitude faster at the paper's population sizes).
pub struct Testbed {
    /// The overlay, fully joined.
    pub overlay: Overlay,
    /// The THA store with every tunnel's anchors deployed.
    pub thas: ReplicaStore<Tha>,
    /// Formed tunnels: initiator plus hop anchors in traversal order.
    pub tunnels: Vec<TunnelRecord>,
    /// The harness RNG (distinct stream per experiment).
    pub rng: StdRng,
    /// Replication factor in force.
    pub k: usize,
    /// Tunnel length in force.
    pub l: usize,
    /// Shared metrics registry every testbed subsystem records into.
    pub metrics: Registry,
}

/// One tunnel in the testbed.
pub struct TunnelRecord {
    /// The node that owns the tunnel.
    pub initiator: Id,
    /// The hop anchors, in traversal order.
    pub hops: Vec<ThaSecret>,
}

impl TunnelRecord {
    /// The hop ids, in traversal order.
    pub fn hop_ids(&self) -> Vec<Id> {
        self.hops.iter().map(|h| h.hopid).collect()
    }
}

impl Testbed {
    /// Build `nodes` nodes, then form `tunnels` tunnels of length `l` with
    /// anchors replicated `k` ways.
    pub fn build(nodes: usize, tunnels: usize, k: usize, l: usize, seed: u64) -> Testbed {
        let mut rng = StdRng::seed_from_u64(seed);
        let metrics = Registry::new();
        let mut overlay = Overlay::new(PastryConfig::with_replication(k));
        overlay.use_metrics(metrics.clone());
        for _ in 0..nodes {
            overlay.add_random_node(&mut rng);
        }
        let mut thas = ReplicaStore::new(k);
        thas.use_metrics(metrics.clone());
        let records = deploy_tunnels(&overlay, &mut thas, &mut rng, tunnels, l);
        Testbed {
            overlay,
            thas,
            tunnels: records,
            rng,
            k,
            l,
            metrics,
        }
    }

    /// Snapshot the shared registry as a serialized [`tap_metrics::MetricsReport`].
    pub fn metrics_json(&self) -> String {
        self.metrics.snapshot().to_json()
    }

    /// Apply the `--journal N` verbosity knob to this testbed's registry.
    pub fn apply_journal(&self, scale: &Scale) {
        apply_journal(&self.metrics, scale);
    }

    /// Every tunnel's hop-id list (the shape the adversary analysis takes).
    pub fn hop_id_lists(&self) -> Vec<Vec<Id>> {
        self.tunnels.iter().map(TunnelRecord::hop_ids).collect()
    }
}

/// Install an event journal on `metrics` when [`Scale::journal_cap`] is
/// nonzero (the CLI's `--journal N`); otherwise events stay dropped and
/// the report carries counters and histograms only.
pub fn apply_journal(metrics: &Registry, scale: &Scale) {
    if scale.journal_cap > 0 {
        metrics.install_journal(scale.journal_cap);
    }
}

/// Deploy `count` fresh tunnels of length `l` into `thas`, one anchor per
/// hop, each owned by a random initiator.
pub fn deploy_tunnels(
    overlay: &Overlay,
    thas: &mut ReplicaStore<Tha>,
    rng: &mut StdRng,
    count: usize,
    l: usize,
) -> Vec<TunnelRecord> {
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let initiator = overlay.random_node(rng).expect("non-empty overlay");
        let mut factory = ThaFactory::new(rng, initiator);
        let mut hops = Vec::with_capacity(l);
        while hops.len() < l {
            let s = factory.next(rng);
            if thas
                .insert(overlay, s.hopid, s.stored())
                .expect("testbed overlay is non-empty")
            {
                hops.push(s);
            }
        }
        records.push(TunnelRecord { initiator, hops });
    }
    records
}

/// Remove a set of tunnels' anchors from the store (tunnel teardown /
/// refresh).
pub fn retire_tunnels(thas: &mut ReplicaStore<Tha>, tunnels: &[TunnelRecord]) {
    for t in tunnels {
        for h in &t.hops {
            thas.remove(h.hopid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_builds_consistently() {
        let tb = Testbed::build(200, 50, 3, 5, 1);
        assert_eq!(tb.overlay.len(), 200);
        assert_eq!(tb.tunnels.len(), 50);
        assert_eq!(tb.thas.len(), 250);
        tb.thas.assert_replica_invariant(&tb.overlay);
        for t in &tb.tunnels {
            assert_eq!(t.hops.len(), 5);
            assert!(tb.overlay.is_live(t.initiator));
        }
    }

    #[test]
    fn journal_flag_selects_event_verbosity() {
        // journal_cap = 0 (the default): events are dropped.
        let mut scale = Scale::quick();
        let tb = Testbed::build(100, 5, 3, 3, 9);
        tb.apply_journal(&scale);
        tb.metrics.emit(1, "test.event", "no journal installed");
        assert!(tb.metrics.snapshot().events.is_empty());

        // --journal 4: the most recent 4 events reach the report.
        scale.journal_cap = 4;
        tb.apply_journal(&scale);
        for i in 0..6 {
            tb.metrics.emit(i, "test.event", format!("#{i}"));
        }
        let events = tb.metrics.snapshot().events;
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].detail, "#2");
        assert_eq!(events[3].detail, "#5");
    }

    #[test]
    fn retire_removes_all_anchors() {
        let mut tb = Testbed::build(100, 20, 3, 3, 2);
        let tunnels = std::mem::take(&mut tb.tunnels);
        retire_tunnels(&mut tb.thas, &tunnels);
        assert!(tb.thas.is_empty());
    }
}
