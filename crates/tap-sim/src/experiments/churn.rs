//! Figure 5 — THA accumulation under churn; refresh or decay (§7.2).
//!
//! "During each time unit, we simulate that a number of 100 benign nodes
//! leaves and then another set of 100 benign nodes joins the system. So
//! the fraction of malicious nodes p is kept on 0.1 after each time unit.
//! Then we measure the fraction of tunnels that are corrupted after each
//! time unit."
//!
//! The mechanism: when a benign replica holder leaves, the replication
//! manager re-replicates its THAs — sometimes onto a malicious node, which
//! pools the secret with the collusion *forever*. `unrefreshed` tunnels
//! therefore decay monotonically; `refreshed` tunnels (recreated every
//! unit) only ever expose one unit's worth of migrations.

use tap_core::tha::Tha;
use tap_core::Collusion;
use tap_id::Id;
use tap_pastry::storage::ReplicaStore;

use crate::engine::TrialPool;
use crate::experiments::{deploy_tunnels, retire_tunnels, Testbed};
use crate::report::Series;
use crate::Scale;

/// Corruption rate over `lists`, sharded across the pool's workers. Churn
/// units are inherently sequential (each mutates the overlay), but the
/// per-tunnel scan inside a unit is embarrassingly parallel; exact counts
/// per shard sum to an order-independent total.
fn parallel_corruption_rate(
    pool: &TrialPool,
    collusion: &Collusion,
    thas: &ReplicaStore<Tha>,
    lists: &[Vec<Id>],
) -> f64 {
    if lists.is_empty() {
        return 0.0;
    }
    let chunk = lists.len().div_ceil(pool.threads());
    let shards: Vec<&[Vec<Id>]> = lists.chunks(chunk).collect();
    let counts = pool.run(shards, |_idx, shard, _rng| {
        collusion.corrupted_count(thas, shard, true)
    });
    counts.iter().sum::<usize>() as f64 / lists.len() as f64
}

/// Run the experiment.
pub fn run(scale: &Scale) -> Series {
    let (k, l) = (3, 5);
    let p = 0.1;
    let mut tb = Testbed::build(scale.nodes, scale.tunnels, k, l, scale.seed ^ 0xF165);
    tb.apply_journal(scale);

    // The collusion is fixed for the whole run; churn only moves benign
    // nodes ("malicious nodes instead can try to stay in system as long as
    // possible").
    let collusion = Collusion::mark_fraction(&tb.overlay, &mut tb.rng, p);

    let unrefreshed_ids = tb.hop_id_lists();
    let mut refreshed = deploy_tunnels(&tb.overlay, &mut tb.thas, &mut tb.rng, scale.tunnels, l);

    let mut series = Series::new(
        "Fig. 5 — corrupted tunnels over time under churn (k=3, l=5, p=0.1)",
        "time_unit",
        vec!["unrefreshed".into(), "refreshed".into()],
    );

    let pool = TrialPool::new(scale, "fig5");

    // t = 0: before any churn, both populations are at the static rate.
    series.push(
        0.0,
        vec![
            parallel_corruption_rate(&pool, &collusion, &tb.thas, &unrefreshed_ids),
            parallel_corruption_rate(
                &pool,
                &collusion,
                &tb.thas,
                &refreshed.iter().map(|t| t.hop_ids()).collect::<Vec<_>>(),
            ),
        ],
    );

    for unit in 1..=scale.churn_units {
        // 100 benign leaves, then 100 benign joins; replica repair runs
        // after each membership event, exactly as PAST's manager would.
        for _ in 0..scale.churn_per_unit {
            let victim = pick_benign(&mut tb, &collusion);
            tb.overlay.remove_node(victim);
            tb.thas.on_node_removed(&tb.overlay, victim);
        }
        for _ in 0..scale.churn_per_unit {
            let id = tb.overlay.add_random_node(&mut tb.rng);
            tb.thas.on_node_added(&tb.overlay, id);
        }

        let unrefreshed_rate =
            parallel_corruption_rate(&pool, &collusion, &tb.thas, &unrefreshed_ids);
        let refreshed_ids: Vec<Vec<Id>> = refreshed.iter().map(|t| t.hop_ids()).collect();
        let refreshed_rate = parallel_corruption_rate(&pool, &collusion, &tb.thas, &refreshed_ids);
        series.push(unit as f64, vec![unrefreshed_rate, refreshed_rate]);

        // Refresh: tear the refreshed population down and rebuild it.
        retire_tunnels(&mut tb.thas, &refreshed);
        refreshed = deploy_tunnels(&tb.overlay, &mut tb.thas, &mut tb.rng, scale.tunnels, l);
    }
    series.metrics_json = Some(tb.metrics_json());
    series
}

fn pick_benign(tb: &mut Testbed, collusion: &Collusion) -> Id {
    loop {
        let v = tb
            .overlay
            .random_node(&mut tb.rng)
            .expect("overlay never empties");
        if !collusion.contains(v) {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        // Churn-heavy: 10% of the network turns over per unit for 20
        // units, so the THA-knowledge accumulation is statistically
        // visible with 800 tunnels (the static corruption floor at
        // p=0.1, k=3, l=5 is only ≈0.15%).
        Scale {
            nodes: 400,
            tunnels: 800,
            churn_units: 20,
            churn_per_unit: 40,
            seed: 17,
            ..Scale::quick()
        }
    }

    #[test]
    fn figure5_shapes() {
        let s = run(&tiny());
        assert_eq!(s.rows.len(), 21, "t=0 plus 20 units");
        let unref = s.column("unrefreshed").unwrap();
        let refr = s.column("refreshed").unwrap();

        // "The corrupted rate of unrefreshed increases steadily as time
        // goes": compare the last third to the first third.
        let early: f64 = unref[..3].iter().sum::<f64>() / 3.0;
        let late: f64 = unref[unref.len() - 3..].iter().sum::<f64>() / 3.0;
        assert!(
            late > early,
            "unrefreshed must decay over time: early {early:.4}, late {late:.4}"
        );
        // Unrefreshed knowledge is monotone (history only grows).
        for w in unref.windows(2) {
            assert!(w[1] + 1e-9 >= w[0], "unrefreshed dipped: {unref:?}");
        }
        // "Refreshed keeps almost constant": never exceeds a small bound
        // above its own start, and ends far below unrefreshed.
        let refreshed_max = refr.iter().fold(0.0f64, |a, b| a.max(*b));
        assert!(
            refreshed_max <= refr[0] + 0.05,
            "refreshed should stay flat: {refr:?}"
        );
        assert!(
            unref.last().unwrap() > refr.last().unwrap(),
            "refresh must help by the end"
        );
    }

    #[test]
    fn population_is_conserved() {
        // The churn loop swaps equal numbers in and out.
        let scale = Scale {
            churn_units: 3,
            ..tiny()
        };
        let tb = Testbed::build(scale.nodes, 10, 3, 5, 1);
        assert_eq!(tb.overlay.len(), scale.nodes);
        let _ = run(&scale); // would panic internally if the ring emptied
    }
}
