//! Arcs (contiguous clockwise ranges) of the identifier ring.
//!
//! TAP's tunnel-formation rule (§3.5 of the paper) requires chosen hopids to
//! "scatter in the DHT identifier space as far as possible (i.e., with
//! different hopid's prefixes)". [`ArcRange`] gives us the vocabulary to
//! carve the ring into prefix buckets and to reason about which replica sets
//! a contiguous region of ids maps onto.

use crate::{digits_for, Id};
use rand::Rng;

/// A half-open clockwise arc `(start, end]` of the identifier ring.
///
/// Like [`Id::between_cw`], the start is exclusive and the end inclusive,
/// which makes consecutive arcs tile the ring without overlap. An arc with
/// `start == end` covers the whole ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcRange {
    start: Id,
    end: Id,
}

impl ArcRange {
    /// The arc from `start` (exclusive) clockwise to `end` (inclusive).
    pub fn new(start: Id, end: Id) -> Self {
        ArcRange { start, end }
    }

    /// The whole ring.
    pub fn full() -> Self {
        ArcRange {
            start: Id::ZERO,
            end: Id::ZERO,
        }
    }

    /// The arc of all ids sharing the first `prefix_len` width-`b` digits
    /// with `id`.
    ///
    /// A `prefix_len` of zero is the whole ring; a `prefix_len` of
    /// [`digits_for`]`(b)` is the single point `id` (represented as the arc
    /// `(id-1, id]`).
    pub fn prefix_bucket(id: Id, prefix_len: usize, b: u32) -> Self {
        let total = digits_for(b);
        assert!(prefix_len <= total, "prefix longer than the id");
        if prefix_len == 0 {
            return ArcRange::full();
        }
        if prefix_len == total {
            return ArcRange::new(id.wrapping_sub(Id::from_u64(1)), id);
        }
        // Lowest id in the bucket: prefix then zeros.
        let mut lo = id;
        for d in prefix_len..total {
            lo = lo.with_digit(d, b, 0);
        }
        // Highest id: prefix then max digits.
        let maxd = ((1u32 << b) - 1) as u8;
        let mut hi = id;
        for d in prefix_len..total {
            hi = hi.with_digit(d, b, maxd);
        }
        ArcRange::new(lo.wrapping_sub(Id::from_u64(1)), hi)
    }

    /// Exclusive start of the arc.
    pub fn start(&self) -> Id {
        self.start
    }

    /// Inclusive end of the arc.
    pub fn end(&self) -> Id {
        self.end
    }

    /// Whether the arc covers the whole ring.
    pub fn is_full(&self) -> bool {
        self.start == self.end
    }

    /// Whether `id` lies inside the arc.
    pub fn contains(&self, id: Id) -> bool {
        id.between_cw(self.start, self.end)
    }

    /// Number of ids in the arc, saturating at `u128::MAX` (arcs wider than
    /// 2^128 are "huge" for every purpose we have).
    pub fn len_saturating(&self) -> u128 {
        if self.is_full() {
            return u128::MAX;
        }
        let span = self.start.clockwise_distance(self.end);
        let bytes = span.as_bytes();
        if bytes[..4].iter().any(|&b| b != 0) {
            return u128::MAX;
        }
        let mut be = [0u8; 16];
        be.copy_from_slice(&bytes[4..]);
        u128::from_be_bytes(be)
    }

    /// Draw an id uniformly from the arc.
    ///
    /// Samples an offset in `[0, span)` by masking a random 160-bit value to
    /// the bit length of the span and rejecting overshoots — acceptance is at
    /// least 1/2 per attempt regardless of the arc width, and the result is
    /// exactly uniform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Id {
        if self.is_full() {
            return Id::random(rng);
        }
        let span = self.start.clockwise_distance(self.end);
        debug_assert!(span > Id::ZERO);
        // Build a byte mask covering exactly the significant bits of span.
        let sb = span.as_bytes();
        let top = sb.iter().position(|&b| b != 0).expect("span is non-zero");
        let mut mask = [0u8; crate::ID_BYTES];
        mask[top] = if sb[top].leading_zeros() == 0 {
            0xff
        } else {
            (1u8 << (8 - sb[top].leading_zeros())) - 1
        };
        for m in mask.iter_mut().skip(top + 1) {
            *m = 0xff;
        }
        loop {
            let mut raw = *Id::random(rng).as_bytes();
            for (r, m) in raw.iter_mut().zip(mask.iter()) {
                *r &= m;
            }
            let off = Id::from_bytes(raw);
            if off < span {
                // Offsets are 0-based over [0, span); the arc is (start, end]
                // so shift by one.
                return self.start.wrapping_add(off).wrapping_add(Id::from_u64(1));
            }
        }
    }
}

/// Partition the ring into the `2^b` arcs that share each possible value of
/// the first digit. Used by scattered hopid selection.
pub fn first_digit_buckets(b: u32) -> Vec<ArcRange> {
    let n = 1usize << b;
    (0..n)
        .map(|d| {
            let repr = Id::ZERO.with_digit(0, b, d as u8);
            ArcRange::prefix_bucket(repr, 1, b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_ring_contains_everything() {
        let all = ArcRange::full();
        assert!(all.contains(Id::ZERO));
        assert!(all.contains(Id::MAX));
        assert!(all.is_full());
        assert_eq!(all.len_saturating(), u128::MAX);
    }

    #[test]
    fn prefix_bucket_first_hex_digit() {
        let id: Id = "a000000000000000000000000000000000000000".parse().unwrap();
        let bucket = ArcRange::prefix_bucket(id, 1, 4);
        assert!(bucket.contains(id));
        let inside: Id = "afffffffffffffffffffffffffffffffffffffff".parse().unwrap();
        assert!(bucket.contains(inside));
        let below: Id = "9fffffffffffffffffffffffffffffffffffffff".parse().unwrap();
        assert!(!bucket.contains(below));
        let above: Id = "b000000000000000000000000000000000000000".parse().unwrap();
        assert!(!bucket.contains(above));
    }

    #[test]
    fn prefix_bucket_point() {
        let id = Id::from_u64(42);
        let bucket = ArcRange::prefix_bucket(id, crate::digits_for(4), 4);
        assert!(bucket.contains(id));
        assert!(!bucket.contains(Id::from_u64(41)));
        assert!(!bucket.contains(Id::from_u64(43)));
        assert_eq!(bucket.len_saturating(), 1);
    }

    #[test]
    fn buckets_tile_the_ring() {
        let buckets = first_digit_buckets(4);
        assert_eq!(buckets.len(), 16);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..256 {
            let id = Id::random(&mut rng);
            let hits = buckets.iter().filter(|r| r.contains(id)).count();
            assert_eq!(hits, 1, "{id} must be in exactly one bucket");
        }
    }

    #[test]
    fn sample_lands_in_arc() {
        let mut rng = StdRng::seed_from_u64(9);
        let buckets = first_digit_buckets(4);
        for bucket in &buckets {
            for _ in 0..16 {
                assert!(bucket.contains(bucket.sample(&mut rng)));
            }
        }
        // Narrow arc exercises the offset path.
        let narrow = ArcRange::new(Id::from_u64(10), Id::from_u64(13));
        for _ in 0..64 {
            let s = narrow.sample(&mut rng);
            assert!(narrow.contains(s), "{s} outside (10, 13]");
        }
    }

    #[test]
    fn len_of_small_arcs() {
        let arc = ArcRange::new(Id::from_u64(5), Id::from_u64(9));
        assert_eq!(arc.len_saturating(), 4);
        // Wrapping arc of the same width.
        let arc = ArcRange::new(Id::MAX, Id::from_u64(3));
        assert_eq!(arc.len_saturating(), 4);
    }

    /// Regression pin for `proptest-regressions/range.txt`: the shrunk case
    /// is the all-zero id with `plen = 2` (seed 3533236062246287576). Every
    /// prefix bucket of the all-zero id *wraps the ring origin* — its
    /// exclusive start is `Id::MAX` — so any sampler that computed
    /// `start + offset` without 160-bit wraparound, or mishandled the
    /// one-id-wide bucket at `plen = total`, would land outside the prefix.
    /// Exercise those buckets deterministically across many streams.
    #[test]
    fn regression_wrapped_bucket_sampling_keeps_prefix() {
        let total = crate::digits_for(4);
        for a in [Id::ZERO, Id::MAX] {
            for plen in [1usize, 2, total - 1, total] {
                let bucket = ArcRange::prefix_bucket(a, plen, 4);
                assert!(bucket.contains(a), "{a} missing from its own bucket");
                for seed in (0..64u64).chain([3533236062246287576]) {
                    let mut rng = StdRng::seed_from_u64(seed);
                    for _ in 0..16 {
                        let s = bucket.sample(&mut rng);
                        assert!(
                            a.shared_prefix_digits(s, 4) >= plen,
                            "sample {s} left the plen={plen} bucket of {a}"
                        );
                    }
                }
            }
        }
        // The all-zero id's buckets wrap: exclusive start above inclusive end.
        let wrapped = ArcRange::prefix_bucket(Id::ZERO, 2, 4);
        assert!(wrapped.start() > wrapped.end());
        assert_eq!(wrapped.start(), Id::MAX);
        // The one-id-wide bucket straddling the origin is (MAX, 0].
        let point = ArcRange::prefix_bucket(Id::ZERO, total, 4);
        assert_eq!(point.len_saturating(), 1);
        let mut rng = StdRng::seed_from_u64(3533236062246287576);
        assert_eq!(point.sample(&mut rng), Id::ZERO);
    }

    proptest! {
        #[test]
        fn prop_prefix_bucket_contains_exactly_matching_prefixes(
            a in any::<[u8; 20]>(), x in any::<[u8; 20]>(), plen in 0usize..=8
        ) {
            let (a, x) = (Id::from_bytes(a), Id::from_bytes(x));
            let bucket = ArcRange::prefix_bucket(a, plen, 4);
            let matches = a.shared_prefix_digits(x, 4) >= plen;
            prop_assert_eq!(bucket.contains(x), matches);
        }

        #[test]
        fn prop_sampling_preserves_prefix(
            a in any::<[u8; 20]>(), plen in 1usize..=40, seed in any::<u64>()
        ) {
            let a = Id::from_bytes(a);
            let bucket = ArcRange::prefix_bucket(a, plen, 4);
            let mut rng = StdRng::seed_from_u64(seed);
            let s = bucket.sample(&mut rng);
            prop_assert!(a.shared_prefix_digits(s, 4) >= plen);
        }
    }
}
