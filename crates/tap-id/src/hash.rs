//! A fast hasher for [`Id`]-keyed maps.
//!
//! Every `Id` in the system is either drawn uniformly at random or is the
//! output of a cryptographic hash (`hopid = H(node_ID, hkey, t)`), so its
//! bytes are already ideal hash input — SipHash's keyed strengthening buys
//! nothing here, and id-keyed lookups sit on the hot path of every routing
//! step and replica probe. [`IdHasher`] folds the written bytes into a
//! `u64` with one multiply per 8-byte chunk instead.
//!
//! Not suitable for attacker-chosen keys in general — use it only for maps
//! keyed by [`Id`] (the type aliases below), where uniformity is an
//! invariant of the id space itself.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::Id;

/// Multiply-fold hasher for uniformly distributed keys. See module docs.
#[derive(Default)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fibonacci-style multiply-xor fold. For 20 uniformly random bytes
        // this is three multiplies; collisions are as unlikely as for any
        // 64-bit digest of random input.
        let mut h = self.0;
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            h = (h ^ u64::from_le_bytes(buf)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        self.0 = h;
    }

    #[inline]
    fn write_usize(&mut self, _len: usize) {
        // Length prefixes carry no information for fixed-width `Id` keys.
    }
}

/// `BuildHasher` for [`IdHasher`] (stateless, so `Default` is free).
pub type BuildIdHasher = BuildHasherDefault<IdHasher>;

/// A `HashMap` keyed by [`Id`] using the fast fold hasher.
pub type IdHashMap<V> = HashMap<Id, V, BuildIdHasher>;

/// A `HashSet` of [`Id`]s using the fast fold hasher.
pub type IdHashSet = HashSet<Id, BuildIdHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn map_roundtrips_random_ids() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut map: IdHashMap<usize> = IdHashMap::default();
        let ids: Vec<Id> = (0..10_000).map(|_| Id::random(&mut rng)).collect();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(map.insert(id, i), None, "random ids must not collide");
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(map.get(id), Some(&i));
        }
        for id in &ids {
            assert!(map.remove(id).is_some());
        }
        assert!(map.is_empty());
    }

    #[test]
    fn distinct_ids_hash_differently() {
        use std::hash::BuildHasher;
        let build = BuildIdHasher::default();
        let hash_of = |id: Id| build.hash_one(id);
        // Near-identical ids (differing in one byte at either end) must
        // still separate: the fold mixes every chunk.
        let base = Id::from_u64(0x1234);
        assert_ne!(hash_of(base), hash_of(Id::from_u64(0x1235)));
        let mut high = *base.as_bytes();
        high[0] ^= 1;
        assert_ne!(hash_of(base), hash_of(Id::from_bytes(high)));
    }
}
