//! The [`Id`] type: a 160-bit unsigned integer on a circular ring.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use rand::Rng;

/// Width of an identifier in bits.
pub const ID_BITS: u32 = 160;
/// Width of an identifier in bytes.
pub const ID_BYTES: usize = 20;

/// A 160-bit identifier in a circular (mod 2^160) space.
///
/// Used for node ids, file ids, and TAP hop ids alike. Stored big-endian so
/// that byte-wise lexicographic order equals numeric order, which lets
/// `Ord`/`Eq` derive straight from the array.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id([u8; ID_BYTES]);

impl Id {
    /// The additive identity (all zero bits).
    pub const ZERO: Id = Id([0u8; ID_BYTES]);
    /// The maximum identifier (all one bits), i.e. `2^160 - 1`.
    pub const MAX: Id = Id([0xffu8; ID_BYTES]);
    /// Exactly half the ring, `2^159`. `ring_distance` never exceeds this.
    pub const HALF: Id = {
        let mut b = [0u8; ID_BYTES];
        b[0] = 0x80;
        Id(b)
    };

    /// Construct from big-endian bytes.
    #[inline]
    pub const fn from_bytes(bytes: [u8; ID_BYTES]) -> Self {
        Id(bytes)
    }

    /// The big-endian byte representation.
    #[inline]
    pub const fn as_bytes(&self) -> &[u8; ID_BYTES] {
        &self.0
    }

    /// Construct an id equal to a small integer (zero-extended to 160 bits).
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        let mut b = [0u8; ID_BYTES];
        let be = v.to_be_bytes();
        let mut i = 0;
        while i < 8 {
            b[ID_BYTES - 8 + i] = be[i];
            i += 1;
        }
        Id(b)
    }

    /// Construct from a `u128` (zero-extended to 160 bits).
    #[inline]
    pub const fn from_u128(v: u128) -> Self {
        let mut b = [0u8; ID_BYTES];
        let be = v.to_be_bytes();
        let mut i = 0;
        while i < 16 {
            b[ID_BYTES - 16 + i] = be[i];
            i += 1;
        }
        Id(b)
    }

    /// The low 64 bits of the identifier (handy for cheap test assertions).
    #[inline]
    pub fn low_u64(&self) -> u64 {
        let mut be = [0u8; 8];
        be.copy_from_slice(&self.0[ID_BYTES - 8..]);
        u64::from_be_bytes(be)
    }

    /// Draw an identifier uniformly at random.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut b = [0u8; ID_BYTES];
        rng.fill(&mut b[..]);
        Id(b)
    }

    /// Wrapping addition on the ring.
    #[must_use]
    pub fn wrapping_add(self, rhs: Id) -> Id {
        let mut out = [0u8; ID_BYTES];
        let mut carry = 0u16;
        for i in (0..ID_BYTES).rev() {
            let s = self.0[i] as u16 + rhs.0[i] as u16 + carry;
            out[i] = s as u8;
            carry = s >> 8;
        }
        Id(out)
    }

    /// Wrapping subtraction on the ring (`self - rhs mod 2^160`).
    #[must_use]
    pub fn wrapping_sub(self, rhs: Id) -> Id {
        let mut out = [0u8; ID_BYTES];
        let mut borrow = 0i16;
        for i in (0..ID_BYTES).rev() {
            let d = self.0[i] as i16 - rhs.0[i] as i16 - borrow;
            if d < 0 {
                out[i] = (d + 256) as u8;
                borrow = 1;
            } else {
                out[i] = d as u8;
                borrow = 0;
            }
        }
        Id(out)
    }

    /// Distance travelling clockwise (increasing ids) from `self` to `to`.
    #[inline]
    #[must_use]
    pub fn clockwise_distance(self, to: Id) -> Id {
        to.wrapping_sub(self)
    }

    /// Distance travelling counter-clockwise from `self` to `to`.
    #[inline]
    #[must_use]
    pub fn counter_clockwise_distance(self, to: Id) -> Id {
        self.wrapping_sub(to)
    }

    /// The minimal circular distance between two identifiers.
    ///
    /// This is the metric behind Pastry's "numerically closest nodeid":
    /// a key's root is the live node minimizing `ring_distance(nodeid, key)`.
    /// The result is at most [`Id::HALF`].
    #[must_use]
    pub fn ring_distance(self, other: Id) -> Id {
        let cw = self.clockwise_distance(other);
        let ccw = self.counter_clockwise_distance(other);
        if cw <= ccw {
            cw
        } else {
            ccw
        }
    }

    /// Compare two candidate ids by their ring distance to `self`,
    /// tie-breaking on the numerically smaller candidate so the relation is
    /// a total order (required for deterministic replica-set selection).
    pub fn cmp_distance(&self, a: Id, b: Id) -> Ordering {
        self.ring_distance(a)
            .cmp(&self.ring_distance(b))
            .then(a.cmp(&b))
    }

    /// Whether `self` is strictly closer to `target` than `other` is,
    /// under the same deterministic tie-break as [`Id::cmp_distance`].
    #[inline]
    pub fn closer_to(&self, target: Id, other: Id) -> bool {
        target.cmp_distance(*self, other) == Ordering::Less
    }

    /// Extract digit `index` where digit 0 is the most significant,
    /// using `b` bits per digit (`1 <= b <= 8`).
    ///
    /// Digits that would run past bit 159 are zero-padded at the low end,
    /// matching how Pastry treats identifiers as fixed-length digit strings.
    pub fn digit(&self, index: usize, b: u32) -> u8 {
        debug_assert!((1..=8).contains(&b), "digit width must be in 1..=8");
        let bit_off = index * b as usize;
        debug_assert!(bit_off < ID_BITS as usize, "digit index out of range");
        let avail = (ID_BITS as usize - bit_off).min(b as usize);
        let mut v = 0u8;
        for i in 0..avail {
            let bit = bit_off + i;
            let byte = self.0[bit / 8];
            let bitval = (byte >> (7 - (bit % 8))) & 1;
            v = (v << 1) | bitval;
        }
        // Pad short tail digits on the right, as if the id ended in zeros.
        v << (b as usize - avail)
    }

    /// Return a copy of `self` with digit `index` (width `b`) replaced by
    /// `value`, leaving all other bits untouched.
    #[must_use]
    pub fn with_digit(mut self, index: usize, b: u32, value: u8) -> Id {
        debug_assert!((1..=8).contains(&b));
        debug_assert!((value as u32) < (1u32 << b), "digit value out of range");
        let bit_off = index * b as usize;
        debug_assert!(bit_off < ID_BITS as usize);
        let avail = (ID_BITS as usize - bit_off).min(b as usize);
        for i in 0..avail {
            let bit = bit_off + i;
            let bitval = (value >> (b as usize - 1 - i)) & 1;
            let byte = &mut self.0[bit / 8];
            let mask = 1u8 << (7 - (bit % 8));
            if bitval == 1 {
                *byte |= mask;
            } else {
                *byte &= !mask;
            }
        }
        self
    }

    /// Length of the common digit prefix of `self` and `other`, in digits of
    /// width `b`. Equal ids share all [`crate::digits_for`]`(b)` digits.
    pub fn shared_prefix_digits(&self, other: Id, b: u32) -> usize {
        let total = crate::digits_for(b);
        // Fast path: count identical leading bytes first.
        let mut byte = 0;
        while byte < ID_BYTES && self.0[byte] == other.0[byte] {
            byte += 1;
        }
        if byte == ID_BYTES {
            return total;
        }
        let bit = byte * 8 + (self.0[byte] ^ other.0[byte]).leading_zeros() as usize;
        (bit / b as usize).min(total)
    }

    /// Flip the single bit `bit` (0 = most significant).
    #[must_use]
    pub fn flip_bit(mut self, bit: usize) -> Id {
        debug_assert!(bit < ID_BITS as usize);
        self.0[bit / 8] ^= 1u8 << (7 - (bit % 8));
        self
    }

    /// Whether `self` lies on the clockwise arc from `from` (exclusive) to
    /// `to` (inclusive). The full arc `from == to` contains everything.
    pub fn between_cw(&self, from: Id, to: Id) -> bool {
        if from == to {
            return true;
        }
        let span = from.clockwise_distance(to);
        let off = from.clockwise_distance(*self);
        off > Id::ZERO && off <= span
    }

    /// Render as a 40-character lowercase hex string.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(ID_BYTES * 2);
        for byte in self.0 {
            use std::fmt::Write;
            write!(s, "{byte:02x}").expect("writing to String cannot fail");
        }
        s
    }
}

/// Error parsing an [`Id`] from a hex string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdParseError {
    /// The string was not exactly 40 hex characters.
    BadLength(usize),
    /// A character was not a hex digit.
    BadChar(char),
}

impl fmt::Display for IdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdParseError::BadLength(n) => {
                write!(f, "expected {} hex chars, got {n}", ID_BYTES * 2)
            }
            IdParseError::BadChar(c) => write!(f, "invalid hex character {c:?}"),
        }
    }
}

impl std::error::Error for IdParseError {}

impl FromStr for Id {
    type Err = IdParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != ID_BYTES * 2 {
            return Err(IdParseError::BadLength(s.len()));
        }
        let mut out = [0u8; ID_BYTES];
        for (i, c) in s.chars().enumerate() {
            let v = c.to_digit(16).ok_or(IdParseError::BadChar(c))? as u8;
            out[i / 2] = (out[i / 2] << 4) | v;
        }
        Ok(Id(out))
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Abbreviate: the first 6 hex digits identify an id at a glance in
        // simulator logs while keeping routing-table dumps readable.
        write!(
            f,
            "Id({:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2]
        )
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn id(v: u64) -> Id {
        Id::from_u64(v)
    }

    #[test]
    fn constants() {
        assert_eq!(Id::ZERO.low_u64(), 0);
        assert_eq!(Id::MAX.wrapping_add(id(1)), Id::ZERO);
        assert_eq!(Id::HALF.wrapping_add(Id::HALF), Id::ZERO);
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(id(3).wrapping_add(id(4)), id(7));
        assert_eq!(id(7).wrapping_sub(id(4)), id(3));
        assert_eq!(id(0).wrapping_sub(id(1)), Id::MAX);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = Id::from_u128(u128::MAX);
        let one = id(1);
        let sum = a.wrapping_add(one);
        // 2^128 has byte 3 (0-indexed from MSB) == 1 and the rest zero.
        let mut expect = [0u8; ID_BYTES];
        expect[3] = 1;
        assert_eq!(sum, Id::from_bytes(expect));
    }

    #[test]
    fn ring_distance_is_minimal_and_symmetric() {
        assert_eq!(id(10).ring_distance(id(13)), id(3));
        assert_eq!(id(13).ring_distance(id(10)), id(3));
        // Wrap-around: distance between 2^160-1 and 1 is 2.
        assert_eq!(Id::MAX.ring_distance(id(1)), id(2));
    }

    #[test]
    fn ring_distance_capped_at_half() {
        let a = Id::ZERO;
        let b = Id::HALF;
        assert_eq!(a.ring_distance(b), Id::HALF);
        let c = Id::HALF.wrapping_add(id(1));
        assert!(a.ring_distance(c) < Id::HALF);
    }

    #[test]
    fn cmp_distance_totally_orders_equidistant_points() {
        // 5 is equidistant from 3 and 7; tie-break picks numerically smaller.
        assert_eq!(id(5).cmp_distance(id(3), id(7)), Ordering::Less);
        assert_eq!(id(5).cmp_distance(id(7), id(3)), Ordering::Greater);
        assert_eq!(id(5).cmp_distance(id(3), id(3)), Ordering::Equal);
    }

    #[test]
    fn digit_extraction_hex() {
        let a: Id = "f123456789abcdef0000000000000000000000ff".parse().unwrap();
        assert_eq!(a.digit(0, 4), 0xf);
        assert_eq!(a.digit(1, 4), 0x1);
        assert_eq!(a.digit(15, 4), 0xf);
        assert_eq!(a.digit(39, 4), 0xf);
    }

    #[test]
    fn digit_extraction_binary_and_bytes() {
        let a = Id::HALF;
        assert_eq!(a.digit(0, 1), 1);
        assert_eq!(a.digit(1, 1), 0);
        assert_eq!(a.digit(0, 8), 0x80);
    }

    #[test]
    fn digit_nondividing_width_pads_tail() {
        // b=3: digit 53 covers bits 159..162 — only 1 real bit remains.
        let a = Id::MAX;
        assert_eq!(a.digit(53, 3), 0b100);
    }

    #[test]
    fn with_digit_roundtrip() {
        let a = Id::ZERO.with_digit(0, 4, 0xa).with_digit(39, 4, 0x5);
        assert_eq!(a.digit(0, 4), 0xa);
        assert_eq!(a.digit(39, 4), 0x5);
        assert_eq!(a.digit(20, 4), 0);
    }

    #[test]
    fn shared_prefix() {
        let a: Id = "aabbccdd00000000000000000000000000000000".parse().unwrap();
        let b: Id = "aabbccde00000000000000000000000000000000".parse().unwrap();
        assert_eq!(a.shared_prefix_digits(b, 4), 7);
        assert_eq!(a.shared_prefix_digits(a, 4), 40);
        assert_eq!(a.shared_prefix_digits(b, 1), 30);
        assert_eq!(Id::ZERO.shared_prefix_digits(Id::MAX, 4), 0);
    }

    #[test]
    fn between_cw_arcs() {
        assert!(id(5).between_cw(id(3), id(7)));
        assert!(!id(3).between_cw(id(3), id(7)), "from is exclusive");
        assert!(id(7).between_cw(id(3), id(7)), "to is inclusive");
        // Wrapping arc.
        assert!(id(1).between_cw(Id::MAX, id(3)));
        assert!(!id(5).between_cw(Id::MAX, id(3)));
        // Degenerate full arc.
        assert!(id(9).between_cw(id(2), id(2)));
    }

    #[test]
    fn hex_roundtrip_and_parse_errors() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            let a = Id::random(&mut rng);
            assert_eq!(a.to_hex().parse::<Id>().unwrap(), a);
        }
        assert!(matches!(
            "abc".parse::<Id>(),
            Err(IdParseError::BadLength(3))
        ));
        let bad = "g".repeat(40);
        assert!(matches!(bad.parse::<Id>(), Err(IdParseError::BadChar('g'))));
    }

    #[test]
    fn flip_bit() {
        assert_eq!(Id::ZERO.flip_bit(0), Id::HALF);
        assert_eq!(Id::ZERO.flip_bit(159), id(1));
        assert_eq!(Id::ZERO.flip_bit(5).flip_bit(5), Id::ZERO);
    }

    #[test]
    fn ordering_matches_numeric() {
        assert!(id(1) < id(2));
        assert!(Id::from_u128(1u128 << 100) > Id::MAX.wrapping_sub(Id::MAX));
        assert!(Id::HALF > Id::from_u128(u128::MAX));
    }

    proptest! {
        #[test]
        fn prop_add_sub_inverse(a in any::<[u8; 20]>(), b in any::<[u8; 20]>()) {
            let (a, b) = (Id::from_bytes(a), Id::from_bytes(b));
            prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
            prop_assert_eq!(a.wrapping_sub(b).wrapping_add(b), a);
        }

        #[test]
        fn prop_add_commutes(a in any::<[u8; 20]>(), b in any::<[u8; 20]>()) {
            let (a, b) = (Id::from_bytes(a), Id::from_bytes(b));
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn prop_ring_distance_symmetric_and_bounded(
            a in any::<[u8; 20]>(), b in any::<[u8; 20]>()
        ) {
            let (a, b) = (Id::from_bytes(a), Id::from_bytes(b));
            let d = a.ring_distance(b);
            prop_assert_eq!(d, b.ring_distance(a));
            prop_assert!(d <= Id::HALF);
            prop_assert_eq!(a.ring_distance(a), Id::ZERO);
        }

        #[test]
        fn prop_ring_distance_triangle(
            a in any::<[u8; 20]>(), b in any::<[u8; 20]>(), c in any::<[u8; 20]>()
        ) {
            let (a, b, c) = (Id::from_bytes(a), Id::from_bytes(b), Id::from_bytes(c));
            // d(a,c) <= d(a,b) + d(b,c); the sum may wrap, in which case it
            // exceeds HALF >= d(a,c) anyway, so compare in 161-bit space.
            let ab = a.ring_distance(b);
            let bc = b.ring_distance(c);
            let ac = a.ring_distance(c);
            let (sum, overflow) = {
                let s = ab.wrapping_add(bc);
                (s, s < ab)
            };
            prop_assert!(overflow || ac <= sum);
        }

        #[test]
        fn prop_digit_roundtrip(bytes in any::<[u8; 20]>(), idx in 0usize..40) {
            let a = Id::from_bytes(bytes);
            let d = a.digit(idx, 4);
            prop_assert_eq!(a.with_digit(idx, 4, d), a);
            prop_assert_eq!(a.with_digit(idx, 4, (d + 1) % 16).digit(idx, 4), (d + 1) % 16);
        }

        #[test]
        fn prop_shared_prefix_consistent_with_digits(
            a in any::<[u8; 20]>(), b in any::<[u8; 20]>(), w in 1u32..=8
        ) {
            let (a, b) = (Id::from_bytes(a), Id::from_bytes(b));
            let p = a.shared_prefix_digits(b, w);
            for i in 0..p {
                prop_assert_eq!(a.digit(i, w), b.digit(i, w));
            }
            if p < crate::digits_for(w) {
                prop_assert_ne!(a.digit(p, w), b.digit(p, w));
            }
        }

        #[test]
        fn prop_between_cw_matches_distances(
            x in any::<[u8; 20]>(), from in any::<[u8; 20]>(), to in any::<[u8; 20]>()
        ) {
            let (x, from, to) = (Id::from_bytes(x), Id::from_bytes(from), Id::from_bytes(to));
            prop_assume!(from != to);
            let inside = x.between_cw(from, to);
            let expect = from.clockwise_distance(x) != Id::ZERO
                && from.clockwise_distance(x) <= from.clockwise_distance(to);
            prop_assert_eq!(inside, expect);
        }
    }
}
