//! # tap-id — the 160-bit circular identifier space
//!
//! Structured P2P overlays in the Pastry family assign every node and every
//! stored object a fixed-width identifier drawn uniformly from a circular
//! space. TAP (Zhu & Hu, ICPP 2004) additionally names *tunnel hops* in the
//! same space: a `hopid` is just an identifier, and the "tunnel hop node"
//! for a hop is the live node whose nodeid is numerically closest to it.
//!
//! This crate provides that identifier space:
//!
//! * [`Id`] — a 160-bit unsigned integer (the width of SHA-1 output, as used
//!   by Pastry/PAST and by TAP's `hopid = H(node_ID, hkey, t)` construction),
//!   with full wrapping ring arithmetic.
//! * Distance metrics: [`Id::ring_distance`] (minimal circular distance, the
//!   "numerically closest" relation Pastry's leaf set uses) and the directed
//!   clockwise/counter-clockwise distances.
//! * Digit / prefix arithmetic for prefix routing: [`Id::digit`],
//!   [`Id::shared_prefix_digits`], [`Id::with_digit`] for an arbitrary digit
//!   width `b` (Pastry's `b` parameter, typically 4 → hexadecimal digits).
//!
//! The type is deliberately `Copy` (20 bytes), ordering is the plain numeric
//! order, and all arithmetic is branch-light constant-width `u8` limb math —
//! identifier comparisons sit on the hot path of every simulated routing
//! step, so the representation is kept flat and allocation-free.
//!
//! ## Example
//!
//! ```
//! use tap_id::Id;
//!
//! let a = Id::from_u64(0x1234);
//! let b = Id::from_u64(0x1239);
//! assert_eq!(a.ring_distance(b), Id::from_u64(5));
//!
//! // 160 bits = 40 hex digits when b = 4.
//! assert_eq!(a.digit(39, 4), 0x4);
//! assert_eq!(a.shared_prefix_digits(b, 4), 39);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod id;
mod range;

pub use hash::{BuildIdHasher, IdHashMap, IdHashSet, IdHasher};
pub use id::{Id, IdParseError, ID_BITS, ID_BYTES};
pub use range::{first_digit_buckets, ArcRange};

/// Number of digits an [`Id`] has for a given digit width `b` (bits/digit).
///
/// Pastry writes identifiers as a sequence of base-`2^b` digits; with the
/// customary `b = 4` a 160-bit id has 40 hexadecimal digits.
#[inline]
pub const fn digits_for(b: u32) -> usize {
    (ID_BITS as usize).div_ceil(b as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_for_common_bases() {
        assert_eq!(digits_for(1), 160);
        assert_eq!(digits_for(2), 80);
        assert_eq!(digits_for(4), 40);
        assert_eq!(digits_for(8), 20);
        // Non-dividing width rounds up.
        assert_eq!(digits_for(3), 54);
    }
}
