//! Tunnel lifecycle management: probing, failure detection, and periodic
//! refresh.
//!
//! The paper leaves two maintenance duties to the user: "TAP does not have
//! a mechanism to detect corrupted/malicious tunnels. It requires users to
//! reform their tunnels periodically against colluding malicious nodes"
//! (§9), and its own Fig. 5 concludes that "users should refresh their
//! tunnels periodically to reduce the risk of having their anonymity
//! compromised" (§7.2). [`TunnelManager`] packages both duties:
//!
//! * **liveness probing** — each tick, every active tunnel carries a probe
//!   to a random key root; a [`TransitError::ThaLost`] (all replicas of a
//!   hop gone) retires and replaces the tunnel immediately;
//! * **age-based refresh** — tunnels older than the policy's `max_age`
//!   are rotated even while healthy, bounding how long a pooled-THA
//!   adversary can exploit any one tunnel;
//! * **anchor-pool upkeep** — the pool of deployed-but-unused anchors is
//!   replenished before it runs dry, so replacements never block.

use tap_id::Id;

use crate::system::TapSystem;
use crate::transit::{self, TransitError, TransitOptions};
use crate::tunnel::Tunnel;
use crate::wire::Destination;

/// Maintenance policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct RefreshPolicy {
    /// Retire tunnels after this many ticks even if healthy. The Fig. 5
    /// refresh corresponds to `1`; `u64::MAX` disables aging.
    pub max_age: u64,
    /// Send a liveness probe through each tunnel every tick.
    pub probe: bool,
    /// Keep at least this many unused anchors deployed.
    pub min_pool: usize,
    /// How many anchors to deploy when the pool runs low.
    pub replenish_batch: usize,
    /// Each tick, rebuild any THA replica set that has fallen under `k`
    /// live holders ([`TapSystem::re_replicate_thas`]) — the repair a
    /// takeover or partition leaves behind. Defaults on: a degraded
    /// anchor is one more failure away from [`TransitError::ThaLost`].
    pub re_replicate: bool,
}

impl Default for RefreshPolicy {
    fn default() -> Self {
        RefreshPolicy {
            max_age: 10,
            probe: true,
            min_pool: 10,
            replenish_batch: 10,
            re_replicate: true,
        }
    }
}

/// An active tunnel under management.
#[derive(Debug, Clone)]
pub struct ManagedTunnel {
    /// The tunnel itself.
    pub tunnel: Tunnel,
    /// Tick at which it was formed.
    pub created_at: u64,
    /// Probes it has survived.
    pub probes_survived: u64,
}

/// Counters describing what the manager has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Probes sent in total.
    pub probes_sent: u64,
    /// Probes that found a broken tunnel.
    pub probe_failures: u64,
    /// Tunnels retired because of age.
    pub refreshed_by_age: u64,
    /// Tunnels retired because a probe failed.
    pub replaced_after_failure: u64,
    /// Tunnels formed (initial + replacements).
    pub tunnels_formed: u64,
    /// Anchors deployed by pool upkeep.
    pub anchors_deployed: u64,
    /// THA replica sets rebuilt after degrading below `k` live holders.
    pub re_replications: u64,
    /// Times a replacement could not be formed (pool exhausted and
    /// replenishment failed) — should stay zero in a healthy system.
    pub formation_failures: u64,
}

/// Automatic tunnel maintenance for one user node.
#[derive(Debug)]
pub struct TunnelManager {
    owner: Id,
    policy: RefreshPolicy,
    target: usize,
    tick: u64,
    active: Vec<ManagedTunnel>,
    /// Running counters.
    pub stats: ManagerStats,
}

impl TunnelManager {
    /// A manager for `owner` maintaining `target` live tunnels.
    pub fn new(owner: Id, target: usize, policy: RefreshPolicy) -> Self {
        assert!(target >= 1, "managing zero tunnels is pointless");
        TunnelManager {
            owner,
            policy,
            target,
            tick: 0,
            active: Vec::new(),
            stats: ManagerStats::default(),
        }
    }

    /// The tunnels currently under management.
    pub fn active(&self) -> &[ManagedTunnel] {
        &self.active
    }

    /// The manager's owner node.
    pub fn owner(&self) -> Id {
        self.owner
    }

    /// Current tick counter.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// One maintenance round: replenish the anchor pool, retire aged
    /// tunnels, probe the rest, replace casualties, top up to the target
    /// count. Call once per application-defined time unit.
    pub fn tick(&mut self, sys: &mut TapSystem) {
        self.tick += 1;
        self.replenish_pool(sys);

        // Bring degraded replica sets back to strength *before* probing:
        // a probe through a hop with one surviving holder is a coin flip
        // away from a false ThaLost retirement.
        if self.policy.re_replicate {
            self.stats.re_replications += sys.re_replicate_thas() as u64;
        }

        // Age-based refresh (§7.2): retire before probing — an aged tunnel
        // is rotated even if it still works.
        let max_age = self.policy.max_age;
        let tick = self.tick;
        let mut retired = Vec::new();
        self.active.retain(|mt| {
            if tick.saturating_sub(mt.created_at) >= max_age {
                retired.push(mt.tunnel.clone());
                false
            } else {
                true
            }
        });
        for t in retired {
            sys.teardown_tunnel(&t);
            self.stats.refreshed_by_age += 1;
        }

        // Probe survivors (§9's missing detection mechanism).
        if self.policy.probe {
            let mut broken = Vec::new();
            for (i, mt) in self.active.iter_mut().enumerate() {
                self.stats.probes_sent += 1;
                let probe_key = Id::random(&mut sys.rng);
                let onion = mt.tunnel.build_onion(
                    &mut sys.rng,
                    Destination::KeyRoot(probe_key),
                    b"probe",
                    None,
                );
                match transit::drive(
                    &mut sys.overlay,
                    &sys.thas,
                    self.owner,
                    mt.tunnel.entry_hopid(),
                    onion,
                    TransitOptions::default(),
                ) {
                    Ok(_) => mt.probes_survived += 1,
                    Err(TransitError::ThaLost { .. } | TransitError::BadLayer { .. }) => {
                        self.stats.probe_failures += 1;
                        broken.push(i);
                    }
                    // Routing trouble is transient; don't churn the tunnel.
                    Err(_) => {}
                }
            }
            for i in broken.into_iter().rev() {
                let mt = self.active.remove(i);
                // Best-effort teardown: surviving hops' anchors deleted.
                sys.teardown_tunnel(&mt.tunnel);
                self.stats.replaced_after_failure += 1;
            }
        }

        // Top up to target.
        while self.active.len() < self.target {
            if !self.form_one(sys) {
                self.stats.formation_failures += 1;
                break;
            }
        }
    }

    fn replenish_pool(&mut self, sys: &mut TapSystem) {
        let pool = sys.anchor_pool(self.owner).len();
        if pool < self.policy.min_pool {
            let deployed = sys.deploy_anchors_direct(self.owner, self.policy.replenish_batch);
            self.stats.anchors_deployed += deployed as u64;
        }
    }

    fn form_one(&mut self, sys: &mut TapSystem) -> bool {
        // Ensure the pool can cover one tunnel.
        if sys.anchor_pool(self.owner).len() < sys.config.tunnel_length {
            self.replenish_pool(sys);
        }
        match sys.form_tunnel(self.owner) {
            Some(t) => {
                self.active.push(ManagedTunnel {
                    tunnel: t,
                    created_at: self.tick,
                    probes_survived: 0,
                });
                self.stats.tunnels_formed += 1;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    fn setup(n: usize, seed: u64, policy: RefreshPolicy) -> (TapSystem, TunnelManager) {
        let mut sys = TapSystem::bootstrap(SystemConfig::paper_defaults(), n, seed);
        let owner = sys.random_node();
        sys.deploy_anchors_direct(owner, 20);
        let mgr = TunnelManager::new(owner, 2, policy);
        (sys, mgr)
    }

    #[test]
    fn forms_up_to_target_and_probes() {
        let (mut sys, mut mgr) = setup(200, 1, RefreshPolicy::default());
        mgr.tick(&mut sys);
        assert_eq!(mgr.active().len(), 2);
        assert_eq!(mgr.stats.tunnels_formed, 2);
        mgr.tick(&mut sys);
        assert_eq!(mgr.stats.probes_sent, 2, "both tunnels probed on tick 2");
        assert_eq!(mgr.stats.probe_failures, 0);
        assert!(mgr.active().iter().all(|t| t.probes_survived >= 1));
    }

    #[test]
    fn detects_and_replaces_broken_tunnels() {
        let (mut sys, mut mgr) = setup(250, 2, RefreshPolicy::default());
        mgr.tick(&mut sys);
        let victim_hop = mgr.active()[0].tunnel.hop_ids()[1];
        // Kill every replica holder of that hop — no repair.
        for holder in sys.thas.holders(victim_hop).to_vec() {
            if holder != mgr.owner() {
                sys.fail_node(holder, false);
            }
        }
        let before = mgr.stats.tunnels_formed;
        mgr.tick(&mut sys);
        assert_eq!(mgr.stats.probe_failures, 1, "the dead hop must be noticed");
        assert_eq!(mgr.stats.replaced_after_failure, 1);
        assert_eq!(mgr.active().len(), 2, "replacement formed");
        assert!(mgr.stats.tunnels_formed > before);
        // The replacement does not reuse the dead hop.
        assert!(mgr
            .active()
            .iter()
            .all(|t| !t.tunnel.hop_ids().contains(&victim_hop)));
    }

    #[test]
    fn age_based_refresh_rotates_hops() {
        let policy = RefreshPolicy {
            max_age: 3,
            ..RefreshPolicy::default()
        };
        let (mut sys, mut mgr) = setup(200, 3, policy);
        mgr.tick(&mut sys);
        let original: Vec<Id> = mgr.active()[0].tunnel.hop_ids();
        for _ in 0..4 {
            mgr.tick(&mut sys);
        }
        assert!(mgr.stats.refreshed_by_age >= 2, "both tunnels aged out");
        let current: Vec<Id> = mgr.active()[0].tunnel.hop_ids();
        assert_ne!(original, current, "rotation must change the hop set");
        // Retired anchors were deleted from the store.
        for h in original {
            assert!(sys.thas.get(h).is_none(), "old anchor {h:?} still stored");
        }
    }

    #[test]
    fn pool_replenishes_automatically() {
        let policy = RefreshPolicy {
            max_age: 1, // rotate every tick: heavy anchor consumption
            ..RefreshPolicy::default()
        };
        let (mut sys, mut mgr) = setup(200, 4, policy);
        for _ in 0..6 {
            mgr.tick(&mut sys);
            assert_eq!(mgr.active().len(), 2, "target always met");
        }
        assert!(mgr.stats.anchors_deployed > 0, "upkeep had to deploy");
        assert_eq!(mgr.stats.formation_failures, 0);
    }

    #[test]
    fn survives_sustained_churn() {
        let (mut sys, mut mgr) = setup(300, 5, RefreshPolicy::default());
        for round in 0..15 {
            for _ in 0..6 {
                let victim = loop {
                    let v = sys.random_node();
                    if v != mgr.owner() {
                        break v;
                    }
                };
                sys.fail_node(victim, true);
                sys.add_node();
            }
            mgr.tick(&mut sys);
            assert_eq!(mgr.active().len(), 2, "round {round}");
        }
        // With replica repair running, probes should almost never fail.
        assert!(
            mgr.stats.probe_failures <= 2,
            "repairing churn should rarely break tunnels: {:?}",
            mgr.stats
        );
    }

    #[test]
    fn tick_re_replicates_degraded_anchors() {
        let (mut sys, mut mgr) = setup(250, 7, RefreshPolicy::default());
        mgr.tick(&mut sys);
        // Kill one (non-owner) holder of each of the first tunnel's hops
        // WITHOUT repair: the replica sets degrade below k but survive.
        let hops = mgr.active()[0].tunnel.hop_ids();
        for h in &hops {
            let victim = sys
                .thas
                .holders(*h)
                .iter()
                .copied()
                .find(|n| *n != mgr.owner());
            if let Some(v) = victim {
                sys.fail_node(v, false);
            }
        }
        let k = sys.thas.replication();
        assert!(
            hops.iter().any(|h| {
                sys.thas
                    .holders(*h)
                    .iter()
                    .filter(|n| sys.overlay.is_live(**n))
                    .count()
                    < k
            }),
            "at least one replica set must be degraded before the tick"
        );
        mgr.tick(&mut sys);
        assert!(mgr.stats.re_replications > 0, "tick must rebuild");
        for h in &hops {
            if sys.thas.get(*h).is_some() {
                assert_eq!(
                    sys.thas.holders(*h).len(),
                    k,
                    "anchor {h:?} back to full strength"
                );
            }
        }
        let report = sys.metrics().snapshot();
        assert_eq!(
            report.counter("core.tha.re_replications"),
            mgr.stats.re_replications
        );
    }

    #[test]
    fn disabled_probing_skips_probes() {
        let policy = RefreshPolicy {
            probe: false,
            max_age: u64::MAX,
            ..RefreshPolicy::default()
        };
        let (mut sys, mut mgr) = setup(150, 6, policy);
        mgr.tick(&mut sys);
        mgr.tick(&mut sys);
        assert_eq!(mgr.stats.probes_sent, 0);
        assert_eq!(mgr.stats.refreshed_by_age, 0);
    }
}
