//! Erasure-coded multipath transfer across parallel tunnels.
//!
//! A single forward tunnel makes every transfer hostage to its weakest
//! link: one lossy hop or partition window forces the full retry/backoff
//! gauntlet, and one relay sees the entire payload. This module stripes a
//! payload with the [`tap_crypto::ec`] Reed–Solomon codec into `n`
//! fragments, builds one onion per fragment over `n` *disjoint* tunnels
//! (no shared hopids — §3.5 scatter applied across stripes, not just
//! within one tunnel), ships them concurrently through
//! [`NetDriver::drive_striped`], and reconstructs the payload as soon as
//! any `k` fragments arrive.
//!
//! Fragments are tagged on three levels: the netsim flow tag names the
//! wire chain, the stripe index names the tunnel, and the fragment header
//! ([`tap_crypto::ec::FragmentMeta`]) carries `(index, n, k)` so the
//! receiver can regroup fragments without trusting arrival order.
//!
//! **Degradation is explicit policy, never a panic.** When fewer than `n`
//! disjoint tunnels exist (small overlay, heavy churn):
//!
//! * `k ≤ m < n` tunnels — stripe over an `(m, k)` code: same
//!   reconstruction threshold, less slack;
//! * `m < k` tunnels — fall back to single-path over the best tunnel with
//!   the identity `(1, 1)` code;
//!
//! both journal a `core.ec.degraded` event and bump the counter of the
//! same name. Zero tunnels is the caller's error ([`MultipathError::NoTunnels`]).

use rand::Rng;

use tap_crypto::ec::{EcConfig, EcError};
use tap_id::Id;
use tap_netsim::latency::LatencyModel;
use tap_pastry::storage::ReplicaStore;
use tap_pastry::KeyRouter;

use crate::metrics::CoreInstruments;
use crate::netdrive::{MultipathReport, NetDriver};
use crate::tha::{Tha, ThaSecret};
use crate::transit::{HintCache, TransitError, TransitOptions};
use crate::tunnel::Tunnel;
use crate::wire::Destination;

/// The `(n, k)` stripe configuration of a multipath transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultipathConfig {
    /// Stripes (tunnels, fragments) per transfer.
    pub n: u8,
    /// Fragments required to reconstruct the payload.
    pub k: u8,
    /// Erasure-code chunk granularity in bytes.
    pub chunk: usize,
}

impl Default for MultipathConfig {
    /// craftnet's 5/3 over ~3 KB chunks.
    fn default() -> Self {
        MultipathConfig {
            n: 5,
            k: 3,
            chunk: EcConfig::DEFAULT_CHUNK,
        }
    }
}

impl MultipathConfig {
    /// An `(n, k)` config over the default chunk size.
    pub fn new(n: u8, k: u8) -> Self {
        MultipathConfig {
            n,
            k,
            chunk: EcConfig::DEFAULT_CHUNK,
        }
    }
}

/// Why a multipath transfer failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultipathError {
    /// The caller supplied no tunnels at all — nothing was sent, no
    /// give-up was counted.
    NoTunnels,
    /// Encoding or reconstruction failed (bad config, too few intact
    /// fragments despite enough deliveries — should not happen unless
    /// fragments were tampered with in flight).
    Code(EcError),
    /// The wire transfer died: more stripes failed than the code
    /// tolerates ([`TransitError::StripesExhausted`]), already counted as
    /// exactly one `core.transit.giveups`.
    Transit(TransitError),
}

impl std::fmt::Display for MultipathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultipathError::NoTunnels => write!(f, "no tunnels available for multipath"),
            MultipathError::Code(e) => write!(f, "erasure coding failed: {e}"),
            MultipathError::Transit(e) => write!(f, "striped transit failed: {e}"),
        }
    }
}

impl std::error::Error for MultipathError {}

impl From<EcError> for MultipathError {
    fn from(e: EcError) -> Self {
        MultipathError::Code(e)
    }
}

impl From<TransitError> for MultipathError {
    fn from(e: TransitError) -> Self {
        MultipathError::Transit(e)
    }
}

/// What a successful striped send produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultipathOutcome {
    /// The payload as reconstructed at the receiver — byte-identical to
    /// what was sent (the EC digest guarantees it).
    pub payload: Vec<u8>,
    /// Stripes actually used (`< config.n` exactly when `degraded`).
    pub stripes_used: usize,
    /// Whether the transfer fell below the configured `n` stripes.
    pub degraded: bool,
    /// Fragments that arrived corrupted and were skipped by the decode.
    pub corrupt_fragments: usize,
    /// Wire-level accounting from [`NetDriver::drive_striped`].
    pub report: MultipathReport,
}

/// Form up to `count` tunnels of length `l` with *globally* disjoint
/// hopids: no anchor serves two stripes, so no relay holds the THA of more
/// than one stripe's hop. Returns fewer than `count` tunnels (possibly
/// none) when the pool runs dry — the degradation policy in
/// [`send_striped`] takes it from there.
pub fn form_disjoint_tunnels<R: Rng + ?Sized>(
    rng: &mut R,
    pool: &[ThaSecret],
    count: usize,
    l: usize,
    b: u32,
) -> Vec<Tunnel> {
    let mut remaining: Vec<ThaSecret> = pool.to_vec();
    let mut tunnels = Vec::with_capacity(count);
    while tunnels.len() < count {
        let Some(t) = Tunnel::form_scattered(rng, &remaining, l, b) else {
            break;
        };
        let used = t.hop_ids();
        remaining.retain(|s| !used.contains(&s.hopid));
        tunnels.push(t);
    }
    tunnels
}

/// Stripe `payload` across `tunnels` to `dest` and reconstruct it from the
/// first `k` fragments that arrive.
///
/// Applies the degradation policy (see module docs) to however many
/// tunnels the caller could form, encodes, builds one onion per stripe,
/// runs [`NetDriver::drive_striped`], and decodes. `instruments` records
/// fragment/stripe/laggard counters plus the `core.ec.degraded` journal
/// event; the per-*transfer* delivered-or-gave-up invariant is enforced by
/// the driver underneath.
#[allow(clippy::too_many_arguments)]
pub fn send_striped<L: LatencyModel, R: Rng + ?Sized>(
    driver: &mut NetDriver<L>,
    overlay: &mut impl KeyRouter,
    thas: &ReplicaStore<Tha>,
    rng: &mut R,
    from: Id,
    dest: Id,
    tunnels: &[Tunnel],
    payload: &[u8],
    config: MultipathConfig,
    options: TransitOptions,
    hints: Option<&mut HintCache>,
    instruments: Option<&CoreInstruments>,
) -> Result<MultipathOutcome, MultipathError> {
    if tunnels.is_empty() {
        return Err(MultipathError::NoTunnels);
    }
    let m = tunnels.len().min(config.n as usize);
    let degraded = m < config.n as usize;
    let (code, used) = if m >= config.k as usize {
        (EcConfig::with_chunk(m as u8, config.k, config.chunk)?, m)
    } else {
        // Too few tunnels even for the reconstruction threshold: ship the
        // whole payload single-path under the identity code.
        (EcConfig::with_chunk(1, 1, config.chunk)?, 1)
    };
    if degraded {
        if let Some(ins) = instruments {
            ins.record_ec_degraded(config.n as usize, used);
        }
    }

    let fragments = code.encode(payload)?;
    debug_assert_eq!(fragments.len(), used);
    // One reusable builder for all stripes: after the first stripe warms
    // it, each remaining onion costs the fused cipher pass plus exactly
    // one exact-size output copy.
    let mut builder = tap_crypto::onion::OnionBuilder::new();
    let stripes: Vec<(Id, Vec<u8>)> = tunnels[..used]
        .iter()
        .zip(&fragments)
        .map(|(t, frag)| {
            t.build_onion_into(
                rng,
                Destination::Node(dest),
                frag,
                hints.as_deref(),
                &mut builder,
            );
            (t.entry_hopid(), builder.as_bytes().to_vec())
        })
        .collect();

    let (delivered, report) = driver.drive_striped(
        overlay,
        thas,
        from,
        stripes,
        code.k() as usize,
        options,
        hints,
    )?;
    let cores: Vec<Vec<u8>> = delivered.into_iter().map(|(_, core)| core).collect();
    let decoded = code.reconstruct(&cores)?;
    Ok(MultipathOutcome {
        payload: decoded.payload,
        stripes_used: used,
        degraded,
        corrupt_fragments: decoded.corrupt.len(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tha::ThaFactory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tap_metrics::Registry;
    use tap_netsim::latency::UniformLatency;
    use tap_netsim::{Network, NetworkConfig};
    use tap_pastry::{Overlay, PastryConfig};

    struct Fx {
        overlay: Overlay,
        thas: ReplicaStore<Tha>,
        rng: StdRng,
        initiator: Id,
        driver: NetDriver<UniformLatency>,
        registry: Registry,
    }

    fn fixture(n: usize, seed: u64) -> Fx {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = Overlay::new(PastryConfig::paper_defaults());
        for _ in 0..n {
            overlay.add_random_node(&mut rng);
        }
        let initiator = overlay.random_node(&mut rng).unwrap();
        let mut driver = NetDriver::new(Network::new(
            NetworkConfig::paper_defaults(),
            UniformLatency::paper(seed),
        ));
        let registry = Registry::new();
        driver.use_instruments(CoreInstruments::new(&registry));
        Fx {
            overlay,
            thas: ReplicaStore::new(3),
            rng,
            initiator,
            driver,
            registry,
        }
    }

    /// Deploy `count` anchors and return their secrets as a pool.
    fn anchor_pool(fx: &mut Fx, count: usize) -> Vec<ThaSecret> {
        let mut f = ThaFactory::new(&mut fx.rng, fx.initiator);
        let mut pool = Vec::new();
        while pool.len() < count {
            let s = f.next(&mut fx.rng);
            if fx.thas.insert(&fx.overlay, s.hopid, s.stored()).unwrap() {
                pool.push(s);
            }
        }
        pool
    }

    fn pick_dest(fx: &mut Fx) -> Id {
        loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        }
    }

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 + 7) as u8).collect()
    }

    #[test]
    fn full_five_three_transfer_roundtrips() {
        let mut fx = fixture(300, 31);
        let pool = anchor_pool(&mut fx, 30);
        let tunnels = form_disjoint_tunnels(&mut fx.rng, &pool, 5, 3, 4);
        assert_eq!(tunnels.len(), 5);
        let dest = pick_dest(&mut fx);
        let sent = payload(9216); // three default chunks
        let out = send_striped(
            &mut fx.driver,
            &mut fx.overlay,
            &fx.thas,
            &mut fx.rng,
            fx.initiator,
            dest,
            &tunnels,
            &sent,
            MultipathConfig::default(),
            TransitOptions::default(),
            None,
            Some(&CoreInstruments::new(&fx.registry)),
        )
        .unwrap();
        assert_eq!(out.payload, sent);
        assert_eq!(out.stripes_used, 5);
        assert!(!out.degraded);
        assert_eq!(out.corrupt_fragments, 0);
        assert_eq!(out.report.stripes_total, 5);
        let snap = fx.registry.snapshot();
        assert_eq!(snap.counter("core.ec.degraded"), 0);
        assert!(snap.counter("core.mp.fragments_delivered") >= 3);
        // Disjoint stripes: wire bytes per stripe ≈ payload/k, so total
        // wire bytes stay well under n× the single-path cost.
        assert!(out.report.bytes_on_wire > 0);
    }

    #[test]
    fn degrades_to_fewer_stripes_with_journal() {
        let mut fx = fixture(300, 32);
        // Pool supports only 4 disjoint 3-hop tunnels.
        let pool = anchor_pool(&mut fx, 12);
        let tunnels = form_disjoint_tunnels(&mut fx.rng, &pool, 5, 3, 4);
        assert_eq!(tunnels.len(), 4);
        let journal = fx.registry.install_journal(16);
        let dest = pick_dest(&mut fx);
        let sent = payload(4000);
        let out = send_striped(
            &mut fx.driver,
            &mut fx.overlay,
            &fx.thas,
            &mut fx.rng,
            fx.initiator,
            dest,
            &tunnels,
            &sent,
            MultipathConfig::default(),
            TransitOptions::default(),
            None,
            Some(&CoreInstruments::new(&fx.registry)),
        )
        .unwrap();
        assert_eq!(out.payload, sent);
        assert_eq!(out.stripes_used, 4, "(4, 3) code over the 4 tunnels");
        assert!(out.degraded);
        assert_eq!(fx.registry.snapshot().counter("core.ec.degraded"), 1);
        let events = journal.snapshot();
        assert!(
            events
                .iter()
                .any(|e| e.kind == "core.ec.degraded" && e.detail.contains("formed 4")),
            "degradation must be journaled: {events:?}"
        );
    }

    #[test]
    fn degrades_to_single_path_below_k() {
        let mut fx = fixture(300, 33);
        // Pool supports only 2 disjoint tunnels — under k = 3.
        let pool = anchor_pool(&mut fx, 6);
        let tunnels = form_disjoint_tunnels(&mut fx.rng, &pool, 5, 3, 4);
        assert_eq!(tunnels.len(), 2);
        let dest = pick_dest(&mut fx);
        let sent = payload(5000);
        let out = send_striped(
            &mut fx.driver,
            &mut fx.overlay,
            &fx.thas,
            &mut fx.rng,
            fx.initiator,
            dest,
            &tunnels,
            &sent,
            MultipathConfig::default(),
            TransitOptions::default(),
            None,
            Some(&CoreInstruments::new(&fx.registry)),
        )
        .unwrap();
        assert_eq!(out.payload, sent);
        assert_eq!(out.stripes_used, 1, "single-path identity code");
        assert!(out.degraded);
        assert_eq!(fx.registry.snapshot().counter("core.ec.degraded"), 1);
    }

    #[test]
    fn zero_tunnels_is_an_explicit_error() {
        let mut fx = fixture(200, 34);
        let dest = pick_dest(&mut fx);
        let err = send_striped(
            &mut fx.driver,
            &mut fx.overlay,
            &fx.thas,
            &mut fx.rng,
            fx.initiator,
            dest,
            &[],
            b"payload",
            MultipathConfig::default(),
            TransitOptions::default(),
            None,
            None,
        )
        .unwrap_err();
        assert_eq!(err, MultipathError::NoTunnels);
    }

    #[test]
    fn disjoint_tunnels_share_no_hopids() {
        let mut fx = fixture(250, 35);
        let pool = anchor_pool(&mut fx, 40);
        let tunnels = form_disjoint_tunnels(&mut fx.rng, &pool, 5, 4, 4);
        assert_eq!(tunnels.len(), 5);
        let mut all: Vec<Id> = tunnels.iter().flat_map(|t| t.hop_ids()).collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before, "no hopid serves two stripes");
    }
}
