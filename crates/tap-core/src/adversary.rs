//! The colluding-adversary model (§6, §7.2).
//!
//! The adversary "operates a portion of nodes which collude with each
//! other"; any THA replica handed to a malicious node is pooled with the
//! whole collusion, forever. The paper analyses two corruption cases:
//!
//! * **Case 1** — the collusion holds "the THAs for all the hops following
//!   the initiator along a tunnel": it can peel every layer itself and read
//!   the route end to end.
//! * **Case 2** — the collusion controls at least the first and the tail
//!   tunnel hop node and correlates them by timing analysis. The paper
//!   argues this attack is weak (the first hop cannot know it is first)
//!   and focuses the evaluation on case 1; we implement both, defaulting
//!   to case 1 exactly as §7 does.

use rand::seq::IteratorRandom;
use rand::Rng;
use tap_id::{Id, IdHashSet};
use tap_pastry::storage::ReplicaStore;
use tap_pastry::Overlay;

use crate::tha::Tha;

/// A set of colluding malicious nodes.
#[derive(Debug, Clone, Default)]
pub struct Collusion {
    members: IdHashSet,
}

impl Collusion {
    /// An empty collusion.
    pub fn new() -> Self {
        Collusion::default()
    }

    /// Mark a specific node malicious.
    pub fn insert(&mut self, node: Id) {
        self.members.insert(node);
    }

    /// Corrupt a uniformly random fraction `p` of the overlay's current
    /// nodes (the paper "randomly choose\[s\] a fraction p of nodes that are
    /// malicious").
    pub fn mark_fraction<R: Rng + ?Sized>(overlay: &Overlay, rng: &mut R, p: f64) -> Collusion {
        assert!((0.0..=1.0).contains(&p), "fraction out of range");
        let count = ((overlay.len() as f64) * p).round() as usize;
        let members = overlay.ids().choose_multiple(rng, count);
        Collusion {
            members: members.into_iter().collect(),
        }
    }

    /// Whether `node` is malicious.
    pub fn contains(&self, node: Id) -> bool {
        self.members.contains(&node)
    }

    /// Number of malicious nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the collusion is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterate over the malicious nodes.
    pub fn members(&self) -> impl Iterator<Item = Id> + '_ {
        self.members.iter().copied()
    }

    /// Whether the collusion knows the THA anchored at `hopid`.
    ///
    /// With `include_history` the adversary also counts replicas it held at
    /// any point in the past (the Fig. 5 churn attack: "malicious nodes can
    /// take advantage of the leaves of other nodes to learn more THAs");
    /// without it, only current holders count (the static Fig. 3/4 setting,
    /// where replica sets never move).
    pub fn knows_tha(&self, thas: &ReplicaStore<Tha>, hopid: Id, include_history: bool) -> bool {
        match thas.get(hopid) {
            None => false,
            Some(rec) => {
                if include_history {
                    rec.ever_held.iter().any(|h| self.members.contains(h))
                } else {
                    rec.holders.iter().any(|h| self.members.contains(h))
                }
            }
        }
    }

    /// Case 1: the collusion can trace the tunnel because it knows the THA
    /// of **every** hop (§6, §7.2 — the corruption criterion behind
    /// Figures 3, 4, and 5).
    pub fn corrupts_case1(
        &self,
        thas: &ReplicaStore<Tha>,
        hop_ids: &[Id],
        include_history: bool,
    ) -> bool {
        !hop_ids.is_empty()
            && hop_ids
                .iter()
                .all(|h| self.knows_tha(thas, *h, include_history))
    }

    /// Case 2: the collusion controls the current first *and* tail tunnel
    /// hop nodes and can attempt end-to-end timing analysis (§6; evaluated
    /// only as an ablation, as in the paper).
    pub fn corrupts_case2(&self, overlay: &Overlay, hop_ids: &[Id]) -> bool {
        let (Some(first), Some(last)) = (hop_ids.first(), hop_ids.last()) else {
            return false;
        };
        let first_node = overlay.owner_of(*first);
        let tail_node = overlay.owner_of(*last);
        matches!((first_node, tail_node), (Some(f), Some(t))
            if self.members.contains(&f) && self.members.contains(&t))
    }

    /// Number of `tunnels` (given as hop-id lists) corrupted under case 1
    /// — the numerator of [`Collusion::corruption_rate`], exposed so
    /// callers can shard a scan across threads and sum the exact counts.
    pub fn corrupted_count(
        &self,
        thas: &ReplicaStore<Tha>,
        tunnels: &[Vec<Id>],
        include_history: bool,
    ) -> usize {
        tunnels
            .iter()
            .filter(|t| self.corrupts_case1(thas, t, include_history))
            .count()
    }

    /// Fraction of `tunnels` (given as hop-id lists) corrupted under
    /// case 1 — the quantity every anonymity figure plots.
    pub fn corruption_rate(
        &self,
        thas: &ReplicaStore<Tha>,
        tunnels: &[Vec<Id>],
        include_history: bool,
    ) -> f64 {
        if tunnels.is_empty() {
            return 0.0;
        }
        self.corrupted_count(thas, tunnels, include_history) as f64 / tunnels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tha::ThaFactory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tap_pastry::PastryConfig;

    struct Fx {
        overlay: Overlay,
        thas: ReplicaStore<Tha>,
        rng: StdRng,
    }

    fn fixture(n: usize, k: usize, seed: u64) -> Fx {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = Overlay::new(PastryConfig::with_replication(k));
        for _ in 0..n {
            overlay.add_random_node(&mut rng);
        }
        Fx {
            overlay,
            thas: ReplicaStore::new(k),
            rng,
        }
    }

    fn deploy(fx: &mut Fx, count: usize) -> Vec<Id> {
        let node = fx.overlay.random_node(&mut fx.rng).unwrap();
        let mut f = ThaFactory::new(&mut fx.rng, node);
        (0..count)
            .map(|_| {
                let s = f.next(&mut fx.rng);
                fx.thas.insert(&fx.overlay, s.hopid, s.stored()).unwrap();
                s.hopid
            })
            .collect()
    }

    #[test]
    fn mark_fraction_sizes() {
        let fx = &mut fixture(200, 3, 1);
        let c = Collusion::mark_fraction(&fx.overlay, &mut fx.rng, 0.1);
        assert_eq!(c.len(), 20);
        assert!(c.members().all(|m| fx.overlay.is_live(m)));
        let none = Collusion::mark_fraction(&fx.overlay, &mut fx.rng, 0.0);
        assert!(none.is_empty());
    }

    #[test]
    fn knows_tha_via_current_holder() {
        let fx = &mut fixture(150, 3, 2);
        let hops = deploy(fx, 1);
        let holder = fx.thas.holders(hops[0])[1];
        let mut c = Collusion::new();
        assert!(!c.knows_tha(&fx.thas, hops[0], false));
        c.insert(holder);
        assert!(c.knows_tha(&fx.thas, hops[0], false));
    }

    #[test]
    fn history_knowledge_survives_replica_migration() {
        let fx = &mut fixture(150, 3, 3);
        let hops = deploy(fx, 1);
        let hop = hops[0];
        let malicious = fx.thas.holders(hop)[0];
        let mut c = Collusion::new();
        c.insert(malicious);
        // The malicious holder leaves; the replica migrates away.
        fx.overlay.remove_node(malicious);
        fx.thas.on_node_removed(&fx.overlay, malicious);
        assert!(
            !fx.thas.holders(hop).contains(&malicious),
            "replica moved on"
        );
        assert!(
            !c.knows_tha(&fx.thas, hop, false),
            "current-holders view forgets"
        );
        assert!(
            c.knows_tha(&fx.thas, hop, true),
            "history view never forgets"
        );
    }

    #[test]
    fn case1_requires_every_hop() {
        let fx = &mut fixture(200, 3, 4);
        let hops = deploy(fx, 5);
        let mut c = Collusion::new();
        // Know 4 of 5 hops: not corrupted.
        for h in &hops[..4] {
            c.insert(fx.thas.holders(*h)[0]);
        }
        assert!(!c.corrupts_case1(&fx.thas, &hops, false));
        c.insert(fx.thas.holders(hops[4])[0]);
        assert!(c.corrupts_case1(&fx.thas, &hops, false));
    }

    #[test]
    fn case2_first_and_tail() {
        let fx = &mut fixture(200, 3, 5);
        let hops = deploy(fx, 5);
        let first_node = fx.overlay.owner_of(hops[0]).unwrap();
        let tail_node = fx.overlay.owner_of(hops[4]).unwrap();
        let mut c = Collusion::new();
        c.insert(first_node);
        assert!(
            !c.corrupts_case2(&fx.overlay, &hops),
            "first alone is not enough"
        );
        c.insert(tail_node);
        assert!(c.corrupts_case2(&fx.overlay, &hops));
    }

    #[test]
    fn corruption_rate_statistics_match_closed_form() {
        // For hop THAs replicated on k nodes with malicious fraction p,
        // P(hop known) = 1 - (1-p)^k and P(tunnel corrupted) = that^l.
        // Check the measured rate against the analytic value — this is the
        // analytic skeleton of Figures 3 and 4.
        let fx = &mut fixture(2000, 3, 6);
        let c = Collusion::mark_fraction(&fx.overlay, &mut fx.rng, 0.3);
        let l = 2; // short tunnels keep the probability measurable
        let tunnels: Vec<Vec<Id>> = (0..400).map(|_| deploy(fx, l)).collect();
        let rate = c.corruption_rate(&fx.thas, &tunnels, false);
        let p_hop = 1.0 - 0.7f64.powi(3);
        let expect = p_hop.powi(l as i32);
        assert!(
            (rate - expect).abs() < 0.08,
            "measured {rate:.3} vs analytic {expect:.3}"
        );
    }

    #[test]
    fn empty_inputs() {
        let fx = &mut fixture(50, 3, 7);
        let c = Collusion::mark_fraction(&fx.overlay, &mut fx.rng, 0.5);
        assert!(!c.corrupts_case1(&fx.thas, &[], false));
        assert!(!c.corrupts_case2(&fx.overlay, &[]));
        assert_eq!(c.corruption_rate(&fx.thas, &[], false), 0.0);
        assert!(!c.knows_tha(&fx.thas, Id::from_u64(1), true), "unknown hop");
    }
}
