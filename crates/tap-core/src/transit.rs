//! Driving messages through tunnels over the live overlay (§2, §5).
//!
//! Transit is where TAP's fault tolerance actually plays out. For each
//! tunnel hop the message is routed *by hopid*: the overlay delivers it to
//! whatever node is currently numerically closest, and that node — the
//! original tunnel hop node or a replica candidate that took over — peels
//! one layer and forwards. A hop is lost only when every replica holder of
//! its THA has failed ([`TransitError::ThaLost`]).
//!
//! The §5 optimization rides along: when an onion layer carries an address
//! hint and the hinted node is still the hop's root, the message takes one
//! direct hop instead of `log_{2^b} N` routing hops; a stale hint falls
//! back to routing transparently. The [`HintCache`] is the initiator-side
//! "cache of the mappings between a tunnel hop hopid and the IP address of
//! its tunnel hop node".

use std::time::Instant;

use tap_crypto::onion;
use tap_id::{Id, IdHashMap};
use tap_pastry::storage::ReplicaStore;
use tap_pastry::{KeyRouter, RouteError};

use crate::metrics::CoreInstruments;
use crate::tha::Tha;
use crate::wire::{Destination, HopHeader};

/// Initiator-side cache: hopid → the node last seen serving that hop.
///
/// Stands in for the paper's IP-address cache; in the simulator a node's
/// identity plays the role of its address.
#[derive(Debug, Clone, Default)]
pub struct HintCache {
    map: IdHashMap<Id>,
}

impl HintCache {
    /// Remember that `node` currently serves `hopid`.
    pub fn record(&mut self, hopid: Id, node: Id) {
        self.map.insert(hopid, node);
    }

    /// The cached node for `hopid`, if any.
    pub fn lookup(&self, hopid: Id) -> Option<Id> {
        self.map.get(&hopid).copied()
    }

    /// Refresh the cache for `hopids` from the overlay oracle (the paper:
    /// the initiator "can periodically refresh the cache").
    pub fn refresh(&mut self, overlay: &impl KeyRouter, hopids: &[Id]) {
        for h in hopids {
            if let Some(root) = overlay.owner_of(*h) {
                self.record(*h, root);
            }
        }
    }

    /// Drop the cached mapping for `hopid`, returning the demoted node.
    ///
    /// The §5 fallback: "It first tries the IP address; if it fails, then
    /// routes the message to the tunnel hop node corresponding to the
    /// hopid." A hint can be wrong without the oracle noticing — the node
    /// may still be overlay-live but unreachable on the wire (crashed
    /// endpoint, partition) — so the timed driver demotes a hint when the
    /// *direct attempt times out*, not only on an explicit oracle miss.
    pub fn demote(&mut self, hopid: Id) -> Option<Id> {
        self.map.remove(&hopid)
    }

    /// Number of cached mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Why transit failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransitError {
    /// Every replica of this hop's THA is gone: the tunnel is broken.
    ThaLost {
        /// The unreachable hop.
        hopid: Id,
    },
    /// A layer failed to decrypt or parse at the named hop (tampering or a
    /// mis-built tunnel).
    BadLayer {
        /// The hop whose layer failed.
        hopid: Id,
    },
    /// The overlay could not route (empty or inconsistent).
    Routing(RouteError),
    /// The final destination node is dead.
    DeadDestination {
        /// The dead destination.
        node: Id,
    },
    /// A wire hop kept timing out until the retry budget ran out (timed
    /// driver only; the logical driver has no wire to time out on).
    RetriesExhausted {
        /// The hopid whose segment could not be delivered.
        hopid: Id,
        /// Send attempts made (first try plus retries).
        attempts: u32,
    },
    /// A multipath transfer lost more stripes than its erasure code
    /// tolerates: fewer than `need` fragments can still arrive.
    StripesExhausted {
        /// Fragments that did arrive before the transfer became hopeless.
        delivered: usize,
        /// Fragments the erasure code requires.
        need: usize,
    },
}

impl std::fmt::Display for TransitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransitError::ThaLost { hopid } => {
                write!(f, "all replicas of hop {hopid:?} failed")
            }
            TransitError::BadLayer { hopid } => {
                write!(f, "onion layer at hop {hopid:?} failed to open")
            }
            TransitError::Routing(e) => write!(f, "overlay routing failed: {e}"),
            TransitError::DeadDestination { node } => {
                write!(f, "destination {node:?} is dead")
            }
            TransitError::RetriesExhausted { hopid, attempts } => {
                write!(f, "gave up on hop {hopid:?} after {attempts} send attempts")
            }
            TransitError::StripesExhausted { delivered, need } => {
                write!(
                    f,
                    "multipath transfer dead: {delivered} fragments delivered, {need} needed, \
                     too few stripes left"
                )
            }
        }
    }
}

impl std::error::Error for TransitError {}

impl From<RouteError> for TransitError {
    fn from(e: RouteError) -> Self {
        TransitError::Routing(e)
    }
}

/// How the message left the tunnel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// The tail hop delivered the core payload to a destination node.
    ToDestination {
        /// The node the payload was handed to.
        node: Id,
        /// The decrypted core payload.
        core: Vec<u8>,
    },
    /// The message arrived at the root of an identifier that anchors no
    /// THA — the `bid` terminal of a reply tunnel (§4): only the true
    /// initiator recognises it.
    AtAnchorlessRoot {
        /// The node that received the message (the initiator, for a
        /// well-formed reply tunnel).
        node: Id,
        /// The unpeeled residue (the fakeonion, for a reply tunnel).
        residue: Vec<u8>,
    },
}

/// Metrics gathered while traversing a tunnel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransitReport {
    /// Tunnel hops successfully resolved (layers peeled).
    pub hops_resolved: usize,
    /// Total overlay (Pastry) routing hops across all tunnel hops.
    pub overlay_hops: usize,
    /// Overlay hops that were short-circuited by a fresh address hint.
    pub hint_hits: usize,
    /// Hints that were stale and fell back to routing.
    pub hint_misses: usize,
    /// The node-level path, segment per tunnel hop (diagnostics; also what
    /// the latency experiment replays against the bandwidth model).
    pub node_path: Vec<Id>,
}

/// Traversal options.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransitOptions {
    /// Honor address hints embedded in onion layers (§5, `TAP_opt`).
    pub use_hints: bool,
    /// Resends allowed per wire hop after the first attempt times out
    /// (timed driver only; exponential backoff between attempts). Zero —
    /// the default — keeps the historical fire-and-forget behaviour:
    /// a single undelivered hop ends the traversal with
    /// [`TransitError::RetriesExhausted`].
    pub retry_budget: u32,
}

impl TransitOptions {
    /// Hint-following traversal (§5, `TAP_opt`) with no retry budget.
    pub fn hinted() -> Self {
        TransitOptions {
            use_hints: true,
            ..TransitOptions::default()
        }
    }
}

/// Drive `onion` from `from` through the tunnel starting at `entry_hop`.
///
/// Per hop: resolve the hopid to its current root, verify the root holds a
/// THA replica, peel one layer with the THA key, and follow the revealed
/// header. Returns the terminal [`Delivery`] plus a [`TransitReport`].
pub fn drive(
    overlay: &mut impl KeyRouter,
    thas: &ReplicaStore<Tha>,
    from: Id,
    entry_hop: Id,
    onion_bytes: Vec<u8>,
    options: TransitOptions,
) -> Result<(Delivery, TransitReport), TransitError> {
    drive_instrumented(overlay, thas, from, entry_hop, onion_bytes, options, None)
}

/// [`drive`], recording per-layer decrypt timings, replica takeovers and
/// hint-retry counts into `instruments` when provided.
#[allow(clippy::too_many_arguments)]
pub fn drive_instrumented(
    overlay: &mut impl KeyRouter,
    thas: &ReplicaStore<Tha>,
    from: Id,
    entry_hop: Id,
    onion_bytes: Vec<u8>,
    options: TransitOptions,
    instruments: Option<&CoreInstruments>,
) -> Result<(Delivery, TransitReport), TransitError> {
    let mut report = TransitReport {
        node_path: vec![from],
        ..TransitReport::default()
    };
    let mut current_node = from;
    let mut hop = entry_hop;
    let mut hint: Option<Id> = None;
    // One buffer for the whole traversal: each hop's peel is a single
    // in-place cipher pass, the header a borrowed view.
    let mut onion = onion::LayerBuf::from_vec(onion_bytes);

    loop {
        // Resolve the hopid to the node currently serving it.
        let root = overlay.owner_of(hop).ok_or(RouteError::EmptyOverlay)?;

        let Some(record) = thas.get(hop) else {
            // No THA was ever anchored here: this is a terminal identifier
            // (a reply tunnel's bid). Route the message to its root.
            self_route(
                overlay,
                current_node,
                hop,
                root,
                hint,
                &mut report,
                options,
                instruments,
            )?;
            return Ok((
                Delivery::AtAnchorlessRoot {
                    node: root,
                    residue: onion.into_vec(),
                },
                report,
            ));
        };

        // Fault-tolerance check: the root serves the hop only if it holds
        // a replica. If every holder failed simultaneously, the THA — and
        // with it the tunnel — is lost (no repair has run yet).
        if !record.holders.contains(&root) {
            return Err(TransitError::ThaLost { hopid: hop });
        }
        if let Some(ins) = instruments {
            // holders[0] was the root when the THA was deposited; anyone
            // else serving the hop is a replica candidate that took over.
            if record.holders.first() != Some(&root) {
                ins.record_takeover(hop, root);
            }
        }

        self_route(
            overlay,
            current_node,
            hop,
            root,
            hint,
            &mut report,
            options,
            instruments,
        )?;
        current_node = root;

        // The hop node peels one layer with its replica's key, in place.
        let peel_started = instruments.map(|_| Instant::now());
        let header_bytes = onion
            .peel(&record.value.key)
            .map_err(|_| TransitError::BadLayer { hopid: hop })?;
        if let (Some(ins), Some(t0)) = (instruments, peel_started) {
            ins.onion_peel_us.record(t0.elapsed().as_micros() as u64);
        }
        let header =
            HopHeader::decode(header_bytes).map_err(|_| TransitError::BadLayer { hopid: hop })?;
        report.hops_resolved += 1;

        match header {
            HopHeader::Forward {
                next_hop,
                hint: next_hint,
            } => {
                hop = next_hop;
                hint = next_hint;
            }
            HopHeader::Deliver { dest } => {
                let node = match dest {
                    Destination::Node(n) => {
                        if !overlay.is_live(n) {
                            return Err(TransitError::DeadDestination { node: n });
                        }
                        // Tail relays directly to D (one logical hop).
                        report.overlay_hops += 1;
                        report.node_path.push(n);
                        n
                    }
                    Destination::KeyRoot(key) => {
                        let path = overlay.route_path(current_node, key)?;
                        // Routers return at least the start node; a router
                        // that violates that mid-churn is a routing fault,
                        // not a reason to take the process down.
                        let Some(&root) = path.last() else {
                            return Err(RouteError::EmptyOverlay.into());
                        };
                        report.overlay_hops += path.len() - 1;
                        report.node_path.extend(path.into_iter().skip(1));
                        root
                    }
                };
                return Ok((
                    Delivery::ToDestination {
                        node,
                        core: onion.into_vec(),
                    },
                    report,
                ));
            }
        }
    }
}

/// Move from `current` to the root of `hop` (already resolved by the
/// caller), preferring a fresh hint.
#[allow(clippy::too_many_arguments)]
fn self_route(
    overlay: &mut impl KeyRouter,
    current: Id,
    hop: Id,
    root: Id,
    hint: Option<Id>,
    report: &mut TransitReport,
    options: TransitOptions,
    instruments: Option<&CoreInstruments>,
) -> Result<(), TransitError> {
    if options.use_hints {
        if let Some(h) = hint {
            // "It first tries the IP address; if it fails, then routes the
            // message to the tunnel hop node corresponding to the hopid."
            // A hint is good when the node is alive *and* still the root.
            if overlay.is_live(h) && root == h {
                report.hint_hits += 1;
                if h != current {
                    report.overlay_hops += 1;
                    report.node_path.push(h);
                }
                return Ok(());
            }
            report.hint_misses += 1;
            if let Some(ins) = instruments {
                ins.transit_retries.inc();
            }
        }
    }
    let path = overlay.route_path(current, hop)?;
    report.overlay_hops += path.len().saturating_sub(1);
    report.node_path.extend(path.into_iter().skip(1));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tha::ThaFactory;
    use crate::tunnel::{ReplyTunnel, Tunnel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tap_pastry::{Overlay, PastryConfig};

    struct Fixture {
        overlay: Overlay,
        thas: ReplicaStore<Tha>,
        rng: StdRng,
        factory: ThaFactory,
        initiator: Id,
    }

    fn fixture(n: usize, k: usize, seed: u64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = Overlay::new(PastryConfig::with_replication(k));
        for _ in 0..n {
            overlay.add_random_node(&mut rng);
        }
        let initiator = overlay.random_node(&mut rng).unwrap();
        let factory = ThaFactory::new(&mut rng, initiator);
        Fixture {
            overlay,
            thas: ReplicaStore::new(k),
            rng,
            factory,
            initiator,
        }
    }

    fn deploy_tunnel(fx: &mut Fixture, l: usize) -> Tunnel {
        let mut pool = Vec::new();
        for _ in 0..(l * 4) {
            let s = fx.factory.next(&mut fx.rng);
            fx.thas.insert(&fx.overlay, s.hopid, s.stored()).unwrap();
            pool.push(s);
        }
        Tunnel::form_scattered(&mut fx.rng, &pool, l, 4).unwrap()
    }

    #[test]
    fn forward_transit_delivers_plaintext() {
        let mut fx = fixture(150, 3, 1);
        let t = deploy_tunnel(&mut fx, 3);
        let dest = fx.overlay.random_node(&mut fx.rng).unwrap();
        let onion = t.build_onion(
            &mut fx.rng,
            Destination::Node(dest),
            b"anonymous hello",
            None,
        );
        let (delivery, report) = drive(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            t.entry_hopid(),
            onion,
            TransitOptions::default(),
        )
        .unwrap();
        assert_eq!(
            delivery,
            Delivery::ToDestination {
                node: dest,
                core: b"anonymous hello".to_vec()
            }
        );
        assert_eq!(report.hops_resolved, 3);
        assert!(report.overlay_hops >= 3, "at least one hop per tunnel hop");
        assert_eq!(report.node_path.last(), Some(&dest));
    }

    #[test]
    fn transit_survives_hop_node_failure() {
        // Kill the current tunnel hop node of the middle hop; a replica
        // candidate must take over (the paper's §2 walkthrough).
        let mut fx = fixture(150, 3, 2);
        let t = deploy_tunnel(&mut fx, 3);
        let mid_hop = t.hops()[1].hopid;
        let old_root = fx.overlay.owner_of(mid_hop).unwrap();
        assert_eq!(fx.thas.holders(mid_hop)[0], old_root);
        fx.overlay.remove_node(old_root);
        // NOTE: no replica repair — the message must still get through via
        // a surviving candidate.
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != old_root {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"m", None);
        let (delivery, _) = drive(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            t.entry_hopid(),
            onion,
            TransitOptions::default(),
        )
        .unwrap();
        let new_root = fx.overlay.owner_of(mid_hop).unwrap();
        assert_ne!(new_root, old_root);
        assert!(
            fx.thas.holders(mid_hop).contains(&new_root),
            "the candidate that took over held a replica"
        );
        assert!(matches!(delivery, Delivery::ToDestination { .. }));
    }

    #[test]
    fn transit_fails_when_all_replicas_die() {
        let mut fx = fixture(150, 3, 3);
        let t = deploy_tunnel(&mut fx, 3);
        let mid_hop = t.hops()[1].hopid;
        for holder in fx.thas.holders(mid_hop).to_vec() {
            fx.overlay.remove_node(holder);
        }
        let dest = fx.overlay.random_node(&mut fx.rng).unwrap();
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"m", None);
        let err = drive(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            t.entry_hopid(),
            onion,
            TransitOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, TransitError::ThaLost { hopid: mid_hop });
    }

    #[test]
    fn hints_short_circuit_routing() {
        let mut fx = fixture(200, 3, 4);
        let t = deploy_tunnel(&mut fx, 4);
        let mut hints = HintCache::default();
        hints.refresh(&fx.overlay, &t.hop_ids());
        let dest = fx.overlay.random_node(&mut fx.rng).unwrap();
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"m", Some(&hints));
        // Entry hop also benefits: the initiator knows the first hop node.
        let (_, with_hints) = drive(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            t.entry_hopid(),
            onion.clone(),
            TransitOptions::hinted(),
        )
        .unwrap();
        let onion2 = t.build_onion(&mut fx.rng, Destination::Node(dest), b"m", None);
        let (_, without) = drive(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            t.entry_hopid(),
            onion2,
            TransitOptions::default(),
        )
        .unwrap();
        assert_eq!(with_hints.hint_hits, 3, "hops 2..=4 carried hints");
        assert!(
            with_hints.overlay_hops <= without.overlay_hops,
            "hints must not lengthen the path ({} > {})",
            with_hints.overlay_hops,
            without.overlay_hops
        );
    }

    #[test]
    fn stale_hint_falls_back_to_routing() {
        let mut fx = fixture(200, 3, 5);
        let t = deploy_tunnel(&mut fx, 3);
        let mut hints = HintCache::default();
        hints.refresh(&fx.overlay, &t.hop_ids());
        // Kill the hinted node of hop 2 — the hint goes stale.
        let hinted = hints.lookup(t.hops()[1].hopid).unwrap();
        fx.overlay.remove_node(hinted);
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != hinted {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"m", Some(&hints));
        let (delivery, report) = drive(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            t.entry_hopid(),
            onion,
            TransitOptions::hinted(),
        )
        .unwrap();
        assert!(matches!(delivery, Delivery::ToDestination { .. }));
        assert!(report.hint_misses >= 1, "the dead hint must be detected");
    }

    #[test]
    fn reply_tunnel_returns_to_initiator() {
        let mut fx = fixture(150, 3, 6);
        let fwd = deploy_tunnel(&mut fx, 3);
        let rev = deploy_tunnel(&mut fx, 3);
        // bid: an id whose root is the initiator — halfway to the ring
        // successor works if closer to the initiator than to anyone else;
        // simplest correct choice here: one above the initiator's own id.
        let bid = fx.initiator.wrapping_add(Id::from_u64(1));
        assert_eq!(fx.overlay.owner_of(bid), Some(fx.initiator));
        let rt = ReplyTunnel::build(&mut fx.rng, &rev, bid, 48, None);

        // Pretend a responder got the request through `fwd` and now sends
        // the reply back through `rt`.
        let dest = fx.overlay.random_node(&mut fx.rng).unwrap();
        let req = fwd.build_onion(&mut fx.rng, Destination::Node(dest), b"req", None);
        let (d1, _) = drive(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            fwd.entry_hopid(),
            req,
            TransitOptions::default(),
        )
        .unwrap();
        let responder = match d1 {
            Delivery::ToDestination { node, .. } => node,
            other => panic!("unexpected {other:?}"),
        };
        let (d2, _) = drive(
            &mut fx.overlay,
            &fx.thas,
            responder,
            rt.entry_hopid,
            rt.onion.clone(),
            TransitOptions::default(),
        )
        .unwrap();
        match d2 {
            Delivery::AtAnchorlessRoot { node, residue } => {
                assert_eq!(node, fx.initiator, "reply must reach the initiator");
                assert_eq!(residue.len(), 48, "fakeonion intact");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tampered_onion_is_rejected_at_first_hop() {
        let mut fx = fixture(100, 3, 7);
        let t = deploy_tunnel(&mut fx, 3);
        let dest = fx.overlay.random_node(&mut fx.rng).unwrap();
        let mut onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"m", None);
        let mid = onion.len() / 2;
        onion[mid] ^= 0xff;
        let err = drive(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            t.entry_hopid(),
            onion,
            TransitOptions::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            TransitError::BadLayer {
                hopid: t.entry_hopid()
            }
        );
    }

    #[test]
    fn dead_destination_reported() {
        let mut fx = fixture(100, 3, 8);
        let t = deploy_tunnel(&mut fx, 3);
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator && !t.hop_ids().contains(&d) {
                break d;
            }
        };
        fx.overlay.remove_node(dest);
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"m", None);
        let result = drive(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            t.entry_hopid(),
            onion,
            TransitOptions::default(),
        );
        match result {
            Err(TransitError::DeadDestination { node }) => assert_eq!(node, dest),
            // The dead node might have been a THA holder too; then the
            // tunnel itself broke first, which is also a legal outcome.
            Err(TransitError::ThaLost { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
