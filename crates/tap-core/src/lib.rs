//! # tap-core — TAP: tunneling for anonymity in structured P2P systems
//!
//! This crate is the paper's contribution (Zhu & Hu, ICPP 2004): anonymous
//! mix tunnels that are **decoupled from fixed nodes**. A tunnel is a
//! sequence of *tunnel hops*, each named by a `hopid` in the DHT identifier
//! space rather than by an address; the node currently serving a hop is
//! simply the live node whose nodeid is numerically closest to the hopid.
//! Because the hop's secrets — the *tunnel hop anchor* (THA)
//! `<hopid, K, H(PW)>` — are replicated on the `k` closest nodes by the
//! PAST replication manager, a hop survives any failure that leaves at
//! least one replica holder alive: a candidate simply becomes the new
//! tunnel hop node. That is the whole trick, and everything else in the
//! paper follows from it.
//!
//! Module map (paper section in parentheses):
//!
//! * [`tha`] — THA generation `hopid = H(node_ID, hkey, t)`, the stored
//!   form, and password-based ownership (§3.1–§3.2).
//! * [`deploy`] — anonymous THA deployment over an Onion-Routing bootstrap
//!   path, CPU-puzzle flood payment, and verified deletion (§3.3–§3.4).
//! * [`tunnel`] — forming tunnels from scattered hopids and building the
//!   layered forward/reply onions of Fig. 1 and §4 (§3.5, §4).
//! * [`wire`] — the per-hop routing headers inside onion layers.
//! * [`transit`] — driving a message through a tunnel over the overlay:
//!   hop resolution via routing + replication, failover to candidates, and
//!   the IP-hint performance optimization (§2, §5).
//! * [`baseline`] — "current tunneling": the fixed-node tunnel the paper
//!   compares against (§1, Figs. 2 and 6).
//! * [`adversary`] — colluding malicious nodes pooling THAs; corruption
//!   cases 1 and 2 (§6).
//! * [`retrieval`] — the sample application: anonymous file retrieval with
//!   a distinct reply tunnel (§4).
//! * [`manager`] — automated tunnel upkeep: liveness probing, failure
//!   replacement, and periodic refresh (the maintenance duties §7.2 and §9
//!   leave to the user).
//! * [`messaging`] — the anonymous-email scenario of §1: asynchronous
//!   reply blocks that keep working through churn.
//! * [`netdrive`] — timed, message-driven transit over the emulated
//!   network: the real onion bytes as wire traffic, layer shrinkage and
//!   NIC queueing included.
//! * [`multipath`] — erasure-coded multipath transfer: stripe one payload
//!   across `n` disjoint tunnels, reconstruct from any `k` fragments,
//!   degrade explicitly when the overlay cannot supply `n` tunnels.
//! * [`system`] — a facade wiring overlay + stores + PKI together, the API
//!   the examples and experiments drive.
//! * [`metrics`] — cached `tap-metrics` handles (onion layer timings,
//!   transit retries, THA takeovers) shared by transit and retrieval.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod baseline;
pub mod deploy;
pub mod manager;
pub mod messaging;
pub mod metrics;
pub mod multipath;
pub mod netdrive;
pub mod retrieval;
pub mod system;
pub mod tha;
pub mod transit;
pub mod tunnel;
pub mod wire;

pub use adversary::Collusion;
pub use baseline::FixedTunnel;
pub use manager::{ManagerStats, RefreshPolicy, TunnelManager};
pub use metrics::CoreInstruments;
pub use system::{SystemConfig, TapSystem};
pub use tha::{Tha, ThaFactory, ThaSecret};
pub use transit::{HintCache, TransitError, TransitReport};
pub use tunnel::{ReplyTunnel, Tunnel};
