//! Timed, message-driven tunnel transit over the emulated network.
//!
//! [`crate::transit::drive`] resolves a tunnel logically (who peels what, which
//! node serves each hop); this module runs the same traversal as *actual
//! wire traffic* through `tap-netsim`: every overlay hop is a
//! store-and-forward message whose size is the real onion byte count plus
//! the application payload. Two fidelity details fall out for free:
//!
//! * **per-layer shrinkage** — each peel removes one layer's sealing
//!   overhead plus its header, so early hops carry more bytes than late
//!   ones, exactly as a real deployment would;
//! * **serialization vs. propagation** — transfer time composes from the
//!   1.5 Mb/s uplink serialization and the per-link latency, the §7.3 cost
//!   model, with the NIC queueing the emulator enforces.
//!
//! The Fig. 6 experiment replays precomputed paths for throughput; this
//! driver exists to validate that shortcut (see the agreement test) and to
//! let applications measure end-to-end seconds for single flows.

use tap_crypto::onion;
use tap_id::{Id, IdHashMap};
use tap_netsim::latency::LatencyModel;
use tap_netsim::{EndpointId, Event, Network, SimDuration, SimTime, TimerHandle, TimerToken};
use tap_pastry::storage::ReplicaStore;
use tap_pastry::{KeyRouter, RouteError};

use crate::metrics::CoreInstruments;
use crate::tha::Tha;
use crate::transit::{Delivery, HintCache, TransitError, TransitOptions};
use crate::wire::{Destination, HopHeader};

/// Maps overlay nodes onto network endpoints and owns the event loop.
pub struct NetDriver<L: LatencyModel> {
    net: Network<u64, L>,
    endpoint_of: IdHashMap<EndpointId>,
    /// Distinguishes each (hop, attempt)'s timeout timer from stale ones
    /// still sitting in the heap after a delivery won the race.
    timer_seq: u64,
    /// Tags every [`NetDriver::ship`] chain's messages (high payload bits)
    /// so late deliveries and duplicates from an earlier chain can never
    /// be mistaken for the current one's progress.
    flow_seq: u64,
    instruments: Option<CoreInstruments>,
}

/// Timing gathered by a timed traversal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimedReport {
    /// Wall-clock (virtual) duration of the whole traversal.
    pub elapsed: SimDuration,
    /// Total bytes that crossed links.
    pub bytes_on_wire: u64,
    /// Overlay hops taken.
    pub overlay_hops: usize,
    /// Tunnel hops resolved.
    pub hops_resolved: usize,
}

/// Accounting for one erasure-coded multipath transfer
/// ([`NetDriver::drive_striped`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MultipathReport {
    /// Virtual time from first send to the `need`-th fragment arriving.
    pub elapsed: SimDuration,
    /// Total bytes that crossed links, all stripes summed.
    pub bytes_on_wire: u64,
    /// Overlay hops taken across all stripes.
    pub overlay_hops: usize,
    /// Tunnel hops resolved across all stripes.
    pub hops_resolved: usize,
    /// Stripes launched.
    pub stripes_total: usize,
    /// Fragments that completed their tunnel.
    pub stripes_delivered: usize,
    /// Stripes abandoned (retry budget, broken tunnel) before completion.
    pub stripes_failed: usize,
    /// In-flight stripes whose watchdogs were cancelled because enough
    /// fragments had already arrived.
    pub laggards_cancelled: usize,
    /// Per-hop resends across all stripes.
    pub retries: u64,
    /// The most stripes of this transfer any single relay carried — the
    /// anonymity surface (a single-path transfer scores the full stripe
    /// count on every relay).
    pub max_stripes_per_relay: u32,
}

/// One in-flight store-and-forward chain belonging to a stripe.
struct Segment {
    eps: Vec<EndpointId>,
    expect: usize,
    attempts: u32,
    flow: u64,
    watchdog: TimerToken,
    guard: TimerHandle,
    hinted: bool,
    wire: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StripeStatus {
    Active,
    Delivered,
    Failed,
}

/// Program counter of one stripe inside [`NetDriver::drive_striped`].
struct StripeState {
    current: Id,
    hop: Id,
    /// Root the current phase-A segment is shipping toward (the THA check
    /// on arrival must test the root the segment was routed to).
    root: Id,
    hint: Option<Id>,
    onion: Option<onion::LayerBuf>,
    /// Set once the tail hop revealed the delivery header.
    delivering: Option<Destination>,
    segment: Option<Segment>,
    status: StripeStatus,
}

/// Shared mutable context threaded through the striped event loop.
struct StripedCx<'h> {
    from: Id,
    options: TransitOptions,
    hints: Option<&'h mut HintCache>,
    /// node -> bitmask of stripes whose fragments crossed it.
    seen: IdHashMap<u64>,
    report: MultipathReport,
    delivered: Vec<(usize, Vec<u8>)>,
}

impl<L: LatencyModel> NetDriver<L> {
    /// Wrap a network; endpoints are registered lazily per node.
    pub fn new(net: Network<u64, L>) -> Self {
        NetDriver {
            net,
            endpoint_of: IdHashMap::default(),
            timer_seq: 0,
            flow_seq: 0,
            instruments: None,
        }
    }

    /// Record retries/backoff/giveups into `instruments` from now on.
    pub fn use_instruments(&mut self, instruments: CoreInstruments) {
        self.instruments = Some(instruments);
    }

    /// Current virtual time of the underlying network.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// The underlying network — for installing a
    /// [`tap_netsim::FaultPlan`], cutting partitions, or reading stats.
    pub fn network_mut(&mut self) -> &mut Network<u64, L> {
        &mut self.net
    }

    /// Pre-create the endpoint for `node` (normally lazy on first send).
    /// Chaos harnesses need ids up front to schedule crash/restart plans.
    pub fn register(&mut self, node: Id) -> EndpointId {
        self.endpoint(node)
    }

    /// Crash `node`'s endpoint on the wire (the overlay keeps thinking it
    /// is live — exactly the split-brain the §5 hint fallback handles).
    pub fn kill_node(&mut self, node: Id) {
        let e = self.endpoint(node);
        self.net.kill(e);
    }

    /// Bring `node`'s endpoint back.
    pub fn revive_node(&mut self, node: Id) {
        let e = self.endpoint(node);
        self.net.revive(e);
    }

    /// The endpoint for `node`, creating it on first use.
    fn endpoint(&mut self, node: Id) -> EndpointId {
        match self.endpoint_of.get(&node) {
            Some(e) => *e,
            None => {
                let e = self.net.add_endpoint();
                self.endpoint_of.insert(node, e);
                e
            }
        }
    }

    /// Timeout before resending a hop carrying `bytes`: the worst-case
    /// delivery (serialization at 1.5 Mb/s plus the 230 ms latency
    /// ceiling), doubled per attempt already made.
    fn resend_timeout(bytes: u64, attempt: u32) -> SimDuration {
        let serialization_us = bytes.saturating_mul(16) / 3;
        let base = SimDuration::from_micros(serialization_us + 500_000);
        base.mul(1u64 << attempt.min(16))
    }

    /// Ship `bytes` along consecutive node pairs of `path`, store-and-
    /// forward, and return when the last byte arrives.
    ///
    /// Each hop is guarded by a delivery timeout: if the message vanishes
    /// (fault-injected loss, a crashed relay, a partition) the driver
    /// resends it up to `options.retry_budget` times with exponential
    /// backoff, then gives up with [`TransitError::RetriesExhausted`].
    /// Duplicate deliveries (fault-injected duplication, or a resend
    /// racing its slow original) are detected by hop index and ignored.
    ///
    /// `terminal` marks whether exhausting the budget abandons the whole
    /// traversal (counted as `core.transit.giveups`) or the caller still
    /// has a fallback (the hinted direct attempt) — only terminal
    /// exhaustion is a give-up.
    fn ship(
        &mut self,
        path: &[Id],
        bytes: u64,
        hopid: Id,
        options: TransitOptions,
        terminal: bool,
    ) -> Result<(SimDuration, usize), TransitError> {
        let mut eps = Vec::with_capacity(path.len());
        for n in path {
            let e = self.endpoint(*n);
            if eps.last() != Some(&e) {
                eps.push(e);
            }
        }
        if eps.len() < 2 {
            return Ok((SimDuration::ZERO, 0));
        }
        let start = self.net.now();
        // Payloads carry `flow << 16 | hop index`: the flow tag rejects
        // leftovers from earlier chains outright, and within this chain
        // the index exposes duplicates of an already-advanced hop.
        self.flow_seq += 1;
        let flow = self.flow_seq;
        debug_assert!(eps.len() < (1 << 16), "hop index fits the low bits");
        let tag = |idx: usize| (flow << 16) | idx as u64;
        let mut expect = 1usize;
        let mut attempts = 0u32;
        let (mut watchdog, mut guard) = self.arm_watchdog(bytes, attempts);
        self.net.send(eps[0], eps[1], bytes, tag(1));
        while let Some(ev) = self.net.next_event() {
            match ev {
                Event::Message(m) => {
                    if m.payload >> 16 != flow {
                        continue; // leftover from an earlier chain
                    }
                    let idx = (m.payload & 0xFFFF) as usize;
                    if idx != expect {
                        continue; // duplicate of an already-advanced hop
                    }
                    if idx + 1 == eps.len() {
                        // Retire the pending watchdog instead of letting it
                        // fire into a later chain's drain as a stale token.
                        self.net.cancel_timer(guard);
                        return Ok((m.delivered_at - start, eps.len() - 1));
                    }
                    expect += 1;
                    attempts = 0;
                    self.net.cancel_timer(guard);
                    (watchdog, guard) = self.arm_watchdog(bytes, attempts);
                    self.net.send(eps[idx], eps[idx + 1], bytes, tag(expect));
                }
                Event::Timer { token, .. } => {
                    if token != watchdog {
                        // Cancellation makes this unreachable for our own
                        // watchdogs; kept as defense against foreign timers
                        // sharing the network.
                        continue;
                    }
                    if attempts >= options.retry_budget {
                        if terminal {
                            if let Some(ins) = &self.instruments {
                                ins.transit_giveups.inc();
                            }
                        }
                        return Err(TransitError::RetriesExhausted {
                            hopid,
                            attempts: attempts + 1,
                        });
                    }
                    if let Some(ins) = &self.instruments {
                        ins.transit_retries.inc();
                        ins.transit_backoff_us
                            .record(Self::resend_timeout(bytes, attempts).as_micros());
                    }
                    attempts += 1;
                    (watchdog, guard) = self.arm_watchdog(bytes, attempts);
                    self.net
                        .send(eps[expect - 1], eps[expect], bytes, tag(expect));
                }
            }
        }
        unreachable!("an armed watchdog timer keeps the event queue non-empty")
    }

    /// Arm the per-hop delivery watchdog; the handle cancels it once the
    /// hop completes (a fired or cancelled handle is inert).
    fn arm_watchdog(&mut self, bytes: u64, attempt: u32) -> (TimerToken, TimerHandle) {
        self.timer_seq += 1;
        let token = TimerToken(self.timer_seq);
        let handle = self
            .net
            .arm_timer(Self::resend_timeout(bytes, attempt), token);
        (token, handle)
    }

    /// Drive `onion_bytes` (plus `payload_bytes` of application data
    /// travelling alongside, e.g. a file on a reply path) through the
    /// tunnel starting at `entry_hop`, as timed wire traffic.
    #[allow(clippy::too_many_arguments)]
    pub fn drive_timed(
        &mut self,
        overlay: &mut impl KeyRouter,
        thas: &ReplicaStore<Tha>,
        from: Id,
        entry_hop: Id,
        onion_bytes: Vec<u8>,
        payload_bytes: u64,
        options: TransitOptions,
    ) -> Result<(Delivery, TimedReport), TransitError> {
        self.drive_timed_with_hints(
            overlay,
            thas,
            from,
            entry_hop,
            onion_bytes,
            payload_bytes,
            options,
            None,
        )
    }

    /// [`NetDriver::drive_timed`] with an initiator-side [`HintCache`] to
    /// demote through. The §5 fallback at wire fidelity: a hinted direct
    /// hop that *times out* (hinted node overlay-live but crashed or
    /// partitioned on the wire) evicts the hint and re-ships the segment
    /// via overlay routing, instead of giving up on the whole traversal.
    #[allow(clippy::too_many_arguments)]
    pub fn drive_timed_with_hints(
        &mut self,
        overlay: &mut impl KeyRouter,
        thas: &ReplicaStore<Tha>,
        from: Id,
        entry_hop: Id,
        onion_bytes: Vec<u8>,
        payload_bytes: u64,
        options: TransitOptions,
        mut hints: Option<&mut HintCache>,
    ) -> Result<(Delivery, TimedReport), TransitError> {
        let mut report = TimedReport::default();
        let start = self.net.now();
        let mut current = from;
        let mut hop = entry_hop;
        let mut hint: Option<Id> = None;
        // One buffer for the whole traversal: every peel is one in-place
        // cipher pass, and the shrinking region is also the wire size.
        let mut onion = onion::LayerBuf::from_vec(onion_bytes);

        loop {
            let root = overlay.owner_of(hop).ok_or(RouteError::EmptyOverlay)?;
            let wire = onion.len() as u64 + payload_bytes;

            // §5 verbatim: "It first tries the IP address; if it fails,
            // then routes the message to the tunnel hop node corresponding
            // to the hopid." No oracle consultation here — a real
            // initiator cannot know the hint went stale except by the
            // attempt timing out, which is exactly what ship() detects.
            let hinted = match (options.use_hints, hint) {
                (true, Some(h)) if h != current => Some(h),
                _ => None,
            };
            let segment: Vec<Id> = match hinted {
                Some(h) => vec![current, h],
                None => overlay.route_path(current, hop)?,
            };
            let shipped = match self.ship(&segment, wire, hop, options, hinted.is_none()) {
                Err(TransitError::RetriesExhausted { .. }) if hinted.is_some() => {
                    // Direct attempt timed out: demote the stale hint and
                    // fall back to hopid routing (§5).
                    if let Some(cache) = hints.as_deref_mut() {
                        cache.demote(hop);
                    }
                    if let Some(ins) = &self.instruments {
                        ins.transit_retries.inc();
                    }
                    let fallback = overlay.route_path(current, hop)?;
                    self.ship(&fallback, wire, hop, options, true)?
                }
                other => other?,
            };
            let (_, hops) = shipped;
            report.overlay_hops += hops;
            report.bytes_on_wire += wire * hops as u64;

            let Some(record) = thas.get(hop) else {
                report.elapsed = self.net.now() - start;
                return Ok((
                    Delivery::AtAnchorlessRoot {
                        node: root,
                        residue: onion.into_vec(),
                    },
                    report,
                ));
            };
            if !record.holders.contains(&root) {
                return Err(TransitError::ThaLost { hopid: hop });
            }
            current = root;

            let header_bytes = onion
                .peel(&record.value.key)
                .map_err(|_| TransitError::BadLayer { hopid: hop })?;
            let header = HopHeader::decode(header_bytes)
                .map_err(|_| TransitError::BadLayer { hopid: hop })?;
            report.hops_resolved += 1;

            match header {
                HopHeader::Forward {
                    next_hop,
                    hint: next_hint,
                } => {
                    hop = next_hop;
                    hint = next_hint;
                }
                HopHeader::Deliver { dest } => {
                    let wire = onion.len() as u64 + payload_bytes;
                    let node = match dest {
                        Destination::Node(n) => {
                            if !overlay.is_live(n) {
                                return Err(TransitError::DeadDestination { node: n });
                            }
                            let (_, hops) = self.ship(&[current, n], wire, hop, options, true)?;
                            report.overlay_hops += hops;
                            report.bytes_on_wire += wire * hops as u64;
                            n
                        }
                        Destination::KeyRoot(key) => {
                            let path = overlay.route_path(current, key)?;
                            let root = *path.last().expect("non-empty path");
                            let (_, hops) = self.ship(&path, wire, hop, options, true)?;
                            report.overlay_hops += hops;
                            report.bytes_on_wire += wire * hops as u64;
                            root
                        }
                    };
                    report.elapsed = self.net.now() - start;
                    return Ok((
                        Delivery::ToDestination {
                            node,
                            core: onion.into_vec(),
                        },
                        report,
                    ));
                }
            }
        }
    }

    /// Drive `stripes` — one `(entry hopid, onion)` per disjoint tunnel —
    /// through the wire *concurrently*, returning as soon as any `need`
    /// fragment cores have been delivered.
    ///
    /// This is the erasure-coded multipath transfer: one event loop
    /// interleaves every stripe's store-and-forward chain, so stripes
    /// genuinely race on virtual time instead of running back-to-back.
    /// Each wire segment keeps the single-path machinery — per-hop
    /// watchdog, exponential backoff, flow-tagged duplicate rejection, §5
    /// hint demotion on a timed-out direct attempt — but a stripe
    /// exhausting its retry budget only fails *that stripe*; the transfer
    /// survives while `need` fragments can still arrive.
    ///
    /// On success the laggard stripes' pending watchdogs are cancelled
    /// through their [`TimerHandle`]s (spent timers must not fire into
    /// later drains or inflate `netsim.timer_lag_us`), and the in-flight
    /// messages they leave behind are inert: their flow tags match no
    /// future chain.
    ///
    /// The exactly-one-delivery-or-give-up invariant holds per *transfer*:
    /// `Ok` delivers exactly once, and every `Err` increments
    /// `core.transit.giveups` exactly once, with per-stripe accounting
    /// (`core.mp.stripe_giveups`) beneath it.
    ///
    /// Returns the delivered `(stripe index, core)` pairs — at least
    /// `need` of them — plus a [`MultipathReport`].
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    pub fn drive_striped(
        &mut self,
        overlay: &mut impl KeyRouter,
        thas: &ReplicaStore<Tha>,
        from: Id,
        stripes: Vec<(Id, Vec<u8>)>,
        need: usize,
        options: TransitOptions,
        hints: Option<&mut HintCache>,
    ) -> Result<(Vec<(usize, Vec<u8>)>, MultipathReport), TransitError> {
        assert!(need >= 1, "a transfer needs at least one fragment");
        assert!(stripes.len() <= 64, "stripe bitmasks are u64");
        let start = self.net.now();
        let mut cx = StripedCx {
            from,
            options,
            hints,
            seen: IdHashMap::default(),
            report: MultipathReport {
                stripes_total: stripes.len(),
                ..MultipathReport::default()
            },
            delivered: Vec::with_capacity(need),
        };
        let mut states: Vec<StripeState> = stripes
            .into_iter()
            .map(|(entry_hop, onion_bytes)| StripeState {
                current: from,
                hop: entry_hop,
                root: from,
                hint: None,
                onion: Some(onion::LayerBuf::from_vec(onion_bytes)),
                delivering: None,
                segment: None,
                status: StripeStatus::Active,
            })
            .collect();

        for (si, state) in states.iter_mut().enumerate() {
            self.stripe_launch(overlay, thas, si, state, &mut cx);
        }

        loop {
            if cx.delivered.len() >= need {
                break;
            }
            let active = states
                .iter()
                .filter(|s| s.status == StripeStatus::Active)
                .count();
            if cx.delivered.len() + active < need {
                // Hopeless: more stripes are dead than the code tolerates.
                // Retire the survivors' watchdogs and give up the transfer
                // — exactly once, per the transfer-level invariant.
                for s in &mut states {
                    if let Some(seg) = s.segment.take() {
                        self.net.cancel_timer(seg.guard);
                    }
                }
                if let Some(ins) = &self.instruments {
                    ins.transit_giveups.inc();
                }
                return Err(TransitError::StripesExhausted {
                    delivered: cx.delivered.len(),
                    need,
                });
            }
            let Some(ev) = self.net.next_event() else {
                unreachable!("an active stripe keeps a watchdog armed and the queue non-empty")
            };
            match ev {
                Event::Message(m) => {
                    let flow = m.payload >> 16;
                    let idx = (m.payload & 0xFFFF) as usize;
                    let Some(si) = states
                        .iter()
                        .position(|s| s.segment.as_ref().map(|g| g.flow) == Some(flow))
                    else {
                        continue; // leftover of a finished stripe or earlier chain
                    };
                    let s = &mut states[si];
                    let seg = s.segment.as_mut().expect("position matched on segment");
                    if idx != seg.expect {
                        continue; // duplicate of an already-advanced hop
                    }
                    if idx + 1 < seg.eps.len() {
                        // Store-and-forward: advance the chain one hop.
                        seg.expect += 1;
                        seg.attempts = 0;
                        self.net.cancel_timer(seg.guard);
                        let (watchdog, guard) = self.arm_watchdog(seg.wire, 0);
                        let seg = s.segment.as_mut().expect("still armed");
                        seg.watchdog = watchdog;
                        seg.guard = guard;
                        let (src, dst) = (seg.eps[seg.expect - 1], seg.eps[seg.expect]);
                        let (wire, tag) = (seg.wire, (seg.flow << 16) | seg.expect as u64);
                        self.net.send(src, dst, wire, tag);
                        continue;
                    }
                    // Segment complete.
                    let seg = s.segment.take().expect("matched above");
                    self.net.cancel_timer(seg.guard);
                    cx.report.overlay_hops += seg.eps.len() - 1;
                    cx.report.bytes_on_wire += seg.wire * (seg.eps.len() - 1) as u64;
                    if s.delivering.is_some() {
                        self.stripe_finish(si, s, &mut cx);
                    } else if self.stripe_arrive(thas, s, &mut cx) {
                        self.stripe_launch(overlay, thas, si, s, &mut cx);
                    }
                }
                Event::Timer { token, .. } => {
                    let Some(si) = states
                        .iter()
                        .position(|s| s.segment.as_ref().map(|g| g.watchdog) == Some(token))
                    else {
                        continue; // foreign timer sharing the network
                    };
                    let s = &mut states[si];
                    let seg = s.segment.as_mut().expect("position matched on segment");
                    if seg.attempts >= options.retry_budget {
                        let seg = s.segment.take().expect("matched above");
                        if seg.hinted {
                            // §5: the direct attempt timed out — demote the
                            // stale hint, re-route this segment via overlay.
                            if let Some(cache) = cx.hints.as_deref_mut() {
                                cache.demote(s.hop);
                            }
                            if let Some(ins) = &self.instruments {
                                ins.transit_retries.inc();
                            }
                            s.hint = None;
                            self.stripe_launch(overlay, thas, si, s, &mut cx);
                        } else {
                            self.stripe_fail(s, &mut cx);
                        }
                    } else {
                        if let Some(ins) = &self.instruments {
                            ins.transit_retries.inc();
                            ins.transit_backoff_us
                                .record(Self::resend_timeout(seg.wire, seg.attempts).as_micros());
                        }
                        cx.report.retries += 1;
                        seg.attempts += 1;
                        let (watchdog, guard) = self.arm_watchdog(seg.wire, seg.attempts);
                        let seg = s.segment.as_mut().expect("still armed");
                        seg.watchdog = watchdog;
                        seg.guard = guard;
                        let (src, dst) = (seg.eps[seg.expect - 1], seg.eps[seg.expect]);
                        let (wire, tag) = (seg.wire, (seg.flow << 16) | seg.expect as u64);
                        self.net.send(src, dst, wire, tag);
                    }
                }
            }
        }

        // Success: retire the laggards' watchdogs through their handles so
        // spent timers never fire into a later drain.
        for s in &mut states {
            if let Some(seg) = s.segment.take() {
                self.net.cancel_timer(seg.guard);
                cx.report.laggards_cancelled += 1;
                if let Some(ins) = &self.instruments {
                    ins.mp_laggards_cancelled.inc();
                }
            }
        }
        cx.report.elapsed = self.net.now() - start;
        cx.report.max_stripes_per_relay = cx
            .seen
            .values()
            .map(|mask| mask.count_ones())
            .max()
            .unwrap_or(0);
        Ok((cx.delivered, cx.report))
    }

    /// Decide and launch the next wire segment for stripe `si`, looping
    /// through zero-length segments (the onion already sits on the target
    /// node) until real wire traffic starts or the stripe terminates.
    fn stripe_launch(
        &mut self,
        overlay: &mut impl KeyRouter,
        thas: &ReplicaStore<Tha>,
        si: usize,
        s: &mut StripeState,
        cx: &mut StripedCx<'_>,
    ) {
        loop {
            let (path, hinted) = if let Some(dest) = &s.delivering {
                let path = match dest {
                    Destination::Node(n) => {
                        if !overlay.is_live(*n) {
                            return self.stripe_fail(s, cx);
                        }
                        vec![s.current, *n]
                    }
                    Destination::KeyRoot(key) => match overlay.route_path(s.current, *key) {
                        Ok(p) => p,
                        Err(_) => return self.stripe_fail(s, cx),
                    },
                };
                (path, false)
            } else {
                let Some(root) = overlay.owner_of(s.hop) else {
                    return self.stripe_fail(s, cx);
                };
                s.root = root;
                let hinted_target = match (cx.options.use_hints, s.hint) {
                    (true, Some(h)) if h != s.current => Some(h),
                    _ => None,
                };
                match hinted_target {
                    Some(h) => (vec![s.current, h], true),
                    None => match overlay.route_path(s.current, s.hop) {
                        Ok(p) => (p, false),
                        Err(_) => return self.stripe_fail(s, cx),
                    },
                }
            };
            // Anonymity-surface accounting: every relay that stores or
            // forwards this fragment sees stripe `si`. The initiator and
            // the final destination see all fragments by design.
            let to_dest = s.delivering.is_some();
            for (pi, node) in path.iter().enumerate() {
                if *node == cx.from || (to_dest && pi + 1 == path.len()) {
                    continue;
                }
                *cx.seen.entry(*node).or_insert(0) |= 1u64 << (si as u32 & 63);
            }
            let wire = s.onion.as_ref().map_or(0, |o| o.len()) as u64;
            let mut eps = Vec::with_capacity(path.len());
            for n in &path {
                let e = self.endpoint(*n);
                if eps.last() != Some(&e) {
                    eps.push(e);
                }
            }
            if eps.len() >= 2 {
                self.flow_seq += 1;
                let flow = self.flow_seq;
                debug_assert!(eps.len() < (1 << 16), "hop index fits the low bits");
                let (watchdog, guard) = self.arm_watchdog(wire, 0);
                self.net.send(eps[0], eps[1], wire, (flow << 16) | 1);
                s.segment = Some(Segment {
                    eps,
                    expect: 1,
                    attempts: 0,
                    flow,
                    watchdog,
                    guard,
                    hinted,
                    wire,
                });
                return;
            }
            // Zero-length segment: the onion is already where it needs to
            // be. Complete the phase immediately and keep going.
            if to_dest {
                return self.stripe_finish(si, s, cx);
            }
            if !self.stripe_arrive(thas, s, cx) {
                return;
            }
        }
    }

    /// The stripe's onion arrived at `s.root` for hop `s.hop`: run the THA
    /// check, peel one layer, follow the header. Returns whether the
    /// stripe should launch another segment.
    fn stripe_arrive(
        &mut self,
        thas: &ReplicaStore<Tha>,
        s: &mut StripeState,
        cx: &mut StripedCx<'_>,
    ) -> bool {
        // A fragment landing at an anchorless root cannot be delivered —
        // that terminal only makes sense for reply tunnels, not stripes.
        let Some(record) = thas.get(s.hop) else {
            self.stripe_fail(s, cx);
            return false;
        };
        if !record.holders.contains(&s.root) {
            self.stripe_fail(s, cx);
            return false;
        }
        s.current = s.root;
        let onion = s.onion.as_mut().expect("active stripe owns its onion");
        let Ok(header_bytes) = onion.peel(&record.value.key) else {
            self.stripe_fail(s, cx);
            return false;
        };
        let Ok(header) = HopHeader::decode(header_bytes) else {
            self.stripe_fail(s, cx);
            return false;
        };
        cx.report.hops_resolved += 1;
        match header {
            HopHeader::Forward {
                next_hop,
                hint: next_hint,
            } => {
                s.hop = next_hop;
                s.hint = next_hint;
            }
            HopHeader::Deliver { dest } => s.delivering = Some(dest),
        }
        true
    }

    /// The stripe's delivery leg completed: hand over the fragment core.
    fn stripe_finish(&mut self, si: usize, s: &mut StripeState, cx: &mut StripedCx<'_>) {
        let core = s
            .onion
            .take()
            .expect("active stripe owns its onion")
            .into_vec();
        s.status = StripeStatus::Delivered;
        cx.report.stripes_delivered += 1;
        if let Some(ins) = &self.instruments {
            ins.mp_fragments_delivered.inc();
        }
        cx.delivered.push((si, core));
    }

    /// Abandon one stripe (broken tunnel, dead destination, exhausted
    /// retries). The transfer keeps going while enough stripes survive.
    fn stripe_fail(&mut self, s: &mut StripeState, cx: &mut StripedCx<'_>) {
        debug_assert!(s.segment.is_none(), "fail with the watchdog retired");
        s.status = StripeStatus::Failed;
        cx.report.stripes_failed += 1;
        if let Some(ins) = &self.instruments {
            ins.mp_stripe_giveups.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tha::ThaFactory;
    use crate::transit;
    use crate::tunnel::Tunnel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tap_netsim::latency::UniformLatency;
    use tap_netsim::NetworkConfig;
    use tap_pastry::{Overlay, PastryConfig};

    struct Fx {
        overlay: Overlay,
        thas: ReplicaStore<Tha>,
        rng: StdRng,
        initiator: Id,
        driver: NetDriver<UniformLatency>,
    }

    fn fixture(n: usize, seed: u64) -> Fx {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = Overlay::new(PastryConfig::paper_defaults());
        for _ in 0..n {
            overlay.add_random_node(&mut rng);
        }
        let initiator = overlay.random_node(&mut rng).unwrap();
        let driver = NetDriver::new(Network::new(
            NetworkConfig::paper_defaults(),
            UniformLatency::paper(seed),
        ));
        Fx {
            overlay,
            thas: ReplicaStore::new(3),
            rng,
            initiator,
            driver,
        }
    }

    fn tunnel(fx: &mut Fx, l: usize) -> Tunnel {
        let mut f = ThaFactory::new(&mut fx.rng, fx.initiator);
        let mut hops = Vec::new();
        while hops.len() < l {
            let s = f.next(&mut fx.rng);
            if fx.thas.insert(&fx.overlay, s.hopid, s.stored()).unwrap() {
                hops.push(s);
            }
        }
        Tunnel::new(hops)
    }

    #[test]
    fn timed_transit_delivers_and_times() {
        let mut fx = fixture(200, 1);
        let t = tunnel(&mut fx, 3);
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"payload", None);
        let (delivery, timed) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions::default(),
            )
            .unwrap();
        match delivery {
            Delivery::ToDestination { node, core } => {
                assert_eq!(node, dest);
                assert_eq!(core, b"payload");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(timed.hops_resolved, 3);
        assert!(timed.elapsed > SimDuration::ZERO);
        assert!(timed.bytes_on_wire > 0);
        // Every overlay hop needs ≥ 1ms propagation.
        assert!(timed.elapsed >= SimDuration::from_millis(timed.overlay_hops as u64));
    }

    #[test]
    fn agrees_with_logical_transit_on_path_shape() {
        // drive_timed and transit::drive must agree on which nodes carry
        // the message and on the terminal delivery.
        let mut fx = fixture(250, 2);
        let t = tunnel(&mut fx, 4);
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"m", None);
        let (d_logical, logical) = transit::drive(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            t.entry_hopid(),
            onion.clone(),
            TransitOptions::default(),
        )
        .unwrap();
        let (d_timed, timed) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions::default(),
            )
            .unwrap();
        assert_eq!(d_logical, d_timed);
        assert_eq!(logical.hops_resolved, timed.hops_resolved);
        assert_eq!(logical.overlay_hops, timed.overlay_hops);
    }

    #[test]
    fn onion_shrinks_on_the_wire() {
        // With zero application payload, per-hop wire bytes must strictly
        // decrease (one sealing layer + header gone per peel) — verify via
        // total accounting: bytes_on_wire < first_len × overlay_hops.
        let mut fx = fixture(200, 3);
        let t = tunnel(&mut fx, 5);
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"x", None);
        let outer_len = onion.len() as u64;
        let (_, timed) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions::default(),
            )
            .unwrap();
        assert!(
            timed.bytes_on_wire < outer_len * timed.overlay_hops as u64,
            "later hops must carry strictly fewer bytes"
        );
    }

    #[test]
    fn hints_cut_wall_clock_time() {
        let mut fx = fixture(400, 4);
        let t = tunnel(&mut fx, 5);
        let mut hints = crate::transit::HintCache::default();
        hints.refresh(&fx.overlay, &t.hop_ids());
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        // 2 Mb file travelling alongside the onion, as in Fig. 6.
        let onion_plain = t.build_onion(&mut fx.rng, Destination::Node(dest), b"f", None);
        let (_, plain) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion_plain,
                250_000,
                TransitOptions::default(),
            )
            .unwrap();
        let onion_hinted = t.build_onion(&mut fx.rng, Destination::Node(dest), b"f", Some(&hints));
        let (_, hinted) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion_hinted,
                250_000,
                TransitOptions::hinted(),
            )
            .unwrap();
        assert!(
            hinted.elapsed < plain.elapsed,
            "hints must cut seconds: {} vs {}",
            hinted.elapsed,
            plain.elapsed
        );
        assert!(hinted.bytes_on_wire < plain.bytes_on_wire);
    }

    #[test]
    fn retries_carry_transit_through_heavy_loss() {
        let mut fx = fixture(200, 6);
        let t = tunnel(&mut fx, 3);
        let registry = tap_metrics::Registry::new();
        fx.driver
            .use_instruments(crate::metrics::CoreInstruments::new(&registry));
        fx.driver
            .network_mut()
            .install_faults(tap_netsim::FaultPlan::new(99).with_loss(300));
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"hard", None);
        let (delivery, timed) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions {
                    retry_budget: 8,
                    ..TransitOptions::default()
                },
            )
            .unwrap();
        assert!(matches!(delivery, Delivery::ToDestination { .. }));
        assert_eq!(timed.hops_resolved, 3);
        let report = registry.snapshot();
        // 30% loss over many hops all but guarantees at least one resend
        // (if none happened, the test still proves delivery works).
        assert_eq!(report.counter("core.transit.giveups"), 0);
        let retries = report.counter("core.transit.retries");
        if retries > 0 {
            let backoff = report.histogram("core.transit.backoff_us").unwrap();
            assert_eq!(backoff.count, retries, "every resend recorded a wait");
        }
    }

    #[test]
    fn exhausted_budget_gives_up_cleanly() {
        let mut fx = fixture(150, 7);
        let t = tunnel(&mut fx, 3);
        let registry = tap_metrics::Registry::new();
        fx.driver
            .use_instruments(crate::metrics::CoreInstruments::new(&registry));
        // Total loss: nothing ever arrives.
        fx.driver
            .network_mut()
            .install_faults(tap_netsim::FaultPlan::new(1).with_loss(1000));
        let dest = fx.overlay.random_node(&mut fx.rng).unwrap();
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"x", None);
        let err = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions {
                    retry_budget: 2,
                    ..TransitOptions::default()
                },
            )
            .unwrap_err();
        match err {
            TransitError::RetriesExhausted { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("unexpected {other:?}"),
        }
        let report = registry.snapshot();
        assert_eq!(report.counter("core.transit.giveups"), 1);
        assert_eq!(report.counter("core.transit.retries"), 2);
    }

    #[test]
    fn duplicated_deliveries_do_not_derail_the_chain() {
        let mut fx = fixture(200, 8);
        let t = tunnel(&mut fx, 4);
        fx.driver
            .network_mut()
            .install_faults(tap_netsim::FaultPlan::new(4).with_duplication(1000));
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"dup", None);
        let (delivery, timed) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions::default(),
            )
            .unwrap();
        match delivery {
            Delivery::ToDestination { node, core } => {
                assert_eq!(node, dest);
                assert_eq!(core, b"dup");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(timed.hops_resolved, 4);
    }

    #[test]
    fn timed_out_hint_demotes_and_falls_back() {
        let mut fx = fixture(250, 9);
        let t = tunnel(&mut fx, 3);
        let mut hints = crate::transit::HintCache::default();
        hints.refresh(&fx.overlay, &t.hop_ids());
        let registry = tap_metrics::Registry::new();
        fx.driver
            .use_instruments(crate::metrics::CoreInstruments::new(&registry));
        // Crash the hinted node of hop 2 on the WIRE only: the overlay
        // oracle still says it is live and root, so the oracle-level
        // staleness check passes and the direct send must time out.
        let hinted = hints.lookup(t.hops()[1].hopid).unwrap();
        fx.driver.kill_node(hinted);
        assert!(fx.overlay.is_live(hinted), "split-brain precondition");
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator && d != hinted {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"m", Some(&hints));
        let before = hints.len();
        let result = fx.driver.drive_timed_with_hints(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            t.entry_hopid(),
            onion,
            0,
            TransitOptions {
                use_hints: true,
                retry_budget: 1,
            },
            Some(&mut hints),
        );
        // The fallback routes via the overlay — but the real root IS the
        // crashed node (oracle split-brain), so the fallback itself may
        // also time out. Both outcomes are legal; what matters is the
        // hint got demoted rather than looping forever.
        assert!(hints.len() < before, "stale hint must be evicted");
        assert!(hints.lookup(t.hops()[1].hopid).is_none());
        if let Err(e) = result {
            assert!(matches!(e, TransitError::RetriesExhausted { .. }));
        }
    }

    /// `count` tunnels with globally distinct hopids (fresh random anchors
    /// are distinct with overwhelming probability; assert anyway).
    fn disjoint_tunnels(fx: &mut Fx, count: usize, l: usize) -> Vec<Tunnel> {
        let tunnels: Vec<Tunnel> = (0..count).map(|_| tunnel(fx, l)).collect();
        let mut all: Vec<Id> = tunnels.iter().flat_map(|t| t.hop_ids()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), count * l, "stripes must not share hopids");
        tunnels
    }

    fn pick_dest(fx: &mut Fx) -> Id {
        loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        }
    }

    #[test]
    fn striped_transfer_delivers_every_fragment() {
        let mut fx = fixture(250, 21);
        let tunnels = disjoint_tunnels(&mut fx, 3, 3);
        let dest = pick_dest(&mut fx);
        let cores: Vec<Vec<u8>> = (0..3u8).map(|i| vec![b'f', i, i, i]).collect();
        let stripes: Vec<(Id, Vec<u8>)> = tunnels
            .iter()
            .zip(&cores)
            .map(|(t, core)| {
                (
                    t.entry_hopid(),
                    t.build_onion(&mut fx.rng, Destination::Node(dest), core, None),
                )
            })
            .collect();
        let (delivered, report) = fx
            .driver
            .drive_striped(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                stripes,
                3,
                TransitOptions::default(),
                None,
            )
            .unwrap();
        assert_eq!(delivered.len(), 3);
        for (si, core) in &delivered {
            assert_eq!(core, &cores[*si], "stripe {si} core intact");
        }
        assert_eq!(report.stripes_delivered, 3);
        assert_eq!(report.stripes_failed, 0);
        assert_eq!(report.laggards_cancelled, 0);
        assert_eq!(report.hops_resolved, 9, "three 3-hop tunnels");
        assert!(report.elapsed > SimDuration::ZERO);
        // Disjoint hopids keep any one relay under the full stripe count
        // most of the time; it can never exceed it.
        assert!(report.max_stripes_per_relay <= 3);
    }

    #[test]
    fn striped_transfer_survives_k_of_n_and_cancels_laggards() {
        let mut fx = fixture(250, 22);
        let tunnels = disjoint_tunnels(&mut fx, 3, 3);
        let dest = pick_dest(&mut fx);
        let registry = tap_metrics::Registry::new();
        fx.driver
            .use_instruments(crate::metrics::CoreInstruments::new(&registry));
        // Black-hole stripe 0 at the wire: its entry root is overlay-live
        // but crashed, so the stripe sits in watchdog backoff while the
        // other two race ahead.
        let stalled_root = fx.overlay.owner_of(tunnels[0].entry_hopid()).unwrap();
        assert_ne!(stalled_root, fx.initiator, "seed keeps the root remote");
        fx.driver.kill_node(stalled_root);
        let stripes: Vec<(Id, Vec<u8>)> = tunnels
            .iter()
            .map(|t| {
                (
                    t.entry_hopid(),
                    t.build_onion(&mut fx.rng, Destination::Node(dest), b"frag", None),
                )
            })
            .collect();
        let (delivered, report) = fx
            .driver
            .drive_striped(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                stripes,
                2,
                TransitOptions {
                    retry_budget: 10,
                    ..TransitOptions::default()
                },
                None,
            )
            .unwrap();
        assert_eq!(delivered.len(), 2);
        assert!(
            delivered.iter().all(|(si, _)| *si != 0),
            "the stalled stripe cannot have delivered"
        );
        assert_eq!(
            report.laggards_cancelled, 1,
            "stripe 0 cancelled mid-backoff"
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.mp.fragments_delivered"), 2);
        assert_eq!(snap.counter("core.mp.laggards_cancelled"), 1);
        assert_eq!(
            snap.counter("core.transit.giveups"),
            0,
            "the transfer delivered"
        );
        // Satellite invariant: the laggard's watchdog was cancelled via its
        // handle, so draining the network surfaces NO timer events — spent
        // timers must not fire into later chains or skew timer histograms.
        let mut stray_timers = 0u32;
        fx.driver.network_mut().run_until_quiet(|_, ev| {
            if matches!(ev, Event::Timer { .. }) {
                stray_timers += 1;
            }
        });
        assert_eq!(
            stray_timers, 0,
            "no spent watchdog may outlive the transfer"
        );
    }

    #[test]
    fn striped_transfer_gives_up_exactly_once_when_hopeless() {
        let mut fx = fixture(250, 23);
        let tunnels = disjoint_tunnels(&mut fx, 3, 3);
        let dest = pick_dest(&mut fx);
        let registry = tap_metrics::Registry::new();
        fx.driver
            .use_instruments(crate::metrics::CoreInstruments::new(&registry));
        // Kill two of three entry roots: at most one fragment can arrive,
        // and need = 2 becomes unsatisfiable.
        for t in &tunnels[..2] {
            let root = fx.overlay.owner_of(t.entry_hopid()).unwrap();
            assert_ne!(root, fx.initiator);
            fx.driver.kill_node(root);
        }
        let stripes: Vec<(Id, Vec<u8>)> = tunnels
            .iter()
            .map(|t| {
                (
                    t.entry_hopid(),
                    t.build_onion(&mut fx.rng, Destination::Node(dest), b"frag", None),
                )
            })
            .collect();
        let err = fx
            .driver
            .drive_striped(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                stripes,
                2,
                TransitOptions {
                    retry_budget: 1,
                    ..TransitOptions::default()
                },
                None,
            )
            .unwrap_err();
        match err {
            TransitError::StripesExhausted { delivered, need } => {
                assert!(delivered < 2);
                assert_eq!(need, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("core.transit.giveups"),
            1,
            "delivered XOR gave-up, exactly once per transfer"
        );
        assert_eq!(snap.counter("core.mp.stripe_giveups"), 2);
        // No watchdog survives the give-up either.
        let mut stray_timers = 0u32;
        fx.driver.network_mut().run_until_quiet(|_, ev| {
            if matches!(ev, Event::Timer { .. }) {
                stray_timers += 1;
            }
        });
        assert_eq!(stray_timers, 0);
    }

    #[test]
    fn broken_tunnel_reported_before_wasting_bandwidth() {
        let mut fx = fixture(200, 5);
        let t = tunnel(&mut fx, 3);
        let victim = t.hop_ids()[0];
        for holder in fx.thas.holders(victim).to_vec() {
            if holder != fx.initiator {
                fx.overlay.remove_node(holder);
            }
        }
        let dest = fx.overlay.random_node(&mut fx.rng).unwrap();
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"x", None);
        let err = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                250_000,
                TransitOptions::default(),
            )
            .unwrap_err();
        assert_eq!(err, TransitError::ThaLost { hopid: victim });
    }
}
