//! Timed, message-driven tunnel transit over the emulated network.
//!
//! [`crate::transit::drive`] resolves a tunnel logically (who peels what, which
//! node serves each hop); this module runs the same traversal as *actual
//! wire traffic* through `tap-netsim`: every overlay hop is a
//! store-and-forward message whose size is the real onion byte count plus
//! the application payload. Two fidelity details fall out for free:
//!
//! * **per-layer shrinkage** — each peel removes one layer's sealing
//!   overhead plus its header, so early hops carry more bytes than late
//!   ones, exactly as a real deployment would;
//! * **serialization vs. propagation** — transfer time composes from the
//!   1.5 Mb/s uplink serialization and the per-link latency, the §7.3 cost
//!   model, with the NIC queueing the emulator enforces.
//!
//! The Fig. 6 experiment replays precomputed paths for throughput; this
//! driver exists to validate that shortcut (see the agreement test) and to
//! let applications measure end-to-end seconds for single flows.

use std::collections::HashMap;

use tap_crypto::onion;
use tap_id::Id;
use tap_netsim::latency::LatencyModel;
use tap_netsim::{EndpointId, Event, Network, SimDuration, SimTime};
use tap_pastry::storage::ReplicaStore;
use tap_pastry::{KeyRouter, RouteError};

use crate::tha::Tha;
use crate::transit::{Delivery, TransitError, TransitOptions};
use crate::wire::{Destination, HopHeader};

/// Maps overlay nodes onto network endpoints and owns the event loop.
pub struct NetDriver<L: LatencyModel> {
    net: Network<u64, L>,
    endpoint_of: HashMap<Id, EndpointId>,
}

/// Timing gathered by a timed traversal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimedReport {
    /// Wall-clock (virtual) duration of the whole traversal.
    pub elapsed: SimDuration,
    /// Total bytes that crossed links.
    pub bytes_on_wire: u64,
    /// Overlay hops taken.
    pub overlay_hops: usize,
    /// Tunnel hops resolved.
    pub hops_resolved: usize,
}

impl<L: LatencyModel> NetDriver<L> {
    /// Wrap a network; endpoints are registered lazily per node.
    pub fn new(net: Network<u64, L>) -> Self {
        NetDriver {
            net,
            endpoint_of: HashMap::new(),
        }
    }

    /// Current virtual time of the underlying network.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// The endpoint for `node`, creating it on first use.
    fn endpoint(&mut self, node: Id) -> EndpointId {
        match self.endpoint_of.get(&node) {
            Some(e) => *e,
            None => {
                let e = self.net.add_endpoint();
                self.endpoint_of.insert(node, e);
                e
            }
        }
    }

    /// Ship `bytes` along consecutive node pairs of `path`, store-and-
    /// forward, and return when the last byte arrives.
    fn ship(&mut self, path: &[Id], bytes: u64) -> Result<(SimDuration, usize), TransitError> {
        let mut eps = Vec::with_capacity(path.len());
        for n in path {
            let e = self.endpoint(*n);
            if eps.last() != Some(&e) {
                eps.push(e);
            }
        }
        if eps.len() < 2 {
            return Ok((SimDuration::ZERO, 0));
        }
        let start = self.net.now();
        self.net.send(eps[0], eps[1], bytes, 1);
        while let Some(ev) = self.net.next_event() {
            if let Event::Message(m) = ev {
                let idx = m.payload as usize;
                if idx + 1 < eps.len() {
                    self.net
                        .send(eps[idx], eps[idx + 1], bytes, (idx + 1) as u64);
                } else {
                    return Ok((m.delivered_at - start, eps.len() - 1));
                }
            }
        }
        unreachable!("a live store-and-forward chain always completes")
    }

    /// Drive `onion_bytes` (plus `payload_bytes` of application data
    /// travelling alongside, e.g. a file on a reply path) through the
    /// tunnel starting at `entry_hop`, as timed wire traffic.
    #[allow(clippy::too_many_arguments)]
    pub fn drive_timed(
        &mut self,
        overlay: &mut impl KeyRouter,
        thas: &ReplicaStore<Tha>,
        from: Id,
        entry_hop: Id,
        mut onion_bytes: Vec<u8>,
        payload_bytes: u64,
        options: TransitOptions,
    ) -> Result<(Delivery, TimedReport), TransitError> {
        let mut report = TimedReport::default();
        let start = self.net.now();
        let mut current = from;
        let mut hop = entry_hop;
        let mut hint: Option<Id> = None;

        loop {
            let root = overlay.owner_of(hop).ok_or(RouteError::EmptyOverlay)?;
            let wire = onion_bytes.len() as u64 + payload_bytes;

            let segment: Vec<Id> = match (options.use_hints, hint) {
                (true, Some(h)) if overlay.is_live(h) && overlay.owner_of(hop) == Some(h) => {
                    vec![current, h]
                }
                _ => overlay.route_path(current, hop)?,
            };
            let (_, hops) = self.ship(&segment, wire)?;
            report.overlay_hops += hops;
            report.bytes_on_wire += wire * hops as u64;

            let Some(record) = thas.get(hop) else {
                report.elapsed = self.net.now() - start;
                return Ok((
                    Delivery::AtAnchorlessRoot {
                        node: root,
                        residue: onion_bytes,
                    },
                    report,
                ));
            };
            if !record.holders.contains(&root) {
                return Err(TransitError::ThaLost { hopid: hop });
            }
            current = root;

            let layer = onion::peel(&record.value.key, &onion_bytes)
                .map_err(|_| TransitError::BadLayer { hopid: hop })?;
            let header = HopHeader::decode(&layer.header)
                .map_err(|_| TransitError::BadLayer { hopid: hop })?;
            report.hops_resolved += 1;
            onion_bytes = layer.inner;

            match header {
                HopHeader::Forward {
                    next_hop,
                    hint: next_hint,
                } => {
                    hop = next_hop;
                    hint = next_hint;
                }
                HopHeader::Deliver { dest } => {
                    let wire = onion_bytes.len() as u64 + payload_bytes;
                    let node = match dest {
                        Destination::Node(n) => {
                            if !overlay.is_live(n) {
                                return Err(TransitError::DeadDestination { node: n });
                            }
                            let (_, hops) = self.ship(&[current, n], wire)?;
                            report.overlay_hops += hops;
                            report.bytes_on_wire += wire * hops as u64;
                            n
                        }
                        Destination::KeyRoot(key) => {
                            let path = overlay.route_path(current, key)?;
                            let root = *path.last().expect("non-empty path");
                            let (_, hops) = self.ship(&path, wire)?;
                            report.overlay_hops += hops;
                            report.bytes_on_wire += wire * hops as u64;
                            root
                        }
                    };
                    report.elapsed = self.net.now() - start;
                    return Ok((
                        Delivery::ToDestination {
                            node,
                            core: onion_bytes,
                        },
                        report,
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tha::ThaFactory;
    use crate::transit;
    use crate::tunnel::Tunnel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tap_netsim::latency::UniformLatency;
    use tap_netsim::NetworkConfig;
    use tap_pastry::{Overlay, PastryConfig};

    struct Fx {
        overlay: Overlay,
        thas: ReplicaStore<Tha>,
        rng: StdRng,
        initiator: Id,
        driver: NetDriver<UniformLatency>,
    }

    fn fixture(n: usize, seed: u64) -> Fx {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = Overlay::new(PastryConfig::paper_defaults());
        for _ in 0..n {
            overlay.add_random_node(&mut rng);
        }
        let initiator = overlay.random_node(&mut rng).unwrap();
        let driver = NetDriver::new(Network::new(
            NetworkConfig::paper_defaults(),
            UniformLatency::paper(seed),
        ));
        Fx {
            overlay,
            thas: ReplicaStore::new(3),
            rng,
            initiator,
            driver,
        }
    }

    fn tunnel(fx: &mut Fx, l: usize) -> Tunnel {
        let mut f = ThaFactory::new(&mut fx.rng, fx.initiator);
        let mut hops = Vec::new();
        while hops.len() < l {
            let s = f.next(&mut fx.rng);
            if fx.thas.insert(&fx.overlay, s.hopid, s.stored()).unwrap() {
                hops.push(s);
            }
        }
        Tunnel::new(hops)
    }

    #[test]
    fn timed_transit_delivers_and_times() {
        let mut fx = fixture(200, 1);
        let t = tunnel(&mut fx, 3);
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"payload", None);
        let (delivery, timed) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions::default(),
            )
            .unwrap();
        match delivery {
            Delivery::ToDestination { node, core } => {
                assert_eq!(node, dest);
                assert_eq!(core, b"payload");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(timed.hops_resolved, 3);
        assert!(timed.elapsed > SimDuration::ZERO);
        assert!(timed.bytes_on_wire > 0);
        // Every overlay hop needs ≥ 1ms propagation.
        assert!(timed.elapsed >= SimDuration::from_millis(timed.overlay_hops as u64));
    }

    #[test]
    fn agrees_with_logical_transit_on_path_shape() {
        // drive_timed and transit::drive must agree on which nodes carry
        // the message and on the terminal delivery.
        let mut fx = fixture(250, 2);
        let t = tunnel(&mut fx, 4);
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"m", None);
        let (d_logical, logical) = transit::drive(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            t.entry_hopid(),
            onion.clone(),
            TransitOptions::default(),
        )
        .unwrap();
        let (d_timed, timed) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions::default(),
            )
            .unwrap();
        assert_eq!(d_logical, d_timed);
        assert_eq!(logical.hops_resolved, timed.hops_resolved);
        assert_eq!(logical.overlay_hops, timed.overlay_hops);
    }

    #[test]
    fn onion_shrinks_on_the_wire() {
        // With zero application payload, per-hop wire bytes must strictly
        // decrease (one sealing layer + header gone per peel) — verify via
        // total accounting: bytes_on_wire < first_len × overlay_hops.
        let mut fx = fixture(200, 3);
        let t = tunnel(&mut fx, 5);
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"x", None);
        let outer_len = onion.len() as u64;
        let (_, timed) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions::default(),
            )
            .unwrap();
        assert!(
            timed.bytes_on_wire < outer_len * timed.overlay_hops as u64,
            "later hops must carry strictly fewer bytes"
        );
    }

    #[test]
    fn hints_cut_wall_clock_time() {
        let mut fx = fixture(400, 4);
        let t = tunnel(&mut fx, 5);
        let mut hints = crate::transit::HintCache::default();
        hints.refresh(&fx.overlay, &t.hop_ids());
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        // 2 Mb file travelling alongside the onion, as in Fig. 6.
        let onion_plain = t.build_onion(&mut fx.rng, Destination::Node(dest), b"f", None);
        let (_, plain) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion_plain,
                250_000,
                TransitOptions::default(),
            )
            .unwrap();
        let onion_hinted = t.build_onion(&mut fx.rng, Destination::Node(dest), b"f", Some(&hints));
        let (_, hinted) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion_hinted,
                250_000,
                TransitOptions { use_hints: true },
            )
            .unwrap();
        assert!(
            hinted.elapsed < plain.elapsed,
            "hints must cut seconds: {} vs {}",
            hinted.elapsed,
            plain.elapsed
        );
        assert!(hinted.bytes_on_wire < plain.bytes_on_wire);
    }

    #[test]
    fn broken_tunnel_reported_before_wasting_bandwidth() {
        let mut fx = fixture(200, 5);
        let t = tunnel(&mut fx, 3);
        let victim = t.hop_ids()[0];
        for holder in fx.thas.holders(victim).to_vec() {
            if holder != fx.initiator {
                fx.overlay.remove_node(holder);
            }
        }
        let dest = fx.overlay.random_node(&mut fx.rng).unwrap();
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"x", None);
        let err = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                250_000,
                TransitOptions::default(),
            )
            .unwrap_err();
        assert_eq!(err, TransitError::ThaLost { hopid: victim });
    }
}
