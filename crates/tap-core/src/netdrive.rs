//! Timed, message-driven tunnel transit over the emulated network.
//!
//! [`crate::transit::drive`] resolves a tunnel logically (who peels what, which
//! node serves each hop); this module runs the same traversal as *actual
//! wire traffic* through `tap-netsim`: every overlay hop is a
//! store-and-forward message whose size is the real onion byte count plus
//! the application payload. Two fidelity details fall out for free:
//!
//! * **per-layer shrinkage** — each peel removes one layer's sealing
//!   overhead plus its header, so early hops carry more bytes than late
//!   ones, exactly as a real deployment would;
//! * **serialization vs. propagation** — transfer time composes from the
//!   1.5 Mb/s uplink serialization and the per-link latency, the §7.3 cost
//!   model, with the NIC queueing the emulator enforces.
//!
//! The Fig. 6 experiment replays precomputed paths for throughput; this
//! driver exists to validate that shortcut (see the agreement test) and to
//! let applications measure end-to-end seconds for single flows.

use tap_crypto::onion;
use tap_id::{Id, IdHashMap};
use tap_netsim::latency::LatencyModel;
use tap_netsim::{EndpointId, Event, Network, SimDuration, SimTime, TimerHandle, TimerToken};
use tap_pastry::storage::ReplicaStore;
use tap_pastry::{KeyRouter, RouteError};

use crate::metrics::CoreInstruments;
use crate::tha::Tha;
use crate::transit::{Delivery, HintCache, TransitError, TransitOptions};
use crate::wire::{Destination, HopHeader};

/// Maps overlay nodes onto network endpoints and owns the event loop.
pub struct NetDriver<L: LatencyModel> {
    net: Network<u64, L>,
    endpoint_of: IdHashMap<EndpointId>,
    /// Distinguishes each (hop, attempt)'s timeout timer from stale ones
    /// still sitting in the heap after a delivery won the race.
    timer_seq: u64,
    /// Tags every [`NetDriver::ship`] chain's messages (high payload bits)
    /// so late deliveries and duplicates from an earlier chain can never
    /// be mistaken for the current one's progress.
    flow_seq: u64,
    instruments: Option<CoreInstruments>,
}

/// Timing gathered by a timed traversal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimedReport {
    /// Wall-clock (virtual) duration of the whole traversal.
    pub elapsed: SimDuration,
    /// Total bytes that crossed links.
    pub bytes_on_wire: u64,
    /// Overlay hops taken.
    pub overlay_hops: usize,
    /// Tunnel hops resolved.
    pub hops_resolved: usize,
}

impl<L: LatencyModel> NetDriver<L> {
    /// Wrap a network; endpoints are registered lazily per node.
    pub fn new(net: Network<u64, L>) -> Self {
        NetDriver {
            net,
            endpoint_of: IdHashMap::default(),
            timer_seq: 0,
            flow_seq: 0,
            instruments: None,
        }
    }

    /// Record retries/backoff/giveups into `instruments` from now on.
    pub fn use_instruments(&mut self, instruments: CoreInstruments) {
        self.instruments = Some(instruments);
    }

    /// Current virtual time of the underlying network.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// The underlying network — for installing a
    /// [`tap_netsim::FaultPlan`], cutting partitions, or reading stats.
    pub fn network_mut(&mut self) -> &mut Network<u64, L> {
        &mut self.net
    }

    /// Pre-create the endpoint for `node` (normally lazy on first send).
    /// Chaos harnesses need ids up front to schedule crash/restart plans.
    pub fn register(&mut self, node: Id) -> EndpointId {
        self.endpoint(node)
    }

    /// Crash `node`'s endpoint on the wire (the overlay keeps thinking it
    /// is live — exactly the split-brain the §5 hint fallback handles).
    pub fn kill_node(&mut self, node: Id) {
        let e = self.endpoint(node);
        self.net.kill(e);
    }

    /// Bring `node`'s endpoint back.
    pub fn revive_node(&mut self, node: Id) {
        let e = self.endpoint(node);
        self.net.revive(e);
    }

    /// The endpoint for `node`, creating it on first use.
    fn endpoint(&mut self, node: Id) -> EndpointId {
        match self.endpoint_of.get(&node) {
            Some(e) => *e,
            None => {
                let e = self.net.add_endpoint();
                self.endpoint_of.insert(node, e);
                e
            }
        }
    }

    /// Timeout before resending a hop carrying `bytes`: the worst-case
    /// delivery (serialization at 1.5 Mb/s plus the 230 ms latency
    /// ceiling), doubled per attempt already made.
    fn resend_timeout(bytes: u64, attempt: u32) -> SimDuration {
        let serialization_us = bytes.saturating_mul(16) / 3;
        let base = SimDuration::from_micros(serialization_us + 500_000);
        base.mul(1u64 << attempt.min(16))
    }

    /// Ship `bytes` along consecutive node pairs of `path`, store-and-
    /// forward, and return when the last byte arrives.
    ///
    /// Each hop is guarded by a delivery timeout: if the message vanishes
    /// (fault-injected loss, a crashed relay, a partition) the driver
    /// resends it up to `options.retry_budget` times with exponential
    /// backoff, then gives up with [`TransitError::RetriesExhausted`].
    /// Duplicate deliveries (fault-injected duplication, or a resend
    /// racing its slow original) are detected by hop index and ignored.
    ///
    /// `terminal` marks whether exhausting the budget abandons the whole
    /// traversal (counted as `core.transit.giveups`) or the caller still
    /// has a fallback (the hinted direct attempt) — only terminal
    /// exhaustion is a give-up.
    fn ship(
        &mut self,
        path: &[Id],
        bytes: u64,
        hopid: Id,
        options: TransitOptions,
        terminal: bool,
    ) -> Result<(SimDuration, usize), TransitError> {
        let mut eps = Vec::with_capacity(path.len());
        for n in path {
            let e = self.endpoint(*n);
            if eps.last() != Some(&e) {
                eps.push(e);
            }
        }
        if eps.len() < 2 {
            return Ok((SimDuration::ZERO, 0));
        }
        let start = self.net.now();
        // Payloads carry `flow << 16 | hop index`: the flow tag rejects
        // leftovers from earlier chains outright, and within this chain
        // the index exposes duplicates of an already-advanced hop.
        self.flow_seq += 1;
        let flow = self.flow_seq;
        debug_assert!(eps.len() < (1 << 16), "hop index fits the low bits");
        let tag = |idx: usize| (flow << 16) | idx as u64;
        let mut expect = 1usize;
        let mut attempts = 0u32;
        let (mut watchdog, mut guard) = self.arm_watchdog(bytes, attempts);
        self.net.send(eps[0], eps[1], bytes, tag(1));
        while let Some(ev) = self.net.next_event() {
            match ev {
                Event::Message(m) => {
                    if m.payload >> 16 != flow {
                        continue; // leftover from an earlier chain
                    }
                    let idx = (m.payload & 0xFFFF) as usize;
                    if idx != expect {
                        continue; // duplicate of an already-advanced hop
                    }
                    if idx + 1 == eps.len() {
                        // Retire the pending watchdog instead of letting it
                        // fire into a later chain's drain as a stale token.
                        self.net.cancel_timer(guard);
                        return Ok((m.delivered_at - start, eps.len() - 1));
                    }
                    expect += 1;
                    attempts = 0;
                    self.net.cancel_timer(guard);
                    (watchdog, guard) = self.arm_watchdog(bytes, attempts);
                    self.net.send(eps[idx], eps[idx + 1], bytes, tag(expect));
                }
                Event::Timer { token, .. } => {
                    if token != watchdog {
                        // Cancellation makes this unreachable for our own
                        // watchdogs; kept as defense against foreign timers
                        // sharing the network.
                        continue;
                    }
                    if attempts >= options.retry_budget {
                        if terminal {
                            if let Some(ins) = &self.instruments {
                                ins.transit_giveups.inc();
                            }
                        }
                        return Err(TransitError::RetriesExhausted {
                            hopid,
                            attempts: attempts + 1,
                        });
                    }
                    if let Some(ins) = &self.instruments {
                        ins.transit_retries.inc();
                        ins.transit_backoff_us
                            .record(Self::resend_timeout(bytes, attempts).as_micros());
                    }
                    attempts += 1;
                    (watchdog, guard) = self.arm_watchdog(bytes, attempts);
                    self.net
                        .send(eps[expect - 1], eps[expect], bytes, tag(expect));
                }
            }
        }
        unreachable!("an armed watchdog timer keeps the event queue non-empty")
    }

    /// Arm the per-hop delivery watchdog; the handle cancels it once the
    /// hop completes (a fired or cancelled handle is inert).
    fn arm_watchdog(&mut self, bytes: u64, attempt: u32) -> (TimerToken, TimerHandle) {
        self.timer_seq += 1;
        let token = TimerToken(self.timer_seq);
        let handle = self
            .net
            .arm_timer(Self::resend_timeout(bytes, attempt), token);
        (token, handle)
    }

    /// Drive `onion_bytes` (plus `payload_bytes` of application data
    /// travelling alongside, e.g. a file on a reply path) through the
    /// tunnel starting at `entry_hop`, as timed wire traffic.
    #[allow(clippy::too_many_arguments)]
    pub fn drive_timed(
        &mut self,
        overlay: &mut impl KeyRouter,
        thas: &ReplicaStore<Tha>,
        from: Id,
        entry_hop: Id,
        onion_bytes: Vec<u8>,
        payload_bytes: u64,
        options: TransitOptions,
    ) -> Result<(Delivery, TimedReport), TransitError> {
        self.drive_timed_with_hints(
            overlay,
            thas,
            from,
            entry_hop,
            onion_bytes,
            payload_bytes,
            options,
            None,
        )
    }

    /// [`NetDriver::drive_timed`] with an initiator-side [`HintCache`] to
    /// demote through. The §5 fallback at wire fidelity: a hinted direct
    /// hop that *times out* (hinted node overlay-live but crashed or
    /// partitioned on the wire) evicts the hint and re-ships the segment
    /// via overlay routing, instead of giving up on the whole traversal.
    #[allow(clippy::too_many_arguments)]
    pub fn drive_timed_with_hints(
        &mut self,
        overlay: &mut impl KeyRouter,
        thas: &ReplicaStore<Tha>,
        from: Id,
        entry_hop: Id,
        onion_bytes: Vec<u8>,
        payload_bytes: u64,
        options: TransitOptions,
        mut hints: Option<&mut HintCache>,
    ) -> Result<(Delivery, TimedReport), TransitError> {
        let mut report = TimedReport::default();
        let start = self.net.now();
        let mut current = from;
        let mut hop = entry_hop;
        let mut hint: Option<Id> = None;
        // One buffer for the whole traversal: every peel is one in-place
        // cipher pass, and the shrinking region is also the wire size.
        let mut onion = onion::LayerBuf::from_vec(onion_bytes);

        loop {
            let root = overlay.owner_of(hop).ok_or(RouteError::EmptyOverlay)?;
            let wire = onion.len() as u64 + payload_bytes;

            // §5 verbatim: "It first tries the IP address; if it fails,
            // then routes the message to the tunnel hop node corresponding
            // to the hopid." No oracle consultation here — a real
            // initiator cannot know the hint went stale except by the
            // attempt timing out, which is exactly what ship() detects.
            let hinted = match (options.use_hints, hint) {
                (true, Some(h)) if h != current => Some(h),
                _ => None,
            };
            let segment: Vec<Id> = match hinted {
                Some(h) => vec![current, h],
                None => overlay.route_path(current, hop)?,
            };
            let shipped = match self.ship(&segment, wire, hop, options, hinted.is_none()) {
                Err(TransitError::RetriesExhausted { .. }) if hinted.is_some() => {
                    // Direct attempt timed out: demote the stale hint and
                    // fall back to hopid routing (§5).
                    if let Some(cache) = hints.as_deref_mut() {
                        cache.demote(hop);
                    }
                    if let Some(ins) = &self.instruments {
                        ins.transit_retries.inc();
                    }
                    let fallback = overlay.route_path(current, hop)?;
                    self.ship(&fallback, wire, hop, options, true)?
                }
                other => other?,
            };
            let (_, hops) = shipped;
            report.overlay_hops += hops;
            report.bytes_on_wire += wire * hops as u64;

            let Some(record) = thas.get(hop) else {
                report.elapsed = self.net.now() - start;
                return Ok((
                    Delivery::AtAnchorlessRoot {
                        node: root,
                        residue: onion.into_vec(),
                    },
                    report,
                ));
            };
            if !record.holders.contains(&root) {
                return Err(TransitError::ThaLost { hopid: hop });
            }
            current = root;

            let header_bytes = onion
                .peel(&record.value.key)
                .map_err(|_| TransitError::BadLayer { hopid: hop })?;
            let header = HopHeader::decode(header_bytes)
                .map_err(|_| TransitError::BadLayer { hopid: hop })?;
            report.hops_resolved += 1;

            match header {
                HopHeader::Forward {
                    next_hop,
                    hint: next_hint,
                } => {
                    hop = next_hop;
                    hint = next_hint;
                }
                HopHeader::Deliver { dest } => {
                    let wire = onion.len() as u64 + payload_bytes;
                    let node = match dest {
                        Destination::Node(n) => {
                            if !overlay.is_live(n) {
                                return Err(TransitError::DeadDestination { node: n });
                            }
                            let (_, hops) = self.ship(&[current, n], wire, hop, options, true)?;
                            report.overlay_hops += hops;
                            report.bytes_on_wire += wire * hops as u64;
                            n
                        }
                        Destination::KeyRoot(key) => {
                            let path = overlay.route_path(current, key)?;
                            let root = *path.last().expect("non-empty path");
                            let (_, hops) = self.ship(&path, wire, hop, options, true)?;
                            report.overlay_hops += hops;
                            report.bytes_on_wire += wire * hops as u64;
                            root
                        }
                    };
                    report.elapsed = self.net.now() - start;
                    return Ok((
                        Delivery::ToDestination {
                            node,
                            core: onion.into_vec(),
                        },
                        report,
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tha::ThaFactory;
    use crate::transit;
    use crate::tunnel::Tunnel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tap_netsim::latency::UniformLatency;
    use tap_netsim::NetworkConfig;
    use tap_pastry::{Overlay, PastryConfig};

    struct Fx {
        overlay: Overlay,
        thas: ReplicaStore<Tha>,
        rng: StdRng,
        initiator: Id,
        driver: NetDriver<UniformLatency>,
    }

    fn fixture(n: usize, seed: u64) -> Fx {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = Overlay::new(PastryConfig::paper_defaults());
        for _ in 0..n {
            overlay.add_random_node(&mut rng);
        }
        let initiator = overlay.random_node(&mut rng).unwrap();
        let driver = NetDriver::new(Network::new(
            NetworkConfig::paper_defaults(),
            UniformLatency::paper(seed),
        ));
        Fx {
            overlay,
            thas: ReplicaStore::new(3),
            rng,
            initiator,
            driver,
        }
    }

    fn tunnel(fx: &mut Fx, l: usize) -> Tunnel {
        let mut f = ThaFactory::new(&mut fx.rng, fx.initiator);
        let mut hops = Vec::new();
        while hops.len() < l {
            let s = f.next(&mut fx.rng);
            if fx.thas.insert(&fx.overlay, s.hopid, s.stored()).unwrap() {
                hops.push(s);
            }
        }
        Tunnel::new(hops)
    }

    #[test]
    fn timed_transit_delivers_and_times() {
        let mut fx = fixture(200, 1);
        let t = tunnel(&mut fx, 3);
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"payload", None);
        let (delivery, timed) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions::default(),
            )
            .unwrap();
        match delivery {
            Delivery::ToDestination { node, core } => {
                assert_eq!(node, dest);
                assert_eq!(core, b"payload");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(timed.hops_resolved, 3);
        assert!(timed.elapsed > SimDuration::ZERO);
        assert!(timed.bytes_on_wire > 0);
        // Every overlay hop needs ≥ 1ms propagation.
        assert!(timed.elapsed >= SimDuration::from_millis(timed.overlay_hops as u64));
    }

    #[test]
    fn agrees_with_logical_transit_on_path_shape() {
        // drive_timed and transit::drive must agree on which nodes carry
        // the message and on the terminal delivery.
        let mut fx = fixture(250, 2);
        let t = tunnel(&mut fx, 4);
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"m", None);
        let (d_logical, logical) = transit::drive(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            t.entry_hopid(),
            onion.clone(),
            TransitOptions::default(),
        )
        .unwrap();
        let (d_timed, timed) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions::default(),
            )
            .unwrap();
        assert_eq!(d_logical, d_timed);
        assert_eq!(logical.hops_resolved, timed.hops_resolved);
        assert_eq!(logical.overlay_hops, timed.overlay_hops);
    }

    #[test]
    fn onion_shrinks_on_the_wire() {
        // With zero application payload, per-hop wire bytes must strictly
        // decrease (one sealing layer + header gone per peel) — verify via
        // total accounting: bytes_on_wire < first_len × overlay_hops.
        let mut fx = fixture(200, 3);
        let t = tunnel(&mut fx, 5);
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"x", None);
        let outer_len = onion.len() as u64;
        let (_, timed) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions::default(),
            )
            .unwrap();
        assert!(
            timed.bytes_on_wire < outer_len * timed.overlay_hops as u64,
            "later hops must carry strictly fewer bytes"
        );
    }

    #[test]
    fn hints_cut_wall_clock_time() {
        let mut fx = fixture(400, 4);
        let t = tunnel(&mut fx, 5);
        let mut hints = crate::transit::HintCache::default();
        hints.refresh(&fx.overlay, &t.hop_ids());
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        // 2 Mb file travelling alongside the onion, as in Fig. 6.
        let onion_plain = t.build_onion(&mut fx.rng, Destination::Node(dest), b"f", None);
        let (_, plain) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion_plain,
                250_000,
                TransitOptions::default(),
            )
            .unwrap();
        let onion_hinted = t.build_onion(&mut fx.rng, Destination::Node(dest), b"f", Some(&hints));
        let (_, hinted) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion_hinted,
                250_000,
                TransitOptions::hinted(),
            )
            .unwrap();
        assert!(
            hinted.elapsed < plain.elapsed,
            "hints must cut seconds: {} vs {}",
            hinted.elapsed,
            plain.elapsed
        );
        assert!(hinted.bytes_on_wire < plain.bytes_on_wire);
    }

    #[test]
    fn retries_carry_transit_through_heavy_loss() {
        let mut fx = fixture(200, 6);
        let t = tunnel(&mut fx, 3);
        let registry = tap_metrics::Registry::new();
        fx.driver
            .use_instruments(crate::metrics::CoreInstruments::new(&registry));
        fx.driver
            .network_mut()
            .install_faults(tap_netsim::FaultPlan::new(99).with_loss(300));
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"hard", None);
        let (delivery, timed) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions {
                    retry_budget: 8,
                    ..TransitOptions::default()
                },
            )
            .unwrap();
        assert!(matches!(delivery, Delivery::ToDestination { .. }));
        assert_eq!(timed.hops_resolved, 3);
        let report = registry.snapshot();
        // 30% loss over many hops all but guarantees at least one resend
        // (if none happened, the test still proves delivery works).
        assert_eq!(report.counter("core.transit.giveups"), 0);
        let retries = report.counter("core.transit.retries");
        if retries > 0 {
            let backoff = report.histogram("core.transit.backoff_us").unwrap();
            assert_eq!(backoff.count, retries, "every resend recorded a wait");
        }
    }

    #[test]
    fn exhausted_budget_gives_up_cleanly() {
        let mut fx = fixture(150, 7);
        let t = tunnel(&mut fx, 3);
        let registry = tap_metrics::Registry::new();
        fx.driver
            .use_instruments(crate::metrics::CoreInstruments::new(&registry));
        // Total loss: nothing ever arrives.
        fx.driver
            .network_mut()
            .install_faults(tap_netsim::FaultPlan::new(1).with_loss(1000));
        let dest = fx.overlay.random_node(&mut fx.rng).unwrap();
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"x", None);
        let err = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions {
                    retry_budget: 2,
                    ..TransitOptions::default()
                },
            )
            .unwrap_err();
        match err {
            TransitError::RetriesExhausted { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("unexpected {other:?}"),
        }
        let report = registry.snapshot();
        assert_eq!(report.counter("core.transit.giveups"), 1);
        assert_eq!(report.counter("core.transit.retries"), 2);
    }

    #[test]
    fn duplicated_deliveries_do_not_derail_the_chain() {
        let mut fx = fixture(200, 8);
        let t = tunnel(&mut fx, 4);
        fx.driver
            .network_mut()
            .install_faults(tap_netsim::FaultPlan::new(4).with_duplication(1000));
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"dup", None);
        let (delivery, timed) = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                0,
                TransitOptions::default(),
            )
            .unwrap();
        match delivery {
            Delivery::ToDestination { node, core } => {
                assert_eq!(node, dest);
                assert_eq!(core, b"dup");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(timed.hops_resolved, 4);
    }

    #[test]
    fn timed_out_hint_demotes_and_falls_back() {
        let mut fx = fixture(250, 9);
        let t = tunnel(&mut fx, 3);
        let mut hints = crate::transit::HintCache::default();
        hints.refresh(&fx.overlay, &t.hop_ids());
        let registry = tap_metrics::Registry::new();
        fx.driver
            .use_instruments(crate::metrics::CoreInstruments::new(&registry));
        // Crash the hinted node of hop 2 on the WIRE only: the overlay
        // oracle still says it is live and root, so the oracle-level
        // staleness check passes and the direct send must time out.
        let hinted = hints.lookup(t.hops()[1].hopid).unwrap();
        fx.driver.kill_node(hinted);
        assert!(fx.overlay.is_live(hinted), "split-brain precondition");
        let dest = loop {
            let d = fx.overlay.random_node(&mut fx.rng).unwrap();
            if d != fx.initiator && d != hinted {
                break d;
            }
        };
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"m", Some(&hints));
        let before = hints.len();
        let result = fx.driver.drive_timed_with_hints(
            &mut fx.overlay,
            &fx.thas,
            fx.initiator,
            t.entry_hopid(),
            onion,
            0,
            TransitOptions {
                use_hints: true,
                retry_budget: 1,
            },
            Some(&mut hints),
        );
        // The fallback routes via the overlay — but the real root IS the
        // crashed node (oracle split-brain), so the fallback itself may
        // also time out. Both outcomes are legal; what matters is the
        // hint got demoted rather than looping forever.
        assert!(hints.len() < before, "stale hint must be evicted");
        assert!(hints.lookup(t.hops()[1].hopid).is_none());
        if let Err(e) = result {
            assert!(matches!(e, TransitError::RetriesExhausted { .. }));
        }
    }

    #[test]
    fn broken_tunnel_reported_before_wasting_bandwidth() {
        let mut fx = fixture(200, 5);
        let t = tunnel(&mut fx, 3);
        let victim = t.hop_ids()[0];
        for holder in fx.thas.holders(victim).to_vec() {
            if holder != fx.initiator {
                fx.overlay.remove_node(holder);
            }
        }
        let dest = fx.overlay.random_node(&mut fx.rng).unwrap();
        let onion = t.build_onion(&mut fx.rng, Destination::Node(dest), b"x", None);
        let err = fx
            .driver
            .drive_timed(
                &mut fx.overlay,
                &fx.thas,
                fx.initiator,
                t.entry_hopid(),
                onion,
                250_000,
                TransitOptions::default(),
            )
            .unwrap_err();
        assert_eq!(err, TransitError::ThaLost { hopid: victim });
    }
}
