//! Forming tunnels and building their onions (§3.5, §4, Fig. 1).
//!
//! A [`Tunnel`] is the *initiator's* view of an anonymous tunnel: the
//! ordered THA secrets of its hops. Nothing about a tunnel exists as
//! shared state anywhere else — each hop's handler merely holds a replica
//! of one THA and peels one layer when traffic arrives. That is what
//! decouples the tunnel from any fixed set of nodes.
//!
//! Hop selection follows §3.5: "the chosen THAs must scatter in the DHT
//! identifier space as far as possible (i.e., with different hopid's
//! prefixes) to minimize the probability that a single node has the
//! information of multiple or all tunnel hops."

use rand::seq::SliceRandom;
use rand::Rng;

use tap_id::Id;

use crate::metrics::CoreInstruments;
use crate::tha::ThaSecret;
use crate::transit::HintCache;
use crate::wire::{Destination, HopHeader};

/// An anonymous tunnel, from the initiator's point of view.
#[derive(Debug, Clone)]
pub struct Tunnel {
    hops: Vec<ThaSecret>,
}

impl Tunnel {
    /// A tunnel over `hops`, in traversal order. Panics on an empty hop
    /// list or duplicate hopids.
    pub fn new(hops: Vec<ThaSecret>) -> Self {
        assert!(!hops.is_empty(), "a tunnel needs at least one hop");
        let mut seen = std::collections::HashSet::new();
        for h in &hops {
            assert!(seen.insert(h.hopid), "duplicate hopid in tunnel");
        }
        Tunnel { hops }
    }

    /// Select `l` hops from `pool`, preferring pairwise-distinct first
    /// digits (§3.5's scatter rule), falling back to arbitrary distinct
    /// hops once the digit buckets are exhausted. Returns `None` if the
    /// pool has fewer than `l` anchors.
    pub fn form_scattered<R: Rng + ?Sized>(
        rng: &mut R,
        pool: &[ThaSecret],
        l: usize,
        b: u32,
    ) -> Option<Tunnel> {
        if pool.len() < l || l == 0 {
            return None;
        }
        let mut shuffled: Vec<&ThaSecret> = pool.iter().collect();
        shuffled.shuffle(rng);
        let mut chosen: Vec<ThaSecret> = Vec::with_capacity(l);
        let mut used_digits = std::collections::HashSet::new();
        for s in &shuffled {
            if chosen.len() == l {
                break;
            }
            if used_digits.insert(s.hopid.digit(0, b)) {
                chosen.push((*s).clone());
            }
        }
        // Fill remaining slots (more hops than digit buckets, or a
        // low-diversity pool) with any unused anchors.
        if chosen.len() < l {
            for s in &shuffled {
                if chosen.len() == l {
                    break;
                }
                if !chosen.iter().any(|c| c.hopid == s.hopid) {
                    chosen.push((*s).clone());
                }
            }
        }
        (chosen.len() == l).then(|| Tunnel::new(chosen))
    }

    /// The hops, in traversal order.
    pub fn hops(&self) -> &[ThaSecret] {
        &self.hops
    }

    /// Tunnel length `l` (number of tunnel hops).
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Tunnels are never empty; provided for clippy-completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The first hop's id — where the initiator injects messages.
    pub fn entry_hopid(&self) -> Id {
        self.hops[0].hopid
    }

    /// Hopids in traversal order.
    pub fn hop_ids(&self) -> Vec<Id> {
        self.hops.iter().map(|h| h.hopid).collect()
    }

    /// Number of distinct first digits among the hopids (scatter metric).
    pub fn scatter_score(&self, b: u32) -> usize {
        self.hops
            .iter()
            .map(|h| h.hopid.digit(0, b))
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// Build the forward onion of Fig. 1: layer `i` tells hop `i` where hop
    /// `i+1` is anchored; the innermost layer tells the tail to deliver
    /// `core` to `dest`. With `hints`, each forward header carries the
    /// cached identity of the next hop's current node (§5).
    pub fn build_onion<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        dest: Destination,
        core: &[u8],
        hints: Option<&HintCache>,
    ) -> Vec<u8> {
        self.build_onion_instrumented(rng, dest, core, hints, None)
    }

    /// [`Tunnel::build_onion`], recording per-layer seal (encrypt) timings
    /// into `instruments` when provided.
    pub fn build_onion_instrumented<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        dest: Destination,
        core: &[u8],
        hints: Option<&HintCache>,
        instruments: Option<&CoreInstruments>,
    ) -> Vec<u8> {
        let layers = self.layer_specs(dest, hints);
        match instruments {
            None => tap_crypto::onion::wrap(rng, &layers, core),
            Some(ins) => {
                // The fused single-pass seal — identical bytes and RNG use
                // to `wrap`. All layers are applied in one sweep, so the
                // timeable unit is the whole onion: one sample per build
                // (the old per-layer samples summed to the same wall time).
                let t0 = std::time::Instant::now();
                let mut b = tap_crypto::onion::OnionBuilder::new();
                b.seal(rng, &layers, core);
                ins.onion_wrap_us.record(t0.elapsed().as_micros() as u64);
                b.into_vec()
            }
        }
    }

    /// [`Tunnel::build_onion`] into a caller-owned reusable builder: the
    /// sealed onion lands in `builder` (read it back with
    /// [`tap_crypto::onion::OnionBuilder::as_bytes`]) and a warmed builder
    /// allocates nothing. Bytes and RNG use match [`Tunnel::build_onion`]
    /// exactly — multipath stripes use this to amortize the onion buffer
    /// and cipher scratch across a whole transfer.
    pub fn build_onion_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        dest: Destination,
        core: &[u8],
        hints: Option<&HintCache>,
        builder: &mut tap_crypto::onion::OnionBuilder,
    ) {
        let layers = self.layer_specs(dest, hints);
        builder.seal(rng, &layers, core);
    }

    /// The `(key, encoded header)` list for each hop, outermost first:
    /// layer `i` tells hop `i` where hop `i+1` is anchored, the innermost
    /// layer delivers to `dest`.
    fn layer_specs(
        &self,
        dest: Destination,
        hints: Option<&HintCache>,
    ) -> Vec<(tap_crypto::cipher::SymmetricKey, Vec<u8>)> {
        self.hops
            .iter()
            .enumerate()
            .map(|(i, hop)| {
                let header = if i + 1 < self.hops.len() {
                    let next = self.hops[i + 1].hopid;
                    HopHeader::Forward {
                        next_hop: next,
                        hint: hints.and_then(|h| h.lookup(next)),
                    }
                } else {
                    HopHeader::Deliver { dest }
                };
                (hop.key, header.encode())
            })
            .collect()
    }
}

/// A reply tunnel `T_r` (§4): a pre-built onion the initiator ships inside
/// its request, which the responder then sends back through. The innermost
/// layer names `bid` — an identifier whose root is the initiator — and a
/// `fakeonion` "introduced to confuse the last hop in T_r".
#[derive(Debug, Clone)]
pub struct ReplyTunnel {
    /// The first reply hop's id (`hid_1'` — the responder hands the reply
    /// to this hop's node).
    pub entry_hopid: Id,
    /// The layered reply onion, as handed to the first reply hop.
    pub onion: Vec<u8>,
    /// The identifier whose root is the initiator (remembered so the
    /// initiator can recognise its own replies; never revealed before the
    /// last layer is peeled).
    pub bid: Id,
}

impl ReplyTunnel {
    /// Build a reply tunnel over `tunnel`, terminating at `bid`.
    ///
    /// The caller guarantees the initiator is the live node numerically
    /// closest to `bid` (see `TapSystem::choose_bid`). `fakeonion_len`
    /// random bytes masquerade as a deeper onion so the true tail cannot
    /// tell it is last.
    pub fn build<R: Rng + ?Sized>(
        rng: &mut R,
        tunnel: &Tunnel,
        bid: Id,
        fakeonion_len: usize,
        hints: Option<&HintCache>,
    ) -> ReplyTunnel {
        let hops = tunnel.hops();
        let layers: Vec<_> = hops
            .iter()
            .enumerate()
            .map(|(i, hop)| {
                let next = if i + 1 < hops.len() {
                    hops[i + 1].hopid
                } else {
                    bid
                };
                let header = HopHeader::Forward {
                    next_hop: next,
                    hint: hints.and_then(|h| h.lookup(next)),
                };
                (hop.key, header.encode())
            })
            .collect();
        let mut fakeonion = vec![0u8; fakeonion_len];
        rng.fill(&mut fakeonion[..]);
        ReplyTunnel {
            entry_hopid: tunnel.entry_hopid(),
            onion: tap_crypto::onion::wrap(rng, &layers, &fakeonion),
            bid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tha::ThaFactory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tap_crypto::onion;

    fn pool(n: usize, seed: u64) -> (Vec<ThaSecret>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let node = Id::random(&mut rng);
        let mut f = ThaFactory::new(&mut rng, node);
        let pool = (0..n).map(|_| f.next(&mut rng)).collect();
        (pool, rng)
    }

    #[test]
    fn form_scattered_prefers_distinct_digits() {
        let (p, mut rng) = pool(64, 1);
        let t = Tunnel::form_scattered(&mut rng, &p, 5, 4).unwrap();
        assert_eq!(t.len(), 5);
        // With 64 random anchors all 5 first digits are almost surely
        // available; the scatter rule must use them.
        assert_eq!(
            t.scatter_score(4),
            5,
            "hops should have distinct first digits"
        );
    }

    #[test]
    fn form_scattered_falls_back_when_pool_lacks_diversity() {
        // Anchors all in the same first-digit bucket: scatter is
        // impossible, but the tunnel must still form.
        let (p, mut rng) = pool(200, 2);
        let same: Vec<ThaSecret> = p
            .into_iter()
            .filter(|s| s.hopid.digit(0, 4) == 0x7)
            .collect();
        if same.len() >= 3 {
            let t = Tunnel::form_scattered(&mut rng, &same, 3, 4).unwrap();
            assert_eq!(t.len(), 3);
            assert_eq!(t.scatter_score(4), 1);
        }
    }

    #[test]
    fn form_scattered_requires_enough_anchors() {
        let (p, mut rng) = pool(2, 3);
        assert!(Tunnel::form_scattered(&mut rng, &p, 3, 4).is_none());
        assert!(Tunnel::form_scattered(&mut rng, &p, 0, 4).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate hopid")]
    fn duplicate_hops_rejected() {
        let (p, _) = pool(1, 4);
        Tunnel::new(vec![p[0].clone(), p[0].clone()]);
    }

    #[test]
    fn forward_onion_matches_fig1_structure() {
        let (p, mut rng) = pool(3, 5);
        let t = Tunnel::new(p.clone());
        let dest = Destination::Node(Id::from_u64(99));
        let onion_bytes = t.build_onion(&mut rng, dest, b"m", None);

        // Peel as each hop would.
        let keys: Vec<_> = p.iter().map(|h| h.key).collect();
        let l1 = onion::peel(&keys[0], &onion_bytes).unwrap();
        assert_eq!(
            HopHeader::decode(&l1.header).unwrap(),
            HopHeader::Forward {
                next_hop: p[1].hopid,
                hint: None
            }
        );
        let l2 = onion::peel(&keys[1], &l1.inner).unwrap();
        assert_eq!(
            HopHeader::decode(&l2.header).unwrap(),
            HopHeader::Forward {
                next_hop: p[2].hopid,
                hint: None
            }
        );
        let l3 = onion::peel(&keys[2], &l2.inner).unwrap();
        assert_eq!(
            HopHeader::decode(&l3.header).unwrap(),
            HopHeader::Deliver { dest }
        );
        assert_eq!(l3.inner, b"m");
    }

    #[test]
    fn hinted_onion_carries_hints() {
        let (p, mut rng) = pool(2, 6);
        let t = Tunnel::new(p.clone());
        let mut hints = HintCache::default();
        let node = Id::from_u64(1234);
        hints.record(p[1].hopid, node);
        let onion_bytes = t.build_onion(
            &mut rng,
            Destination::Node(Id::from_u64(9)),
            b"x",
            Some(&hints),
        );
        let l1 = onion::peel(&p[0].key, &onion_bytes).unwrap();
        assert_eq!(
            HopHeader::decode(&l1.header).unwrap(),
            HopHeader::Forward {
                next_hop: p[1].hopid,
                hint: Some(node)
            }
        );
    }

    #[test]
    fn reply_tunnel_terminates_at_bid() {
        let (p, mut rng) = pool(3, 7);
        let t = Tunnel::new(p.clone());
        let bid = Id::from_u64(4242);
        let rt = ReplyTunnel::build(&mut rng, &t, bid, 64, None);
        assert_eq!(rt.entry_hopid, p[0].hopid);

        let l1 = onion::peel(&p[0].key, &rt.onion).unwrap();
        let l2 = onion::peel(&p[1].key, &l1.inner).unwrap();
        let l3 = onion::peel(&p[2].key, &l2.inner).unwrap();
        assert_eq!(
            HopHeader::decode(&l3.header).unwrap(),
            HopHeader::Forward {
                next_hop: bid,
                hint: None
            }
        );
        assert_eq!(l3.inner.len(), 64, "fakeonion travels as the residue");
    }

    #[test]
    fn reply_and_forward_layers_are_indistinguishable_in_size_shape() {
        // The tail of a reply tunnel must not be able to tell it is last:
        // its peeled layer has the same header kind and a non-empty inner
        // blob, exactly like a middle hop's.
        let (p, mut rng) = pool(3, 8);
        let t = Tunnel::new(p.clone());
        let rt = ReplyTunnel::build(&mut rng, &t, Id::from_u64(1), 200, None);
        let l1 = onion::peel(&p[0].key, &rt.onion).unwrap();
        let l2 = onion::peel(&p[1].key, &l1.inner).unwrap();
        let l3 = onion::peel(&p[2].key, &l2.inner).unwrap();
        let h2 = HopHeader::decode(&l2.header).unwrap();
        let h3 = HopHeader::decode(&l3.header).unwrap();
        assert!(matches!(h2, HopHeader::Forward { .. }));
        assert!(
            matches!(h3, HopHeader::Forward { .. }),
            "tail looks like a middle hop"
        );
        assert!(!l3.inner.is_empty());
    }
}
