//! "Current tunneling": the fixed-node baseline TAP is measured against.
//!
//! In Crowds/Tarzan/MorphMix-style systems an anonymous path is a sequence
//! of *specific nodes*; each relay knows its successor by address and holds
//! a session key. The paper's Figure 2 baseline is exactly this: "a path
//! fails if one of its mixes leaves the system" (§1). The layered crypto is
//! identical to TAP's — only the naming of hops differs (node identity vs.
//! hopid), which is the entire point of the comparison.

use rand::Rng;
use tap_crypto::{onion, SymmetricKey};
use tap_id::Id;
use tap_pastry::Overlay;

use crate::wire::{Destination, HopHeader};

/// A fixed-node tunnel: the baseline's path of specific relays.
#[derive(Debug, Clone)]
pub struct FixedTunnel {
    relays: Vec<(Id, SymmetricKey)>,
}

/// Why a fixed tunnel could not carry a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixedTunnelError {
    /// A relay on the path has left/failed; the tunnel is dead.
    RelayDown {
        /// The failed relay.
        node: Id,
    },
    /// A layer failed to open (tampering).
    BadLayer {
        /// The relay whose layer failed.
        node: Id,
    },
    /// The final destination is dead.
    DeadDestination {
        /// The dead destination node.
        node: Id,
    },
}

impl std::fmt::Display for FixedTunnelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FixedTunnelError::RelayDown { node } => write!(f, "relay {node:?} is down"),
            FixedTunnelError::BadLayer { node } => write!(f, "bad layer at {node:?}"),
            FixedTunnelError::DeadDestination { node } => {
                write!(f, "destination {node:?} is dead")
            }
        }
    }
}

impl std::error::Error for FixedTunnelError {}

impl FixedTunnel {
    /// Build a tunnel through `l` distinct random live relays, excluding
    /// `initiator`. Each relay gets a fresh session key (established
    /// out-of-band in the baseline systems; we just mint it).
    pub fn form_random<R: Rng + ?Sized>(
        rng: &mut R,
        overlay: &Overlay,
        initiator: Id,
        l: usize,
    ) -> Option<FixedTunnel> {
        if overlay.len() <= l {
            return None;
        }
        let mut relays = Vec::with_capacity(l);
        let mut used = std::collections::HashSet::new();
        used.insert(initiator);
        while relays.len() < l {
            let n = overlay.random_node(rng)?;
            if used.insert(n) {
                relays.push((n, SymmetricKey::generate(rng)));
            }
        }
        Some(FixedTunnel { relays })
    }

    /// The relay node ids, in path order.
    pub fn relay_ids(&self) -> Vec<Id> {
        self.relays.iter().map(|(n, _)| *n).collect()
    }

    /// Tunnel length.
    pub fn len(&self) -> usize {
        self.relays.len()
    }

    /// Fixed tunnels are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether every relay is still alive — the baseline's fragility in one
    /// line: this is an AND over `l` node lifetimes.
    pub fn intact(&self, overlay: &Overlay) -> bool {
        self.relays.iter().all(|(n, _)| overlay.is_live(*n))
    }

    /// Build the layered onion for `core` to `dest` (headers name the next
    /// *node*, not a hopid — encoded in the same header format with the
    /// node id in the `next_hop` position).
    pub fn build_onion<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        dest: Destination,
        core: &[u8],
    ) -> Vec<u8> {
        let layers: Vec<_> = self
            .relays
            .iter()
            .enumerate()
            .map(|(i, (_, key))| {
                let header = if i + 1 < self.relays.len() {
                    HopHeader::Forward {
                        next_hop: self.relays[i + 1].0,
                        hint: None,
                    }
                } else {
                    HopHeader::Deliver { dest }
                };
                (*key, header.encode())
            })
            .collect();
        onion::wrap(rng, &layers, core)
    }

    /// Carry a message through the tunnel. Fails the moment any relay is
    /// dead — no failover exists in the baseline.
    pub fn drive(
        &self,
        overlay: &Overlay,
        onion_bytes: Vec<u8>,
    ) -> Result<(Id, Vec<u8>), FixedTunnelError> {
        let mut cursor = onion_bytes;
        for (i, (node, key)) in self.relays.iter().enumerate() {
            if !overlay.is_live(*node) {
                return Err(FixedTunnelError::RelayDown { node: *node });
            }
            let layer = onion::peel(key, &cursor)
                .map_err(|_| FixedTunnelError::BadLayer { node: *node })?;
            let header = HopHeader::decode(&layer.header)
                .map_err(|_| FixedTunnelError::BadLayer { node: *node })?;
            cursor = layer.inner;
            match header {
                HopHeader::Forward { next_hop, .. } => {
                    debug_assert_eq!(next_hop, self.relays[i + 1].0);
                }
                HopHeader::Deliver { dest } => {
                    let d = match dest {
                        Destination::Node(n) => n,
                        Destination::KeyRoot(k) => {
                            // The baseline has no DHT semantics of its own;
                            // resolve via the same oracle.
                            overlay
                                .owner_of(k)
                                .ok_or(FixedTunnelError::DeadDestination { node: k })?
                        }
                    };
                    if !overlay.is_live(d) {
                        return Err(FixedTunnelError::DeadDestination { node: d });
                    }
                    return Ok((d, cursor));
                }
            }
        }
        unreachable!("the innermost layer always carries a Deliver header")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tap_pastry::PastryConfig;

    fn fixture(n: usize, seed: u64) -> (Overlay, StdRng, Id) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ov = Overlay::new(PastryConfig::paper_defaults());
        for _ in 0..n {
            ov.add_random_node(&mut rng);
        }
        let init = ov.random_node(&mut rng).unwrap();
        (ov, rng, init)
    }

    #[test]
    fn intact_tunnel_delivers() {
        let (ov, mut rng, init) = fixture(100, 1);
        let t = FixedTunnel::form_random(&mut rng, &ov, init, 5).unwrap();
        assert!(t.intact(&ov));
        let dest = ov.random_node(&mut rng).unwrap();
        let onion = t.build_onion(&mut rng, Destination::Node(dest), b"payload");
        let (node, core) = t.drive(&ov, onion).unwrap();
        assert_eq!(node, dest);
        assert_eq!(core, b"payload");
    }

    #[test]
    fn single_relay_failure_kills_tunnel() {
        let (mut ov, mut rng, init) = fixture(100, 2);
        let t = FixedTunnel::form_random(&mut rng, &ov, init, 5).unwrap();
        let victim = t.relay_ids()[2];
        ov.remove_node(victim);
        assert!(!t.intact(&ov));
        let dest = loop {
            let d = ov.random_node(&mut rng).unwrap();
            if d != victim {
                break d;
            }
        };
        let onion = t.build_onion(&mut rng, Destination::Node(dest), b"x");
        assert_eq!(
            t.drive(&ov, onion),
            Err(FixedTunnelError::RelayDown { node: victim })
        );
    }

    #[test]
    fn relays_are_distinct_and_exclude_initiator() {
        let (ov, mut rng, init) = fixture(50, 3);
        for _ in 0..20 {
            let t = FixedTunnel::form_random(&mut rng, &ov, init, 5).unwrap();
            let ids = t.relay_ids();
            let set: std::collections::HashSet<_> = ids.iter().collect();
            assert_eq!(set.len(), 5);
            assert!(!ids.contains(&init));
        }
    }

    #[test]
    fn overlay_too_small_for_tunnel() {
        let (ov, mut rng, init) = fixture(3, 4);
        assert!(FixedTunnel::form_random(&mut rng, &ov, init, 5).is_none());
    }

    #[test]
    fn failure_probability_matches_closed_form() {
        // P(tunnel dies) = 1 - (1-p)^l for independent relay failures —
        // the analytic curve behind the Fig. 2 baseline.
        let (mut ov, mut rng, init) = fixture(1000, 5);
        let tunnels: Vec<_> = (0..400)
            .map(|_| FixedTunnel::form_random(&mut rng, &ov, init, 5).unwrap())
            .collect();
        // Fail 20% of nodes (sparing the initiator for simplicity).
        let ids: Vec<Id> = ov.ids().filter(|i| *i != init).collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 5 == 0 {
                ov.remove_node(*id);
            }
        }
        let dead = tunnels.iter().filter(|t| !t.intact(&ov)).count();
        let rate = dead as f64 / tunnels.len() as f64;
        let expect = 1.0 - 0.8f64.powi(5); // ≈ 0.672
        assert!(
            (rate - expect).abs() < 0.12,
            "empirical {rate:.3} vs analytic {expect:.3}"
        );
    }
}
