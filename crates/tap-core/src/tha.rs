//! Tunnel Hop Anchors (§3.1–§3.2).
//!
//! A THA `<hopid, K, H(PW)>` anchors one tunnel hop in the system. The
//! `hopid` doubles as the DHT key under which the anchor is replicated;
//! `K` is the hop's symmetric key; `H(PW)` commits to a password so that
//! only the owner (who knows `PW`) can delete the anchor later.
//!
//! Generation must be collision-free *and* unlinkable: `hopid =
//! H(node_ID, hkey, t)` where `hkey` is a per-node secret and `t` a
//! creation timestamp/counter — without `hkey`, nobody can recompute the
//! hash for each known node and link a hopid back to its creator.

use rand::Rng;
use tap_crypto::sha256::sha256;
use tap_crypto::{derive_id, SymmetricKey};
use tap_id::{ArcRange, Id};

/// The owner's view of an anchor: includes the deletion password.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThaSecret {
    /// The hop identifier (and DHT key).
    pub hopid: Id,
    /// The hop's symmetric key `K`.
    pub key: SymmetricKey,
    /// The deletion password `PW` (kept only by the owner).
    pub password: [u8; 32],
}

/// The stored (public-to-holders) form: `<hopid, K, H(PW)>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tha {
    /// The hop identifier.
    pub hopid: Id,
    /// The hop's symmetric key `K` — holders need it to peel layers.
    pub key: SymmetricKey,
    /// `H(PW)`: the hash of the owner's deletion password.
    pub pw_hash: [u8; 32],
}

impl ThaSecret {
    /// The replica-holder form of this anchor.
    pub fn stored(&self) -> Tha {
        Tha {
            hopid: self.hopid,
            key: self.key,
            pw_hash: sha256(&self.password),
        }
    }
}

impl Tha {
    /// Verify a presented deletion password against the stored commitment.
    ///
    /// The holders "hash the received PW, compare the hash value with the
    /// stored H(PW), and if they match, remove the THA" (§3.4).
    pub fn verify_password(&self, pw: &[u8; 32]) -> bool {
        tap_crypto::hmac::verify_tag(&sha256(pw), &self.pw_hash)
    }
}

/// Per-node THA generator implementing the §3.2 construction.
#[derive(Debug, Clone)]
pub struct ThaFactory {
    node_id: Id,
    hkey: [u8; 32],
    /// Monotone creation counter standing in for the timestamp `t`; the
    /// paper only needs `t` to make successive hopids distinct.
    t: u64,
}

impl ThaFactory {
    /// A factory for `node_id` with a fresh random `hkey`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, node_id: Id) -> Self {
        let mut hkey = [0u8; 32];
        rng.fill(&mut hkey[..]);
        ThaFactory {
            node_id,
            hkey,
            t: 0,
        }
    }

    /// Deterministic factory for tests.
    pub fn with_hkey(node_id: Id, hkey: [u8; 32]) -> Self {
        ThaFactory {
            node_id,
            hkey,
            t: 0,
        }
    }

    /// The hopid the factory would produce at counter value `t`.
    pub fn hopid_at(&self, t: u64) -> Id {
        derive_id(&[self.node_id.as_bytes(), &self.hkey, &t.to_be_bytes()])
    }

    /// Generate the next anchor: `hopid = H(node_ID, hkey, t)` plus a
    /// random key and password (§3.2).
    pub fn next<R: Rng + ?Sized>(&mut self, rng: &mut R) -> ThaSecret {
        let hopid = self.hopid_at(self.t);
        self.t += 1;
        let mut password = [0u8; 32];
        rng.fill(&mut password[..]);
        ThaSecret {
            hopid,
            key: SymmetricKey::generate(rng),
            password,
        }
    }

    /// Generate the next anchor whose hopid falls inside `bucket`, by
    /// advancing `t` until the hash lands there. Supports the scattered
    /// hop-selection rule (§3.5: hopids "with different hopid's prefixes")
    /// while preserving the node-specific hash construction.
    pub fn next_in<R: Rng + ?Sized>(&mut self, rng: &mut R, bucket: &ArcRange) -> ThaSecret {
        loop {
            let candidate = self.hopid_at(self.t);
            if bucket.contains(candidate) {
                return self.next(rng);
            }
            self.t += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn factory(seed: u64) -> (ThaFactory, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let node = Id::random(&mut rng);
        (ThaFactory::new(&mut rng, node), rng)
    }

    #[test]
    fn hopids_are_distinct_per_t() {
        let (mut f, mut rng) = factory(1);
        let a = f.next(&mut rng);
        let b = f.next(&mut rng);
        assert_ne!(a.hopid, b.hopid);
        assert_ne!(a.key, b.key);
        assert_ne!(a.password, b.password);
    }

    #[test]
    fn hopid_depends_on_hkey_and_node() {
        let mut rng = StdRng::seed_from_u64(2);
        let node = Id::random(&mut rng);
        let f1 = ThaFactory::with_hkey(node, [1u8; 32]);
        let f2 = ThaFactory::with_hkey(node, [2u8; 32]);
        assert_ne!(
            f1.hopid_at(0),
            f2.hopid_at(0),
            "without hkey a hopid would be linkable by recomputation"
        );
        let other = Id::random(&mut rng);
        let f3 = ThaFactory::with_hkey(other, [1u8; 32]);
        assert_ne!(f1.hopid_at(0), f3.hopid_at(0));
    }

    #[test]
    fn password_verification() {
        let (mut f, mut rng) = factory(3);
        let secret = f.next(&mut rng);
        let stored = secret.stored();
        assert!(stored.verify_password(&secret.password));
        let mut wrong = secret.password;
        wrong[0] ^= 1;
        assert!(!stored.verify_password(&wrong));
    }

    #[test]
    fn stored_form_hides_password() {
        let (mut f, mut rng) = factory(4);
        let secret = f.next(&mut rng);
        let stored = secret.stored();
        // The stored form carries only the hash.
        assert_eq!(stored.pw_hash, sha256(&secret.password));
        assert_ne!(stored.pw_hash[..], secret.password[..]);
    }

    #[test]
    fn next_in_lands_in_bucket() {
        let (mut f, mut rng) = factory(5);
        for digit in 0..16u8 {
            let repr = Id::ZERO.with_digit(0, 4, digit);
            let bucket = ArcRange::prefix_bucket(repr, 1, 4);
            let s = f.next_in(&mut rng, &bucket);
            assert!(bucket.contains(s.hopid), "digit {digit}");
            assert_eq!(s.hopid.digit(0, 4), digit);
        }
    }

    #[test]
    fn factories_are_mutually_collision_free() {
        // Distinct nodes generating many THAs never collide (§3.2's goal).
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            let node = Id::random(&mut rng);
            let mut f = ThaFactory::new(&mut rng, node);
            for _ in 0..50 {
                assert!(seen.insert(f.next(&mut rng).hopid));
            }
        }
    }
}
