//! Anonymous messaging with reply blocks — the paper's e-mail scenario.
//!
//! §1 motivates TAP with "anonymous email systems: current tunneling
//! techniques may fail to route the reply back to the sender due to node
//! failures along the tunnel, while TAP can route the reply back to the
//! sender thanks to its robustness (… by using a reply tunnel T_r)."
//!
//! The asynchronous shape matters: unlike §4's file retrieval, the reply
//! here happens *later* — the recipient holds the reply block while nodes
//! churn, and the block must still work. A reply block is exactly a
//! [`ReplyTunnel`] plus a one-shot public key:
//!
//! * the sender mints a fresh keypair `K_I` and a reply tunnel ending at a
//!   `bid` it owns;
//! * the message travels through a forward tunnel; the recipient learns
//!   the plaintext, `K_I`'s public half, and the reply block — nothing
//!   about the sender;
//! * any time later, the recipient encrypts its answer to `K_I` and sends
//!   it down the reply block; TAP's replica failover keeps the block alive
//!   through the churn in between.

use rand::Rng;

use tap_crypto::{KeyPair, PublicKey, SealedBox};
use tap_id::{Id, ID_BYTES};
use tap_pastry::storage::ReplicaStore;
use tap_pastry::KeyRouter;

use crate::tha::Tha;
use crate::transit::{self, Delivery, TransitError, TransitOptions};
use crate::tunnel::{ReplyTunnel, Tunnel};
use crate::wire::Destination;

/// What a sender keeps to receive the answer.
#[derive(Debug)]
pub struct PendingReply {
    /// The one-shot keypair whose public half travelled with the message.
    keypair: KeyPair,
    /// The identifier the reply terminates at (the sender is its root).
    pub bid: Id,
}

/// What a recipient holds after receiving an anonymous message.
#[derive(Debug, Clone)]
pub struct ReplyBlock {
    /// Where to inject the reply.
    pub entry_hopid: Id,
    /// The layered reply onion.
    pub onion: Vec<u8>,
    /// Encrypt the answer to this key.
    pub reply_key: PublicKey,
}

/// A received anonymous message.
#[derive(Debug, Clone)]
pub struct ReceivedMessage {
    /// The plaintext body.
    pub body: Vec<u8>,
    /// The block with which to answer.
    pub reply_block: ReplyBlock,
}

/// Messaging errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessagingError {
    /// The forward tunnel failed.
    Forward(TransitError),
    /// The reply block's tunnel failed.
    Reply(TransitError),
    /// Message bytes did not parse.
    Malformed,
    /// The reply landed somewhere other than the sender.
    Misdelivered {
        /// Where it landed instead.
        node: Id,
    },
}

impl std::fmt::Display for MessagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessagingError::Forward(e) => write!(f, "forward tunnel failed: {e}"),
            MessagingError::Reply(e) => write!(f, "reply block failed: {e}"),
            MessagingError::Malformed => write!(f, "message malformed"),
            MessagingError::Misdelivered { node } => {
                write!(f, "reply landed at {node:?}")
            }
        }
    }
}

impl std::error::Error for MessagingError {}

fn encode_message(body: &[u8], entry: Id, onion: &[u8], key: &PublicKey) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + onion.len() + ID_BYTES + 40);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(entry.as_bytes());
    out.extend_from_slice(&key.0);
    out.extend_from_slice(&(onion.len() as u32).to_be_bytes());
    out.extend_from_slice(onion);
    out
}

fn decode_message(bytes: &[u8]) -> Option<ReceivedMessage> {
    let (len_b, rest) = bytes.split_at_checked(4)?;
    let blen = u32::from_be_bytes([len_b[0], len_b[1], len_b[2], len_b[3]]) as usize;
    let (body, rest) = rest.split_at_checked(blen)?;
    let (entry_b, rest) = rest.split_at_checked(ID_BYTES)?;
    let (key_b, rest) = rest.split_at_checked(32)?;
    let (len_b, rest) = rest.split_at_checked(4)?;
    let olen = u32::from_be_bytes([len_b[0], len_b[1], len_b[2], len_b[3]]) as usize;
    (rest.len() == olen).then(|| ReceivedMessage {
        body: body.to_vec(),
        reply_block: ReplyBlock {
            entry_hopid: Id::from_bytes(entry_b.try_into().expect("sized")),
            onion: rest.to_vec(),
            reply_key: PublicKey(key_b.try_into().expect("sized")),
        },
    })
}

/// Send `body` anonymously from `sender` to `recipient` through `fwd`,
/// attaching a reply block built over `rev` terminating at `bid`.
///
/// Returns the recipient-side view plus the sender's [`PendingReply`].
#[allow(clippy::too_many_arguments)]
pub fn send_with_reply_block<R: Rng + ?Sized>(
    rng: &mut R,
    overlay: &mut impl KeyRouter,
    thas: &ReplicaStore<Tha>,
    sender: Id,
    recipient: Id,
    body: &[u8],
    fwd: &Tunnel,
    rev: &Tunnel,
    bid: Id,
) -> Result<(Id, ReceivedMessage, PendingReply), MessagingError> {
    let keypair = KeyPair::generate(rng);
    let reply_tunnel = ReplyTunnel::build(rng, rev, bid, 96, None);
    let payload = encode_message(
        body,
        reply_tunnel.entry_hopid,
        &reply_tunnel.onion,
        &keypair.public(),
    );
    let onion = fwd.build_onion(rng, Destination::Node(recipient), &payload, None);
    let (delivery, _) = transit::drive(
        overlay,
        thas,
        sender,
        fwd.entry_hopid(),
        onion,
        TransitOptions::default(),
    )
    .map_err(MessagingError::Forward)?;
    let (node, core) = match delivery {
        Delivery::ToDestination { node, core } => (node, core),
        Delivery::AtAnchorlessRoot { .. } => return Err(MessagingError::Malformed),
    };
    let received = decode_message(&core).ok_or(MessagingError::Malformed)?;
    Ok((node, received, PendingReply { keypair, bid }))
}

/// The recipient answers through the reply block (possibly much later).
/// Returns the node the answer surfaced at and the sealed answer, exactly
/// as the sender's node receives them.
pub fn reply<R: Rng + ?Sized>(
    rng: &mut R,
    overlay: &mut impl KeyRouter,
    thas: &ReplicaStore<Tha>,
    responder: Id,
    block: &ReplyBlock,
    answer: &[u8],
) -> Result<(Id, SealedBox), MessagingError> {
    let sealed = SealedBox::seal(rng, &block.reply_key, answer);
    let (delivery, _) = transit::drive(
        overlay,
        thas,
        responder,
        block.entry_hopid,
        block.onion.clone(),
        TransitOptions::default(),
    )
    .map_err(MessagingError::Reply)?;
    match delivery {
        Delivery::AtAnchorlessRoot { node, .. } => Ok((node, sealed)),
        Delivery::ToDestination { node, .. } => Err(MessagingError::Misdelivered { node }),
    }
}

impl PendingReply {
    /// Open a sealed answer that surfaced at the sender's node.
    pub fn open(
        &self,
        landed_at: Id,
        expected_self: Id,
        sealed: &SealedBox,
    ) -> Result<Vec<u8>, MessagingError> {
        if landed_at != expected_self {
            return Err(MessagingError::Misdelivered { node: landed_at });
        }
        self.keypair
            .open(sealed)
            .map_err(|_| MessagingError::Malformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tha::ThaFactory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tap_pastry::{Overlay, PastryConfig};

    struct Fx {
        overlay: Overlay,
        thas: ReplicaStore<Tha>,
        rng: StdRng,
        sender: Id,
    }

    fn fixture(n: usize, seed: u64) -> Fx {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = Overlay::new(PastryConfig::paper_defaults());
        for _ in 0..n {
            overlay.add_random_node(&mut rng);
        }
        let sender = overlay.random_node(&mut rng).unwrap();
        Fx {
            overlay,
            thas: ReplicaStore::new(3),
            rng,
            sender,
        }
    }

    fn tunnel(fx: &mut Fx, l: usize) -> Tunnel {
        let mut f = ThaFactory::new(&mut fx.rng, fx.sender);
        let mut hops = Vec::new();
        while hops.len() < l {
            let s = f.next(&mut fx.rng);
            if fx.thas.insert(&fx.overlay, s.hopid, s.stored()).unwrap() {
                hops.push(s);
            }
        }
        Tunnel::new(hops)
    }

    #[test]
    fn anonymous_round_trip() {
        let mut fx = fixture(200, 1);
        let fwd = tunnel(&mut fx, 3);
        let rev = tunnel(&mut fx, 3);
        let bid = fx.sender.wrapping_add(Id::from_u64(1));
        let recipient = loop {
            let r = fx.overlay.random_node(&mut fx.rng).unwrap();
            if r != fx.sender {
                break r;
            }
        };
        let (node, received, pending) = send_with_reply_block(
            &mut fx.rng,
            &mut fx.overlay,
            &fx.thas,
            fx.sender,
            recipient,
            b"hello, whoever you are",
            &fwd,
            &rev,
            bid,
        )
        .unwrap();
        assert_eq!(node, recipient);
        assert_eq!(received.body, b"hello, whoever you are");

        let (landed, sealed) = reply(
            &mut fx.rng,
            &mut fx.overlay,
            &fx.thas,
            recipient,
            &received.reply_block,
            b"hello back, stranger",
        )
        .unwrap();
        let answer = pending.open(landed, fx.sender, &sealed).unwrap();
        assert_eq!(answer, b"hello back, stranger");
    }

    #[test]
    fn reply_block_survives_churn_between_send_and_reply() {
        // The asynchronous-email property: nodes churn between delivery
        // and answer, including reply-tunnel hop nodes, and the block
        // still routes home.
        let mut fx = fixture(300, 2);
        let fwd = tunnel(&mut fx, 3);
        let rev = tunnel(&mut fx, 3);
        let bid = fx.sender.wrapping_add(Id::from_u64(1));
        let recipient = loop {
            let r = fx.overlay.random_node(&mut fx.rng).unwrap();
            if r != fx.sender {
                break r;
            }
        };
        let (_, received, pending) = send_with_reply_block(
            &mut fx.rng,
            &mut fx.overlay,
            &fx.thas,
            fx.sender,
            recipient,
            b"write back whenever",
            &fwd,
            &rev,
            bid,
        )
        .unwrap();

        // Kill every *current* hop node of the reply tunnel (with replica
        // repair, as PAST provides).
        for hop in rev.hop_ids() {
            let root = fx.overlay.owner_of(hop).unwrap();
            if root != fx.sender && root != recipient && fx.overlay.is_live(root) {
                fx.overlay.remove_node(root);
                fx.thas.on_node_removed(&fx.overlay, root);
            }
        }

        let (landed, sealed) = reply(
            &mut fx.rng,
            &mut fx.overlay,
            &fx.thas,
            recipient,
            &received.reply_block,
            b"took a while",
        )
        .unwrap();
        assert_eq!(
            pending.open(landed, fx.sender, &sealed).unwrap(),
            b"took a while"
        );
    }

    #[test]
    fn recipient_cannot_read_other_replies() {
        // The reply key is one-shot: a different keypair cannot open the
        // sealed answer (unlinkability across conversations).
        let mut fx = fixture(150, 3);
        let fwd = tunnel(&mut fx, 3);
        let rev = tunnel(&mut fx, 3);
        let bid = fx.sender.wrapping_add(Id::from_u64(1));
        let recipient = loop {
            let r = fx.overlay.random_node(&mut fx.rng).unwrap();
            if r != fx.sender {
                break r;
            }
        };
        let (_, received, _pending) = send_with_reply_block(
            &mut fx.rng,
            &mut fx.overlay,
            &fx.thas,
            fx.sender,
            recipient,
            b"msg",
            &fwd,
            &rev,
            bid,
        )
        .unwrap();
        let (_, sealed) = reply(
            &mut fx.rng,
            &mut fx.overlay,
            &fx.thas,
            recipient,
            &received.reply_block,
            b"secret answer",
        )
        .unwrap();
        let other = KeyPair::generate(&mut fx.rng);
        assert!(other.open(&sealed).is_err());
    }

    #[test]
    fn malformed_message_rejected() {
        assert!(decode_message(b"").is_none());
        assert!(decode_message(&[0, 0, 0, 99, 1, 2]).is_none());
        // Trailing garbage rejected.
        let mut ok = encode_message(b"x", Id::from_u64(1), b"onion", &PublicKey([9; 32]));
        let parsed = decode_message(&ok).unwrap();
        assert_eq!(parsed.body, b"x");
        ok.push(0);
        assert!(decode_message(&ok).is_none());
    }

    #[test]
    fn misdelivery_detected_by_sender() {
        let mut fx = fixture(100, 4);
        let pending = PendingReply {
            keypair: KeyPair::generate(&mut fx.rng),
            bid: Id::from_u64(1),
        };
        let sealed = SealedBox::seal(&mut fx.rng, &pending.keypair.public(), b"x");
        let err = pending
            .open(Id::from_u64(42), Id::from_u64(43), &sealed)
            .unwrap_err();
        assert_eq!(
            err,
            MessagingError::Misdelivered {
                node: Id::from_u64(42)
            }
        );
    }
}
