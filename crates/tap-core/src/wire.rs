//! Per-hop routing headers carried inside onion layers.
//!
//! Each peeled layer reveals exactly one [`HopHeader`]: either "forward the
//! remaining onion to the hop anchored at `next_hop`" (optionally with a
//! cached address hint, §5) or "you are the tail — deliver the core to this
//! destination" (§2, Fig. 1: the tail node relays `m` to `D`).
//!
//! The encoding is a tiny hand-rolled tag-length format: the simulator
//! moves millions of layers, and the format doubles as the wire-size model
//! for the bandwidth simulation, so it is kept byte-exact and dependency
//! free.

use tap_id::{Id, ID_BYTES};

/// Where the tail hop should deliver the core payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// A specific node (the paper's destination server `D`).
    Node(Id),
    /// The root of a DHT key (PAST-style: "the node whose nodeid is
    /// numerically closest to the fileid").
    KeyRoot(Id),
}

/// The routing header revealed to one tunnel hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopHeader {
    /// Forward the inner onion to the tunnel hop node of `next_hop`.
    Forward {
        /// The next tunnel hop's hopid.
        next_hop: Id,
        /// The §5 optimization: the cached identity of the node believed to
        /// currently serve `next_hop`. Stale hints fall back to routing.
        hint: Option<Id>,
    },
    /// This hop is the tail: deliver the core payload.
    Deliver {
        /// Final destination of the core payload.
        dest: Destination,
    },
}

const TAG_FORWARD: u8 = 1;
const TAG_FORWARD_HINTED: u8 = 2;
const TAG_DELIVER_NODE: u8 = 3;
const TAG_DELIVER_KEY: u8 = 4;

/// Header decode failure (malformed or truncated bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderError;

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed hop header")
    }
}

impl std::error::Error for HeaderError {}

impl HopHeader {
    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            HopHeader::Forward {
                next_hop,
                hint: None,
            } => {
                let mut out = Vec::with_capacity(1 + ID_BYTES);
                out.push(TAG_FORWARD);
                out.extend_from_slice(next_hop.as_bytes());
                out
            }
            HopHeader::Forward {
                next_hop,
                hint: Some(h),
            } => {
                let mut out = Vec::with_capacity(1 + 2 * ID_BYTES);
                out.push(TAG_FORWARD_HINTED);
                out.extend_from_slice(next_hop.as_bytes());
                out.extend_from_slice(h.as_bytes());
                out
            }
            HopHeader::Deliver { dest } => {
                let (tag, id) = match dest {
                    Destination::Node(id) => (TAG_DELIVER_NODE, id),
                    Destination::KeyRoot(id) => (TAG_DELIVER_KEY, id),
                };
                let mut out = Vec::with_capacity(1 + ID_BYTES);
                out.push(tag);
                out.extend_from_slice(id.as_bytes());
                out
            }
        }
    }

    /// Parse from bytes.
    pub fn decode(bytes: &[u8]) -> Result<HopHeader, HeaderError> {
        let (&tag, rest) = bytes.split_first().ok_or(HeaderError)?;
        let take_id = |off: usize| -> Result<Id, HeaderError> {
            let s = rest.get(off..off + ID_BYTES).ok_or(HeaderError)?;
            let mut b = [0u8; ID_BYTES];
            b.copy_from_slice(s);
            Ok(Id::from_bytes(b))
        };
        let want_len = |n: usize| -> Result<(), HeaderError> {
            if rest.len() == n {
                Ok(())
            } else {
                Err(HeaderError)
            }
        };
        match tag {
            TAG_FORWARD => {
                want_len(ID_BYTES)?;
                Ok(HopHeader::Forward {
                    next_hop: take_id(0)?,
                    hint: None,
                })
            }
            TAG_FORWARD_HINTED => {
                want_len(2 * ID_BYTES)?;
                Ok(HopHeader::Forward {
                    next_hop: take_id(0)?,
                    hint: Some(take_id(ID_BYTES)?),
                })
            }
            TAG_DELIVER_NODE => {
                want_len(ID_BYTES)?;
                Ok(HopHeader::Deliver {
                    dest: Destination::Node(take_id(0)?),
                })
            }
            TAG_DELIVER_KEY => {
                want_len(ID_BYTES)?;
                Ok(HopHeader::Deliver {
                    dest: Destination::KeyRoot(take_id(0)?),
                })
            }
            _ => Err(HeaderError),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_all_variants() {
        let cases = [
            HopHeader::Forward {
                next_hop: Id::from_u64(1),
                hint: None,
            },
            HopHeader::Forward {
                next_hop: Id::from_u64(2),
                hint: Some(Id::from_u64(3)),
            },
            HopHeader::Deliver {
                dest: Destination::Node(Id::from_u64(4)),
            },
            HopHeader::Deliver {
                dest: Destination::KeyRoot(Id::from_u64(5)),
            },
        ];
        for h in cases {
            assert_eq!(HopHeader::decode(&h.encode()).unwrap(), h);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(HopHeader::decode(&[]).is_err());
        assert!(HopHeader::decode(&[99]).is_err());
        assert!(HopHeader::decode(&[TAG_FORWARD, 1, 2]).is_err());
        // Trailing bytes are rejected (length must be exact).
        let mut enc = HopHeader::Deliver {
            dest: Destination::Node(Id::ZERO),
        }
        .encode();
        enc.push(0);
        assert!(HopHeader::decode(&enc).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            a in any::<[u8; 20]>(),
            b in any::<[u8; 20]>(),
            variant in 0u8..4,
        ) {
            let (a, b) = (Id::from_bytes(a), Id::from_bytes(b));
            let h = match variant {
                0 => HopHeader::Forward { next_hop: a, hint: None },
                1 => HopHeader::Forward { next_hop: a, hint: Some(b) },
                2 => HopHeader::Deliver { dest: Destination::Node(a) },
                _ => HopHeader::Deliver { dest: Destination::KeyRoot(a) },
            };
            prop_assert_eq!(HopHeader::decode(&h.encode()).unwrap(), h);
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = HopHeader::decode(&bytes);
        }
    }
}
