//! [`TapSystem`]: the whole stack wired together.
//!
//! A facade over overlay + THA store + file store + per-node PKI, exposing
//! the operations a TAP deployment offers its users: join/leave, deploy
//! anchors (anonymously, over an onion bootstrap), form tunnels, store and
//! anonymously retrieve files, and refresh tunnels. The examples and the
//! experiment harness both drive this type.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tap_crypto::KeyPair;
use tap_id::Id;
use tap_metrics::Registry;
use tap_pastry::storage::ReplicaStore;
use tap_pastry::{Overlay, PastryConfig};

use crate::deploy::{self, DeployError};
use crate::metrics::CoreInstruments;
use crate::retrieval::{self, RetrievalError, RetrievalReport, StoredFile};
use crate::tha::{Tha, ThaFactory, ThaSecret};
use crate::transit::{HintCache, TransitOptions};
use crate::tunnel::Tunnel;

/// Deployment-wide parameters.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Overlay parameters (digit width, leaf set, replication factor).
    pub pastry: PastryConfig,
    /// Default tunnel length `l`. The paper's default is 5.
    pub tunnel_length: usize,
    /// Relays on the Onion-Routing bootstrap path ("a number (e.g., 3-5)
    /// of THAs" are deployed per session; one relay stores one anchor).
    pub bootstrap_path_len: usize,
    /// Leading zero bits demanded by the deposit puzzle (0 disables the
    /// flood charge — handy in large simulations).
    pub puzzle_difficulty: u8,
    /// Bytes of fake onion appended to reply tunnels (§4).
    pub fakeonion_len: usize,
}

impl SystemConfig {
    /// The paper's evaluation setting: `b=4`, `|L|=16`, `k=3`, `l=5`.
    pub fn paper_defaults() -> Self {
        SystemConfig {
            pastry: PastryConfig::paper_defaults(),
            tunnel_length: 5,
            bootstrap_path_len: 3,
            puzzle_difficulty: 0,
            fakeonion_len: 96,
        }
    }

    /// Same, with an explicit replication factor.
    pub fn with_replication(k: usize) -> Self {
        SystemConfig {
            pastry: PastryConfig::with_replication(k),
            ..Self::paper_defaults()
        }
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// A fully wired TAP deployment (simulated, single process).
pub struct TapSystem {
    /// System parameters.
    pub config: SystemConfig,
    /// The Pastry overlay.
    pub overlay: Overlay,
    /// The replicated THA store.
    pub thas: ReplicaStore<Tha>,
    /// The replicated file store (PAST).
    pub files: ReplicaStore<StoredFile>,
    /// Deterministic randomness for the whole system.
    pub rng: StdRng,
    keys: HashMap<Id, KeyPair>,
    factories: HashMap<Id, ThaFactory>,
    anchors: HashMap<Id, Vec<ThaSecret>>,
    instruments: CoreInstruments,
}

impl TapSystem {
    /// Build an `n`-node system from `seed`.
    pub fn bootstrap(config: SystemConfig, n: usize, seed: u64) -> Self {
        let mut sys = TapSystem {
            overlay: Overlay::new(config.pastry),
            thas: ReplicaStore::new(config.pastry.replication),
            files: ReplicaStore::new(config.pastry.replication),
            rng: StdRng::seed_from_u64(seed),
            keys: HashMap::new(),
            factories: HashMap::new(),
            anchors: HashMap::new(),
            config,
            instruments: CoreInstruments::new(&Registry::new()),
        };
        sys.use_metrics(Registry::new());
        for _ in 0..n {
            sys.add_node();
        }
        sys
    }

    /// Record the whole system's metrics — overlay, both replica stores
    /// and tap-core's own instruments — into `registry` (share one across
    /// subsystems, then [`Registry::snapshot`] it for a combined report).
    pub fn use_metrics(&mut self, registry: Registry) {
        self.overlay.use_metrics(registry.clone());
        self.thas.use_metrics(registry.clone());
        self.files.use_metrics(registry.clone());
        self.instruments = CoreInstruments::new(&registry);
    }

    /// The metrics registry this system records into.
    pub fn metrics(&self) -> &Registry {
        self.instruments.registry()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.overlay.len()
    }

    /// Whether the system has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.overlay.is_empty()
    }

    /// A uniformly random live node.
    pub fn random_node(&mut self) -> Id {
        self.overlay
            .random_node(&mut self.rng)
            .expect("system has nodes")
    }

    /// Join a fresh node: overlay join, keypair minting, replica
    /// rebalancing of both stores.
    pub fn add_node(&mut self) -> Id {
        let id = self.overlay.add_random_node(&mut self.rng);
        self.keys.insert(id, KeyPair::generate(&mut self.rng));
        let factory = ThaFactory::new(&mut self.rng, id);
        self.factories.insert(id, factory);
        self.thas.on_node_added(&self.overlay, id);
        self.files.on_node_added(&self.overlay, id);
        id
    }

    /// Fail (or gracefully remove) a node. With `repair`, the replication
    /// manager immediately re-replicates what the node held — the steady
    /// churn regime of Fig. 5. Without it, nothing migrates — the
    /// simultaneous-failure regime of Fig. 2.
    pub fn fail_node(&mut self, id: Id, repair: bool) -> bool {
        if !self.overlay.remove_node(id) {
            return false;
        }
        if repair {
            self.thas.on_node_removed(&self.overlay, id);
            self.files.on_node_removed(&self.overlay, id);
        }
        true
    }

    /// Re-replicate every THA anchor whose replica set has degraded below
    /// `min(k, overlay size)` live holders — the aftermath of a takeover,
    /// an unrepaired failure (Fig. 2's regime), or a partition that kept
    /// the repair from running. An anchor with zero live holders is beyond
    /// repair (no surviving replica to copy from) and is left alone.
    /// Returns how many anchors were rebuilt; each rebuild is counted as
    /// `core.tha.re_replications` and emits a `core.tha.re_replication`
    /// event.
    pub fn re_replicate_thas(&mut self) -> usize {
        let k = self.thas.replication().min(self.overlay.len());
        let degraded: Vec<Id> = self
            .thas
            .iter()
            .filter(|(_, rec)| {
                let live = rec
                    .holders
                    .iter()
                    .filter(|h| self.overlay.is_live(**h))
                    .count();
                live > 0 && live < k
            })
            .map(|(hopid, _)| hopid)
            .collect();
        let mut repaired = 0;
        for hopid in degraded {
            if self.thas.repair_key(&self.overlay, hopid) {
                let holders_now = self.thas.holders(hopid).len();
                self.instruments.record_re_replication(hopid, holders_now);
                repaired += 1;
            }
        }
        repaired
    }

    /// The public keys the initiator can see (the PKI).
    pub fn keypair(&self, node: Id) -> Option<&KeyPair> {
        self.keys.get(&node)
    }

    /// A node's deployed-but-unused anchor pool.
    pub fn anchor_pool(&self, node: Id) -> &[ThaSecret] {
        self.anchors.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Deploy `count` fresh anchors for `node` through an Onion-Routing
    /// bootstrap path of random relays (§3.3), retrying with new paths up
    /// to `max_attempts` times (the paper: "try to use another Onion path
    /// … until the first anonymous tunnel is able to be formed").
    pub fn deploy_anchors(
        &mut self,
        node: Id,
        count: usize,
        max_attempts: usize,
    ) -> Result<usize, DeployError> {
        let mut deployed = 0;
        let mut last_err = None;
        'attempts: for _ in 0..max_attempts {
            while deployed < count {
                let batch = count - deployed;
                let path_len = self.config.bootstrap_path_len.min(batch);
                let secrets: Vec<ThaSecret> = {
                    let factory = self
                        .factories
                        .get_mut(&node)
                        .expect("factory exists for every live node");
                    (0..path_len).map(|_| factory.next(&mut self.rng)).collect()
                };
                let stored: Vec<Tha> = secrets.iter().map(ThaSecret::stored).collect();
                let relays = self.pick_relays(node, path_len);
                match deploy::deploy_via_onion(
                    &mut self.rng,
                    &self.overlay,
                    &mut self.thas,
                    &self.keys,
                    &relays,
                    &stored,
                    self.config.puzzle_difficulty,
                ) {
                    Ok(_) => {
                        deployed += path_len;
                        self.anchors.entry(node).or_default().extend(secrets);
                    }
                    Err(e) => {
                        last_err = Some(e);
                        continue 'attempts;
                    }
                }
            }
            return Ok(deployed);
        }
        if deployed >= count {
            Ok(deployed)
        } else {
            Err(last_err.unwrap_or(DeployError::Mismatched))
        }
    }

    /// Deploy anchors directly into the store, skipping the onion bootstrap
    /// ceremony. The replica placement and adversary exposure are identical
    /// to [`TapSystem::deploy_anchors`]; only the (already unit-tested)
    /// bootstrap crypto is skipped. The large-scale experiments use this.
    pub fn deploy_anchors_direct(&mut self, node: Id, count: usize) -> usize {
        let mut done = 0;
        for _ in 0..count {
            let secret = {
                let factory = self
                    .factories
                    .get_mut(&node)
                    .expect("factory exists for every live node");
                factory.next(&mut self.rng)
            };
            if self
                .thas
                .insert(&self.overlay, secret.hopid, secret.stored())
                .unwrap_or(false)
            {
                self.anchors.entry(node).or_default().push(secret);
                done += 1;
            }
        }
        done
    }

    fn pick_relays(&mut self, exclude: Id, count: usize) -> Vec<Id> {
        let mut out = Vec::with_capacity(count);
        let mut guard = 0;
        while out.len() < count && guard < 10_000 {
            guard += 1;
            if let Some(n) = self.overlay.random_node(&mut self.rng) {
                if n != exclude && !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Form a tunnel of the configured length from `node`'s anchor pool,
    /// consuming the chosen anchors (an anchor anchors exactly one hop of
    /// one tunnel; reuse would link tunnels). Returns `None` if the pool
    /// is too small.
    pub fn form_tunnel(&mut self, node: Id) -> Option<Tunnel> {
        self.form_tunnel_of_length(node, self.config.tunnel_length)
    }

    /// [`TapSystem::form_tunnel`] with an explicit length.
    pub fn form_tunnel_of_length(&mut self, node: Id, l: usize) -> Option<Tunnel> {
        let pool = self.anchors.get_mut(&node)?;
        let tunnel = Tunnel::form_scattered(&mut self.rng, pool, l, self.config.pastry.b)?;
        let used: std::collections::HashSet<Id> = tunnel.hop_ids().into_iter().collect();
        pool.retain(|s| !used.contains(&s.hopid));
        Some(tunnel)
    }

    /// Tear down a tunnel: prove ownership of each hop's password and
    /// delete the anchors (§3.4). Returns how many anchors were deleted.
    pub fn teardown_tunnel(&mut self, tunnel: &Tunnel) -> usize {
        tunnel
            .hops()
            .iter()
            .filter(|h| deploy::delete_tha(&mut self.thas, h.hopid, &h.password).is_ok())
            .count()
    }

    /// Choose a `bid` for `node`: an identifier that is *not* the node's id
    /// (which would identify it outright) but whose root the node is (§4:
    /// "an identifier subject to a condition that I is the node whose
    /// nodeid is numerically closest to it").
    pub fn choose_bid(&mut self, node: Id) -> Id {
        debug_assert!(self.overlay.is_live(node));
        loop {
            // A small offset in a random direction; node ids are uniform in
            // a 160-bit space, so anything within 2^40 of the node is
            // astronomically certain to stay closest to it — but verify
            // against the oracle anyway and retry on the (theoretical)
            // collision.
            let off = Id::from_u64(self.rng.gen_range(1u64..=u64::MAX >> 24));
            let bid = if self.rng.gen_bool(0.5) {
                node.wrapping_add(off)
            } else {
                node.wrapping_sub(off)
            };
            if bid != node && self.overlay.owner_of(bid) == Some(node) {
                return bid;
            }
        }
    }

    /// Store a file under a random fid; returns the fid.
    pub fn store_file(&mut self, data: Vec<u8>) -> Id {
        loop {
            let fid = Id::random(&mut self.rng);
            if self
                .files
                .insert(&self.overlay, fid, StoredFile { data: data.clone() })
                .expect("store_file requires a non-empty overlay")
            {
                return fid;
            }
        }
    }

    /// Anonymously retrieve `fid` from `initiator` (§4): forms a forward
    /// and a distinct reply tunnel from the initiator's anchor pool and
    /// runs the full protocol. With `use_hints`, onion headers carry
    /// cached hop-node addresses (§5, `TAP_opt`).
    pub fn retrieve_file(
        &mut self,
        initiator: Id,
        fid: Id,
        use_hints: bool,
    ) -> Result<(Vec<u8>, RetrievalReport), RetrievalError> {
        let l = self.config.tunnel_length;
        let fwd = self
            .form_tunnel_of_length(initiator, l)
            .ok_or(RetrievalError::Corrupt)?;
        let rev = self
            .form_tunnel_of_length(initiator, l)
            .ok_or(RetrievalError::Corrupt)?;
        let bid = self.choose_bid(initiator);
        let hints = if use_hints {
            let mut cache = HintCache::default();
            let mut ids = fwd.hop_ids();
            ids.extend(rev.hop_ids());
            cache.refresh(&self.overlay, &ids);
            Some(cache)
        } else {
            None
        };
        let mut ctx = retrieval::RetrievalContext {
            overlay: &mut self.overlay,
            thas: &self.thas,
            files: &self.files,
            metrics: Some(&self.instruments),
        };
        retrieval::retrieve(
            &mut self.rng,
            &mut ctx,
            initiator,
            fid,
            &fwd,
            &rev,
            bid,
            hints.as_ref(),
            TransitOptions {
                use_hints,
                ..TransitOptions::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(n: usize, seed: u64) -> TapSystem {
        TapSystem::bootstrap(SystemConfig::paper_defaults(), n, seed)
    }

    #[test]
    fn bootstrap_builds_consistent_system() {
        let sys = system(120, 1);
        assert_eq!(sys.len(), 120);
        sys.overlay.assert_leafsets_exact();
        for id in sys.overlay.ids().collect::<Vec<_>>() {
            assert!(sys.keypair(id).is_some(), "every node has a keypair");
        }
    }

    #[test]
    fn deploy_and_form_tunnel() {
        let mut sys = system(120, 2);
        let node = sys.random_node();
        let n = sys.deploy_anchors(node, 12, 8).unwrap();
        assert_eq!(n, 12);
        assert_eq!(sys.anchor_pool(node).len(), 12);
        let t = sys.form_tunnel(node).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(sys.anchor_pool(node).len(), 7, "anchors are consumed");
        // The anchors are really in the store, on the k closest nodes.
        for h in t.hop_ids() {
            assert_eq!(sys.thas.holders(h), sys.overlay.k_closest(h, 3));
        }
    }

    #[test]
    fn direct_deploy_equivalent_placement() {
        let mut sys = system(100, 3);
        let node = sys.random_node();
        assert_eq!(sys.deploy_anchors_direct(node, 10), 10);
        for s in sys.anchor_pool(node).to_vec() {
            assert_eq!(sys.thas.holders(s.hopid), sys.overlay.k_closest(s.hopid, 3));
        }
    }

    #[test]
    fn end_to_end_anonymous_retrieval() {
        let mut sys = system(200, 4);
        let initiator = sys.random_node();
        sys.deploy_anchors_direct(initiator, 40);
        let fid = sys.store_file(b"facade file".to_vec());
        let (file, report) = sys.retrieve_file(initiator, fid, false).unwrap();
        assert_eq!(file, b"facade file");
        assert_eq!(report.forward.hops_resolved, 5);
        assert_eq!(report.reply.hops_resolved, 5);
    }

    #[test]
    fn hinted_retrieval_is_cheaper() {
        let mut sys = system(400, 5);
        let initiator = sys.random_node();
        sys.deploy_anchors_direct(initiator, 80);
        let fid = sys.store_file(vec![7u8; 256]);
        let (_, plain) = sys.retrieve_file(initiator, fid, false).unwrap();
        let (_, hinted) = sys.retrieve_file(initiator, fid, true).unwrap();
        let plain_hops = plain.forward.overlay_hops + plain.reply.overlay_hops;
        let hinted_hops = hinted.forward.overlay_hops + hinted.reply.overlay_hops;
        assert!(
            hinted_hops < plain_hops,
            "hints should shorten the path: {hinted_hops} vs {plain_hops}"
        );
        assert!(hinted.forward.hint_hits > 0);
    }

    #[test]
    fn churn_between_deploy_and_retrieve() {
        let mut sys = system(250, 6);
        let initiator = sys.random_node();
        sys.deploy_anchors_direct(initiator, 40);
        let fid = sys.store_file(b"survives churn".to_vec());
        // Churn: fail 20 random nodes (with repair) and add 20 fresh ones.
        for _ in 0..20 {
            let victim = loop {
                let v = sys.random_node();
                if v != initiator {
                    break v;
                }
            };
            sys.fail_node(victim, true);
            sys.add_node();
        }
        let (file, _) = sys.retrieve_file(initiator, fid, false).unwrap();
        assert_eq!(file, b"survives churn");
    }

    #[test]
    fn teardown_deletes_anchors() {
        let mut sys = system(100, 7);
        let node = sys.random_node();
        sys.deploy_anchors_direct(node, 10);
        let t = sys.form_tunnel(node).unwrap();
        assert_eq!(sys.teardown_tunnel(&t), 5);
        for h in t.hop_ids() {
            assert!(sys.thas.get(h).is_none(), "anchor {h:?} must be gone");
        }
    }

    #[test]
    fn bid_is_owned_by_chooser_but_not_equal() {
        let mut sys = system(150, 8);
        for _ in 0..20 {
            let node = sys.random_node();
            let bid = sys.choose_bid(node);
            assert_ne!(bid, node);
            assert_eq!(sys.overlay.owner_of(bid), Some(node));
        }
    }

    #[test]
    fn form_tunnel_requires_pool() {
        let mut sys = system(60, 9);
        let node = sys.random_node();
        assert!(sys.form_tunnel(node).is_none(), "empty pool");
        sys.deploy_anchors_direct(node, 3);
        assert!(sys.form_tunnel(node).is_none(), "pool smaller than l");
    }
}
