//! Anonymous file retrieval — the paper's sample application (§4).
//!
//! The initiator `I` builds a forward tunnel `T_f` and a *distinct* reply
//! tunnel `T_r`, then sends
//! `M = {hid_2, {hid_3, {fid, K_I, T_r}_K3}_K2}_K1` through `T_f`. The tail
//! hands `(fid, K_I, T_r)` to the responder `R` (the root of `fid`), which
//! returns `{f}_Kf` and `{Kf}_{K_I}` back through `T_r`. Using different
//! tunnels for request and reply "makes it harder for an adversary to
//! correlate a request with a reply".

use rand::Rng;

use tap_crypto::{KeyPair, PublicKey, SealedBox, SymmetricKey};
use tap_id::{Id, ID_BYTES};
use tap_netsim::latency::LatencyModel;
use tap_pastry::storage::ReplicaStore;
use tap_pastry::{KeyRouter, Overlay};

use crate::metrics::CoreInstruments;
use crate::netdrive::{NetDriver, TimedReport};
use crate::tha::Tha;
use crate::transit::{self, Delivery, HintCache, TransitError, TransitOptions, TransitReport};
use crate::tunnel::{ReplyTunnel, Tunnel};
use crate::wire::Destination;

/// A file stored in the PAST-style file store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredFile {
    /// The file contents.
    pub data: Vec<u8>,
}

/// Why a retrieval failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetrievalError {
    /// The forward tunnel broke.
    Forward(TransitError),
    /// The reply tunnel broke.
    Reply(TransitError),
    /// The responder does not hold the requested file.
    NoSuchFile {
        /// The requested file id.
        fid: Id,
    },
    /// A message failed to parse or decrypt end-to-end.
    Corrupt,
    /// The reply surfaced at a node other than the initiator.
    Misdelivered {
        /// Where the reply actually landed.
        node: Id,
    },
}

impl std::fmt::Display for RetrievalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetrievalError::Forward(e) => write!(f, "forward tunnel failed: {e}"),
            RetrievalError::Reply(e) => write!(f, "reply tunnel failed: {e}"),
            RetrievalError::NoSuchFile { fid } => write!(f, "no file stored under {fid:?}"),
            RetrievalError::Corrupt => write!(f, "retrieval message corrupt"),
            RetrievalError::Misdelivered { node } => {
                write!(f, "reply landed at {node:?}, not the initiator")
            }
        }
    }
}

impl std::error::Error for RetrievalError {}

/// Metrics from one retrieval.
#[derive(Debug, Clone, Default)]
pub struct RetrievalReport {
    /// Transit metrics of the request along `T_f` (plus the tail → R hop).
    pub forward: TransitReport,
    /// Transit metrics of the reply along `T_r`.
    pub reply: TransitReport,
    /// Size of the encrypted file payload on the reply path, in bytes.
    pub reply_bytes: usize,
}

/// The request core `(fid, K_I, T_r)` and its codec.
struct Request {
    fid: Id,
    reply_key: PublicKey,
    reply_entry: Id,
    reply_onion: Vec<u8>,
}

impl Request {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.fid.as_bytes());
        out.extend_from_slice(&self.reply_key.0);
        out.extend_from_slice(self.reply_entry.as_bytes());
        out.extend_from_slice(&(self.reply_onion.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.reply_onion);
        out
    }

    fn decode(bytes: &[u8]) -> Option<Request> {
        let (fid, rest) = bytes.split_at_checked(ID_BYTES)?;
        let (pk, rest) = rest.split_at_checked(32)?;
        let (entry, rest) = rest.split_at_checked(ID_BYTES)?;
        let (len_b, rest) = rest.split_at_checked(4)?;
        let len = u32::from_be_bytes([len_b[0], len_b[1], len_b[2], len_b[3]]) as usize;
        (rest.len() == len).then(|| Request {
            fid: Id::from_bytes(fid.try_into().expect("split_at_checked sized")),
            reply_key: PublicKey(pk.try_into().expect("sized")),
            reply_entry: Id::from_bytes(entry.try_into().expect("sized")),
            reply_onion: rest.to_vec(),
        })
    }
}

/// The reply payload `({f}_Kf, {Kf}_{K_I})` and its codec.
struct Reply {
    file_ct: Vec<u8>,
    key_box: SealedBox,
}

impl Reply {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.file_ct.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.file_ct);
        out.extend_from_slice(&self.key_box.ephemeral.0);
        out.extend_from_slice(&(self.key_box.sealed.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.key_box.sealed);
        out
    }

    fn decode(bytes: &[u8]) -> Option<Reply> {
        let (len_b, rest) = bytes.split_at_checked(4)?;
        let flen = u32::from_be_bytes([len_b[0], len_b[1], len_b[2], len_b[3]]) as usize;
        let (file_ct, rest) = rest.split_at_checked(flen)?;
        let (eph, rest) = rest.split_at_checked(32)?;
        let (len_b, rest) = rest.split_at_checked(4)?;
        let slen = u32::from_be_bytes([len_b[0], len_b[1], len_b[2], len_b[3]]) as usize;
        (rest.len() == slen).then(|| Reply {
            file_ct: file_ct.to_vec(),
            key_box: SealedBox {
                ephemeral: PublicKey(eph.try_into().expect("sized")),
                sealed: rest.to_vec(),
            },
        })
    }
}

/// Everything the retrieval protocol needs from the environment. Generic
/// over the substrate (`O` defaults to Pastry's [`Overlay`]; the Chord
/// substrate drops in unchanged).
pub struct RetrievalContext<'a, O: KeyRouter = Overlay> {
    /// The overlay (mutated only through lazy routing repair).
    pub overlay: &'a mut O,
    /// The THA store.
    pub thas: &'a ReplicaStore<Tha>,
    /// The file store.
    pub files: &'a ReplicaStore<StoredFile>,
    /// Instruments to record onion timings / takeovers / retries into.
    pub metrics: Option<&'a CoreInstruments>,
}

/// Run the full §4 protocol: request `fid` through `fwd`, receive the file
/// back through `rev` terminating at `bid`. Returns the plaintext file.
#[allow(clippy::too_many_arguments)]
pub fn retrieve<R: Rng + ?Sized, O: KeyRouter>(
    rng: &mut R,
    ctx: &mut RetrievalContext<'_, O>,
    initiator: Id,
    fid: Id,
    fwd: &Tunnel,
    rev: &Tunnel,
    bid: Id,
    hints: Option<&crate::transit::HintCache>,
    options: TransitOptions,
) -> Result<(Vec<u8>, RetrievalReport), RetrievalError> {
    // The temporary keypair K_I — fresh per retrieval so replies cannot be
    // linked across requests.
    let k_i = KeyPair::generate(rng);
    let reply_tunnel = ReplyTunnel::build(rng, rev, bid, 96, hints);

    let request = Request {
        fid,
        reply_key: k_i.public(),
        reply_entry: reply_tunnel.entry_hopid,
        reply_onion: reply_tunnel.onion.clone(),
    };
    let onion = fwd.build_onion_instrumented(
        rng,
        Destination::KeyRoot(fid),
        &request.encode(),
        hints,
        ctx.metrics,
    );

    // ---- forward path ----
    let (delivery, forward_report) = transit::drive_instrumented(
        ctx.overlay,
        ctx.thas,
        initiator,
        fwd.entry_hopid(),
        onion,
        options,
        ctx.metrics,
    )
    .map_err(RetrievalError::Forward)?;
    let (responder, request_bytes) = match delivery {
        Delivery::ToDestination { node, core } => (node, core),
        Delivery::AtAnchorlessRoot { .. } => return Err(RetrievalError::Corrupt),
    };

    // ---- responder R ----
    let request = Request::decode(&request_bytes).ok_or(RetrievalError::Corrupt)?;
    let record = ctx
        .files
        .get(request.fid)
        .ok_or(RetrievalError::NoSuchFile { fid: request.fid })?;
    debug_assert!(
        record.holders.contains(&responder),
        "the forward tunnel delivered to the fid root, which must hold it"
    );
    let k_f = SymmetricKey::generate(rng);
    let reply = Reply {
        file_ct: k_f.seal(rng, &record.value.data),
        key_box: SealedBox::seal(rng, &request.reply_key, k_f.as_bytes()),
    };
    let reply_bytes = reply.encode();

    // ---- reply path ----
    let (delivery, reply_report) = transit::drive_instrumented(
        ctx.overlay,
        ctx.thas,
        responder,
        request.reply_entry,
        request.reply_onion,
        options,
        ctx.metrics,
    )
    .map_err(RetrievalError::Reply)?;
    let landed = match delivery {
        Delivery::AtAnchorlessRoot { node, .. } => node,
        Delivery::ToDestination { .. } => return Err(RetrievalError::Corrupt),
    };
    if landed != initiator {
        return Err(RetrievalError::Misdelivered { node: landed });
    }

    // ---- initiator decrypts ----
    let reply = Reply::decode(&reply_bytes).ok_or(RetrievalError::Corrupt)?;
    let k_f_bytes = k_i
        .open(&reply.key_box)
        .map_err(|_| RetrievalError::Corrupt)?;
    let k_f_arr: [u8; 32] = k_f_bytes.try_into().map_err(|_| RetrievalError::Corrupt)?;
    let k_f = SymmetricKey::from_bytes(k_f_arr);
    let file = k_f
        .open(&reply.file_ct)
        .map_err(|_| RetrievalError::Corrupt)?;

    let report = RetrievalReport {
        reply_bytes: reply_bytes.len(),
        forward: forward_report,
        reply: reply_report,
    };
    Ok((file, report))
}

/// Wire-level metrics from one timed retrieval.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimedRetrievalReport {
    /// Timed transit of the request along `T_f`.
    pub forward: TimedReport,
    /// Timed transit of the reply along `T_r`.
    pub reply: TimedReport,
    /// Size of the encrypted file payload on the reply path, in bytes.
    pub reply_bytes: usize,
}

/// [`retrieve`] as timed wire traffic through a [`NetDriver`]: both the
/// request and the reply cross the emulated network, so fault injection
/// (loss, duplication, partitions, crash-restart) bites, the driver's
/// timeout/retry shim reacts, and a hinted hop that times out demotes its
/// [`HintCache`] entry and falls back to overlay routing (§5).
#[allow(clippy::too_many_arguments)]
pub fn retrieve_timed<R: Rng + ?Sized, O: KeyRouter, L: LatencyModel>(
    rng: &mut R,
    ctx: &mut RetrievalContext<'_, O>,
    driver: &mut NetDriver<L>,
    initiator: Id,
    fid: Id,
    fwd: &Tunnel,
    rev: &Tunnel,
    bid: Id,
    mut hints: Option<&mut HintCache>,
    options: TransitOptions,
) -> Result<(Vec<u8>, TimedRetrievalReport), RetrievalError> {
    let k_i = KeyPair::generate(rng);
    let reply_tunnel = ReplyTunnel::build(rng, rev, bid, 96, hints.as_deref());

    let request = Request {
        fid,
        reply_key: k_i.public(),
        reply_entry: reply_tunnel.entry_hopid,
        reply_onion: reply_tunnel.onion.clone(),
    };
    let onion = fwd.build_onion_instrumented(
        rng,
        Destination::KeyRoot(fid),
        &request.encode(),
        hints.as_deref(),
        ctx.metrics,
    );

    // ---- forward path (on the wire) ----
    let (delivery, forward_report) = driver
        .drive_timed_with_hints(
            ctx.overlay,
            ctx.thas,
            initiator,
            fwd.entry_hopid(),
            onion,
            0,
            options,
            hints.as_deref_mut(),
        )
        .map_err(RetrievalError::Forward)?;
    let (responder, request_bytes) = match delivery {
        Delivery::ToDestination { node, core } => (node, core),
        Delivery::AtAnchorlessRoot { .. } => return Err(RetrievalError::Corrupt),
    };

    // ---- responder R ----
    let request = Request::decode(&request_bytes).ok_or(RetrievalError::Corrupt)?;
    let record = ctx
        .files
        .get(request.fid)
        .ok_or(RetrievalError::NoSuchFile { fid: request.fid })?;
    let k_f = SymmetricKey::generate(rng);
    let reply = Reply {
        file_ct: k_f.seal(rng, &record.value.data),
        key_box: SealedBox::seal(rng, &request.reply_key, k_f.as_bytes()),
    };
    let reply_bytes = reply.encode();

    // ---- reply path (on the wire, the file travelling alongside) ----
    let (delivery, reply_report) = driver
        .drive_timed_with_hints(
            ctx.overlay,
            ctx.thas,
            responder,
            request.reply_entry,
            request.reply_onion,
            reply_bytes.len() as u64,
            options,
            hints,
        )
        .map_err(RetrievalError::Reply)?;
    let landed = match delivery {
        Delivery::AtAnchorlessRoot { node, .. } => node,
        Delivery::ToDestination { .. } => return Err(RetrievalError::Corrupt),
    };
    if landed != initiator {
        return Err(RetrievalError::Misdelivered { node: landed });
    }

    // ---- initiator decrypts ----
    let reply = Reply::decode(&reply_bytes).ok_or(RetrievalError::Corrupt)?;
    let k_f_bytes = k_i
        .open(&reply.key_box)
        .map_err(|_| RetrievalError::Corrupt)?;
    let k_f_arr: [u8; 32] = k_f_bytes.try_into().map_err(|_| RetrievalError::Corrupt)?;
    let k_f = SymmetricKey::from_bytes(k_f_arr);
    let file = k_f
        .open(&reply.file_ct)
        .map_err(|_| RetrievalError::Corrupt)?;

    let report = TimedRetrievalReport {
        reply_bytes: reply_bytes.len(),
        forward: forward_report,
        reply: reply_report,
    };
    Ok((file, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tha::ThaFactory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tap_pastry::PastryConfig;

    struct Fx {
        overlay: Overlay,
        thas: ReplicaStore<Tha>,
        files: ReplicaStore<StoredFile>,
        rng: StdRng,
        initiator: Id,
        factory: ThaFactory,
    }

    fn fixture(n: usize, seed: u64) -> Fx {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = Overlay::new(PastryConfig::paper_defaults());
        for _ in 0..n {
            overlay.add_random_node(&mut rng);
        }
        let initiator = overlay.random_node(&mut rng).unwrap();
        let factory = ThaFactory::new(&mut rng, initiator);
        Fx {
            overlay,
            thas: ReplicaStore::new(3),
            files: ReplicaStore::new(3),
            rng,
            initiator,
            factory,
        }
    }

    fn tunnel(fx: &mut Fx, l: usize) -> Tunnel {
        let mut pool = Vec::new();
        for _ in 0..(l * 4) {
            let s = fx.factory.next(&mut fx.rng);
            fx.thas.insert(&fx.overlay, s.hopid, s.stored()).unwrap();
            pool.push(s);
        }
        Tunnel::form_scattered(&mut fx.rng, &pool, l, 4).unwrap()
    }

    fn store_file(fx: &mut Fx, data: &[u8]) -> Id {
        let fid = Id::random(&mut fx.rng);
        fx.files
            .insert(
                &fx.overlay,
                fid,
                StoredFile {
                    data: data.to_vec(),
                },
            )
            .unwrap();
        fid
    }

    fn bid_of(fx: &Fx) -> Id {
        fx.initiator.wrapping_add(Id::from_u64(1))
    }

    #[test]
    fn end_to_end_retrieval() {
        let mut fx = fixture(200, 1);
        let fwd = tunnel(&mut fx, 3);
        let rev = tunnel(&mut fx, 3);
        let fid = store_file(&mut fx, b"the secret document");
        let bid = bid_of(&fx);
        let initiator = fx.initiator;
        let mut ctx = RetrievalContext {
            overlay: &mut fx.overlay,
            thas: &fx.thas,
            files: &fx.files,
            metrics: None,
        };
        let (file, report) = retrieve(
            &mut fx.rng,
            &mut ctx,
            initiator,
            fid,
            &fwd,
            &rev,
            bid,
            None,
            TransitOptions::default(),
        )
        .unwrap();
        assert_eq!(file, b"the secret document");
        assert_eq!(report.forward.hops_resolved, 3);
        assert_eq!(report.reply.hops_resolved, 3);
        assert!(report.reply_bytes > b"the secret document".len());
    }

    #[test]
    fn request_and_reply_use_disjoint_hops() {
        let mut fx = fixture(200, 2);
        let fwd = tunnel(&mut fx, 3);
        let rev = tunnel(&mut fx, 3);
        let fwd_set: std::collections::HashSet<Id> = fwd.hop_ids().into_iter().collect();
        assert!(
            rev.hop_ids().iter().all(|h| !fwd_set.contains(h)),
            "forward and reply tunnels must not share THAs"
        );
    }

    #[test]
    fn missing_file_reported() {
        let mut fx = fixture(150, 3);
        let fwd = tunnel(&mut fx, 3);
        let rev = tunnel(&mut fx, 3);
        let fid = Id::random(&mut fx.rng);
        let bid = bid_of(&fx);
        let initiator = fx.initiator;
        let mut ctx = RetrievalContext {
            overlay: &mut fx.overlay,
            thas: &fx.thas,
            files: &fx.files,
            metrics: None,
        };
        let err = retrieve(
            &mut fx.rng,
            &mut ctx,
            initiator,
            fid,
            &fwd,
            &rev,
            bid,
            None,
            TransitOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, RetrievalError::NoSuchFile { fid });
    }

    #[test]
    fn retrieval_survives_hop_failure_on_each_path() {
        let mut fx = fixture(250, 4);
        let fwd = tunnel(&mut fx, 3);
        let rev = tunnel(&mut fx, 3);
        let fid = store_file(&mut fx, b"resilient");
        // Kill the current hop node of one forward hop and one reply hop.
        for hop in [fwd.hop_ids()[1], rev.hop_ids()[1]] {
            let root = fx.overlay.owner_of(hop).unwrap();
            if root != fx.initiator {
                fx.overlay.remove_node(root);
            }
        }
        let bid = bid_of(&fx);
        let initiator = fx.initiator;
        let mut ctx = RetrievalContext {
            overlay: &mut fx.overlay,
            thas: &fx.thas,
            files: &fx.files,
            metrics: None,
        };
        match retrieve(
            &mut fx.rng,
            &mut ctx,
            initiator,
            fid,
            &fwd,
            &rev,
            bid,
            None,
            TransitOptions::default(),
        ) {
            Ok((file, _)) => assert_eq!(file, b"resilient"),
            // Legal only if the killed node happened to hold the fid file
            // replica set's root... which retrieval resolves post-failure,
            // so a clean NoSuchFile/transit error would indicate a real
            // bug. Assert success strictly.
            Err(e) => panic!("retrieval should have survived: {e}"),
        }
    }

    #[test]
    fn hinted_retrieval_works_and_is_cheaper() {
        let mut fx = fixture(300, 5);
        let fwd = tunnel(&mut fx, 5);
        let rev = tunnel(&mut fx, 5);
        let fid = store_file(&mut fx, b"speedy");
        let bid = bid_of(&fx);
        let initiator = fx.initiator;
        // Hints are embedded by the onion builder; the §5 path also needs
        // them inside the tunnels, which `TapSystem::retrieve_file`
        // exercises. Here we verify plain vs. hinted transit parity at the
        // protocol level (hints off = baseline).
        let mut ctx = RetrievalContext {
            overlay: &mut fx.overlay,
            thas: &fx.thas,
            files: &fx.files,
            metrics: None,
        };
        let (file, report) = retrieve(
            &mut fx.rng,
            &mut ctx,
            initiator,
            fid,
            &fwd,
            &rev,
            bid,
            None,
            TransitOptions::hinted(),
        )
        .unwrap();
        assert_eq!(file, b"speedy");
        assert!(report.forward.overlay_hops >= 5);
    }
}
