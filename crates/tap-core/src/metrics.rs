//! Cached [`tap_metrics`] handles for this crate's hot paths.
//!
//! All tap-core instrumentation flows through [`CoreInstruments`]: one
//! registry lookup per metric at construction, plain atomic operations on
//! the cached handles afterwards. [`crate::system::TapSystem`] owns one and
//! threads it (as `Option<&CoreInstruments>`) into transit and retrieval;
//! standalone callers of [`crate::transit::drive`] pay nothing.

use std::sync::Arc;

use tap_id::Id;
use tap_metrics::{Counter, Histogram, Registry};

/// Metric names recorded by tap-core.
///
/// * `core.onion.wrap_us` — histogram, wall-clock microseconds to seal one
///   complete onion (encrypt side; the fused codec applies every layer's
///   keystream in one pass, so the sample covers all layers).
/// * `core.onion.peel_us` — histogram, wall-clock microseconds to open one
///   onion layer (decrypt side, recorded per hop during transit).
/// * `core.transit.retries` — counter, direct-address (§5 hint) attempts
///   that failed and fell back to overlay routing, plus per-hop resends
///   after a delivery timeout in the timed driver.
/// * `core.transit.backoff_us` — histogram, microseconds slept between a
///   timeout and the resend it triggered (exponential per attempt).
/// * `core.transit.giveups` — counter, hops abandoned after the retry
///   budget was exhausted.
/// * `core.tha.takeovers` — counter, tunnel hops served by a replica
///   candidate instead of the node that was root at deployment time. Each
///   takeover also emits a `core.tha.takeover` event naming the hopid.
/// * `core.tha.re_replications` — counter, THA anchors whose replica set
///   fell under `k` (takeover, partition) and was rebuilt onto the current
///   k-closest nodes. Each also emits a `core.tha.re_replication` event.
/// * `core.mp.fragments_delivered` — counter, erasure-coded fragments that
///   completed their stripe during a multipath transfer.
/// * `core.mp.stripe_giveups` — counter, individual stripes abandoned
///   (retry budget, broken tunnel) beneath a transfer that may still
///   succeed from the surviving fragments.
/// * `core.mp.laggards_cancelled` — counter, in-flight stripes whose
///   watchdogs were cancelled because `k` other fragments already
///   reconstructed the transfer.
/// * `core.ec.degraded` — counter, multipath transfers that could not form
///   the configured `n` disjoint tunnels and fell back to fewer stripes or
///   single-path. Each also emits a `core.ec.degraded` event.
#[derive(Clone)]
pub struct CoreInstruments {
    registry: Registry,
    /// Per-layer onion seal (encrypt) timing, microseconds.
    pub onion_wrap_us: Arc<Histogram>,
    /// Per-layer onion open (decrypt) timing, microseconds.
    pub onion_peel_us: Arc<Histogram>,
    /// Hint attempts that failed and retried via overlay routing, and
    /// timed-driver resends after a timeout.
    pub transit_retries: Arc<Counter>,
    /// Microseconds between a timeout and its resend.
    pub transit_backoff_us: Arc<Histogram>,
    /// Hops abandoned after the retry budget ran out.
    pub transit_giveups: Arc<Counter>,
    /// Hops served by a replica candidate rather than the original root.
    pub tha_takeovers: Arc<Counter>,
    /// THA replica sets rebuilt after falling under `k`.
    pub tha_re_replications: Arc<Counter>,
    /// Erasure-coded fragments delivered across all multipath transfers.
    pub mp_fragments_delivered: Arc<Counter>,
    /// Stripes abandoned beneath a (possibly still successful) transfer.
    pub mp_stripe_giveups: Arc<Counter>,
    /// Laggard stripes cancelled after `k` fragments already arrived.
    pub mp_laggards_cancelled: Arc<Counter>,
    /// Multipath transfers that degraded below the configured stripe count.
    pub ec_degraded: Arc<Counter>,
}

impl CoreInstruments {
    /// Resolve (or create) this crate's instruments in `registry`.
    pub fn new(registry: &Registry) -> Self {
        CoreInstruments {
            registry: registry.clone(),
            onion_wrap_us: registry.histogram("core.onion.wrap_us"),
            onion_peel_us: registry.histogram("core.onion.peel_us"),
            transit_retries: registry.counter("core.transit.retries"),
            transit_backoff_us: registry.histogram("core.transit.backoff_us"),
            transit_giveups: registry.counter("core.transit.giveups"),
            tha_takeovers: registry.counter("core.tha.takeovers"),
            tha_re_replications: registry.counter("core.tha.re_replications"),
            mp_fragments_delivered: registry.counter("core.mp.fragments_delivered"),
            mp_stripe_giveups: registry.counter("core.mp.stripe_giveups"),
            mp_laggards_cancelled: registry.counter("core.mp.laggards_cancelled"),
            ec_degraded: registry.counter("core.ec.degraded"),
        }
    }

    /// The registry these instruments record into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Record a replica takeover of `hopid` by `node` (counter + event).
    /// tap-core has no clock of its own, so events carry `at_micros = 0`;
    /// the journal preserves insertion order regardless.
    pub fn record_takeover(&self, hopid: Id, node: Id) {
        self.tha_takeovers.inc();
        self.registry.emit(
            0,
            "core.tha.takeover",
            format!("hopid={hopid:?} node={node:?}"),
        );
    }

    /// Record a THA replica-set rebuild for `hopid` (counter + event).
    pub fn record_re_replication(&self, hopid: Id, holders_now: usize) {
        self.tha_re_replications.inc();
        self.registry.emit(
            0,
            "core.tha.re_replication",
            format!("hopid={hopid:?} holders={holders_now}"),
        );
    }

    /// Record a multipath transfer that could not form its configured `n`
    /// disjoint tunnels and degraded to `got` stripes (counter + event).
    /// Degradation is explicit policy, never a panic, so the journal names
    /// the shortfall.
    pub fn record_ec_degraded(&self, wanted: usize, got: usize) {
        self.ec_degraded.inc();
        self.registry.emit(
            0,
            "core.ec.degraded",
            format!("wanted={wanted} stripes, formed {got}"),
        );
    }
}

impl std::fmt::Debug for CoreInstruments {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreInstruments").finish_non_exhaustive()
    }
}
