//! Cached [`tap_metrics`] handles for this crate's hot paths.
//!
//! All tap-core instrumentation flows through [`CoreInstruments`]: one
//! registry lookup per metric at construction, plain atomic operations on
//! the cached handles afterwards. [`crate::system::TapSystem`] owns one and
//! threads it (as `Option<&CoreInstruments>`) into transit and retrieval;
//! standalone callers of [`crate::transit::drive`] pay nothing.

use std::sync::Arc;

use tap_id::Id;
use tap_metrics::{Counter, Histogram, Registry};

/// Metric names recorded by tap-core.
///
/// * `core.onion.wrap_us` — histogram, wall-clock microseconds to seal one
///   onion layer (encrypt side).
/// * `core.onion.peel_us` — histogram, wall-clock microseconds to open one
///   onion layer (decrypt side, recorded per hop during transit).
/// * `core.transit.retries` — counter, direct-address (§5 hint) attempts
///   that failed and fell back to overlay routing.
/// * `core.tha.takeovers` — counter, tunnel hops served by a replica
///   candidate instead of the node that was root at deployment time. Each
///   takeover also emits a `core.tha.takeover` event naming the hopid.
#[derive(Clone)]
pub struct CoreInstruments {
    registry: Registry,
    /// Per-layer onion seal (encrypt) timing, microseconds.
    pub onion_wrap_us: Arc<Histogram>,
    /// Per-layer onion open (decrypt) timing, microseconds.
    pub onion_peel_us: Arc<Histogram>,
    /// Hint attempts that failed and retried via overlay routing.
    pub transit_retries: Arc<Counter>,
    /// Hops served by a replica candidate rather than the original root.
    pub tha_takeovers: Arc<Counter>,
}

impl CoreInstruments {
    /// Resolve (or create) this crate's instruments in `registry`.
    pub fn new(registry: &Registry) -> Self {
        CoreInstruments {
            registry: registry.clone(),
            onion_wrap_us: registry.histogram("core.onion.wrap_us"),
            onion_peel_us: registry.histogram("core.onion.peel_us"),
            transit_retries: registry.counter("core.transit.retries"),
            tha_takeovers: registry.counter("core.tha.takeovers"),
        }
    }

    /// The registry these instruments record into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Record a replica takeover of `hopid` by `node` (counter + event).
    /// tap-core has no clock of its own, so events carry `at_micros = 0`;
    /// the journal preserves insertion order regardless.
    pub fn record_takeover(&self, hopid: Id, node: Id) {
        self.tha_takeovers.inc();
        self.registry.emit(
            0,
            "core.tha.takeover",
            format!("hopid={hopid:?} node={node:?}"),
        );
    }
}

impl std::fmt::Debug for CoreInstruments {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreInstruments").finish_non_exhaustive()
    }
}
