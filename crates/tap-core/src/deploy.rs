//! Anonymous THA deployment and verified deletion (§3.3–§3.4).
//!
//! A node cannot deploy its anchors directly — storage nodes would link the
//! hopids to its address. Instead it builds a one-shot **Onion Routing**
//! path over nodes whose public keys it knows and hands each relay one
//! anchor to store: "It creates an onion carrying instructions for each
//! node on the Onion path to store a THA on the system" (§3.3). If any
//! relay on the path is dead the whole deployment aborts — acceptable,
//! says the paper, because deployment is not performance critical and the
//! node simply retries over another path.
//!
//! Storage nodes charge a CPU puzzle per deposit (the §3.3 flood defence);
//! deletion requires presenting the pre-image of the stored `H(PW)` (§3.4).

use rand::Rng;
use tap_crypto::{KeyPair, Puzzle, SealedBox};
use tap_id::{Id, ID_BYTES};
use tap_pastry::storage::ReplicaStore;
use tap_pastry::Overlay;

use crate::tha::Tha;

/// Why a deployment failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// A relay on the bootstrap onion path is dead; deployment aborts.
    RelayDown {
        /// The dead relay.
        node: Id,
    },
    /// An onion layer failed to open at a relay (key mismatch/tampering).
    BadOnion {
        /// The relay that could not open its layer.
        node: Id,
    },
    /// The storing node rejected the deposit (duplicate hopid).
    Rejected {
        /// The duplicate hop identifier.
        hopid: Id,
    },
    /// The depositor's puzzle solution did not verify.
    PuzzleFailed {
        /// The hop whose deposit was refused.
        hopid: Id,
    },
    /// Caller passed mismatched relay/anchor counts.
    Mismatched,
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::RelayDown { node } => write!(f, "bootstrap relay {node:?} is down"),
            DeployError::BadOnion { node } => write!(f, "onion layer failed at {node:?}"),
            DeployError::Rejected { hopid } => write!(f, "deposit rejected for {hopid:?}"),
            DeployError::PuzzleFailed { hopid } => {
                write!(f, "puzzle verification failed for {hopid:?}")
            }
            DeployError::Mismatched => write!(f, "one anchor per relay is required"),
        }
    }
}

impl std::error::Error for DeployError {}

/// Why a deletion was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteError {
    /// No anchor is stored under that hopid.
    Unknown,
    /// The presented password does not hash to the stored `H(PW)`.
    WrongPassword,
}

impl std::fmt::Display for DeleteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeleteError::Unknown => write!(f, "no such THA"),
            DeleteError::WrongPassword => write!(f, "password proof rejected"),
        }
    }
}

impl std::error::Error for DeleteError {}

/// One relay's decrypted instruction: the anchor it must deposit, plus the
/// sealed remainder for the next relay (if any).
struct Instruction {
    tha: Tha,
    next_relay: Option<Id>,
    inner: Option<SealedBox>,
}

impl Instruction {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.tha.hopid.as_bytes());
        out.extend_from_slice(self.tha.key.as_bytes());
        out.extend_from_slice(&self.tha.pw_hash);
        match (&self.next_relay, &self.inner) {
            (Some(next), Some(boxed)) => {
                out.push(1);
                out.extend_from_slice(next.as_bytes());
                out.extend_from_slice(&boxed.ephemeral.0);
                out.extend_from_slice(&(boxed.sealed.len() as u32).to_be_bytes());
                out.extend_from_slice(&boxed.sealed);
            }
            _ => out.push(0),
        }
        out
    }

    fn decode(bytes: &[u8]) -> Option<Instruction> {
        let tha_len = ID_BYTES + 32 + 32;
        let (tha_bytes, rest) = bytes.split_at_checked(tha_len)?;
        let mut hopid = [0u8; ID_BYTES];
        hopid.copy_from_slice(&tha_bytes[..ID_BYTES]);
        let mut key = [0u8; 32];
        key.copy_from_slice(&tha_bytes[ID_BYTES..ID_BYTES + 32]);
        let mut pw_hash = [0u8; 32];
        pw_hash.copy_from_slice(&tha_bytes[ID_BYTES + 32..]);
        let tha = Tha {
            hopid: Id::from_bytes(hopid),
            key: tap_crypto::SymmetricKey::from_bytes(key),
            pw_hash,
        };
        let (&flag, rest) = rest.split_first()?;
        if flag == 0 {
            return rest.is_empty().then_some(Instruction {
                tha,
                next_relay: None,
                inner: None,
            });
        }
        let (next_bytes, rest) = rest.split_at_checked(ID_BYTES)?;
        let mut next = [0u8; ID_BYTES];
        next.copy_from_slice(next_bytes);
        let (eph_bytes, rest) = rest.split_at_checked(32)?;
        let mut eph = [0u8; 32];
        eph.copy_from_slice(eph_bytes);
        let (len_bytes, rest) = rest.split_at_checked(4)?;
        let len =
            u32::from_be_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        if rest.len() != len {
            return None;
        }
        Some(Instruction {
            tha,
            next_relay: Some(Id::from_bytes(next)),
            inner: Some(SealedBox {
                ephemeral: tap_crypto::PublicKey(eph),
                sealed: rest.to_vec(),
            }),
        })
    }
}

/// Report of a successful deployment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeployReport {
    /// Anchors deposited, in path order.
    pub deposited: Vec<Id>,
    /// Total puzzle-solving work performed (sum of winning nonces — a
    /// proxy for hashes burned, useful for the flood-defence ablation).
    pub puzzle_work: u64,
}

/// Look up a node's public key. The simulator's stand-in for the PKI the
/// paper assumes ("relying on a public key infrastructure … each node has
/// a pair of private and public keys").
pub trait KeyDirectory {
    /// The keypair of `node`, if it exists.
    fn keypair(&self, node: Id) -> Option<&KeyPair>;
}

impl KeyDirectory for std::collections::HashMap<Id, KeyPair> {
    fn keypair(&self, node: Id) -> Option<&KeyPair> {
        self.get(&node)
    }
}

/// Deploy one anchor per relay through an onion path (§3.3).
///
/// Builds the nested sealed boxes, then plays each relay's role: open the
/// layer, solve the storage puzzle, deposit the anchor onto the k closest
/// nodes, forward the remainder. All-or-nothing: a dead relay or rejected
/// deposit aborts with the anchors deposited so far rolled back, so the
/// caller can retry on a fresh path.
pub fn deploy_via_onion<R: Rng + ?Sized>(
    rng: &mut R,
    overlay: &Overlay,
    store: &mut ReplicaStore<Tha>,
    keys: &dyn KeyDirectory,
    relays: &[Id],
    anchors: &[Tha],
    puzzle_difficulty: u8,
) -> Result<DeployReport, DeployError> {
    if relays.is_empty() || relays.len() != anchors.len() {
        return Err(DeployError::Mismatched);
    }

    // Build the onion inside-out.
    let mut inner: Option<(Id, SealedBox)> = None;
    for (relay, tha) in relays.iter().zip(anchors.iter()).rev() {
        let (next_relay, inner_box) = match inner.take() {
            Some((next, boxed)) => (Some(next), Some(boxed)),
            None => (None, None),
        };
        let instruction = Instruction {
            tha: tha.clone(),
            next_relay,
            inner: inner_box,
        };
        let pk = keys
            .keypair(*relay)
            .ok_or(DeployError::RelayDown { node: *relay })?
            .public();
        inner = Some((*relay, SealedBox::seal(rng, &pk, &instruction.encode())));
    }
    let (first_relay, mut cursor) = inner.expect("at least one relay");

    // Play each relay.
    let mut report = DeployReport::default();
    let mut relay = first_relay;
    let result: Result<(), DeployError> = loop {
        if !overlay.is_live(relay) {
            break Err(DeployError::RelayDown { node: relay });
        }
        let kp = match keys.keypair(relay) {
            Some(kp) => kp,
            None => break Err(DeployError::RelayDown { node: relay }),
        };
        let plain = match kp.open(&cursor) {
            Ok(p) => p,
            Err(_) => break Err(DeployError::BadOnion { node: relay }),
        };
        let instruction = match Instruction::decode(&plain) {
            Some(i) => i,
            None => break Err(DeployError::BadOnion { node: relay }),
        };

        // Storage-side flood defence: the root of the hopid issues a
        // puzzle, the depositing relay burns CPU, the root verifies.
        let hopid = instruction.tha.hopid;
        let puzzle = Puzzle::issue(rng, puzzle_difficulty);
        let solution = puzzle.solve(hopid.as_bytes());
        if !puzzle.verify(hopid.as_bytes(), &solution) {
            break Err(DeployError::PuzzleFailed { hopid });
        }
        report.puzzle_work += solution.nonce;

        if !matches!(store.insert(overlay, hopid, instruction.tha), Ok(true)) {
            break Err(DeployError::Rejected { hopid });
        }
        report.deposited.push(hopid);

        match (instruction.next_relay, instruction.inner) {
            (Some(next), Some(boxed)) => {
                relay = next;
                cursor = boxed;
            }
            _ => break Ok(()),
        }
    };

    match result {
        Ok(()) => Ok(report),
        Err(e) => {
            // Roll back partial deposits so a retry starts clean.
            for hopid in &report.deposited {
                store.remove(*hopid);
            }
            Err(e)
        }
    }
}

/// Deploy anchors through an **existing tunnel** instead of an onion
/// bootstrap path — the §3.3 future-work variant ("a node can also rent a
/// trusted node's anonymous tunnels to deploy its initial THAs"), and the
/// steady-state mechanism once a node has its first tunnel ("once the node
/// is able to form the first tunnel using the deployed THAs, it will use
/// this tunnel to deploy other THAs").
///
/// The anchors ride the tunnel as its core payload; the tail hop node acts
/// as the depositor, solving one puzzle per anchor. The storing nodes see
/// only the tail — never the owner.
pub fn deploy_via_tunnel<R: Rng + ?Sized>(
    rng: &mut R,
    overlay: &mut Overlay,
    store: &mut ReplicaStore<Tha>,
    from: Id,
    tunnel: &crate::tunnel::Tunnel,
    anchors: &[Tha],
    puzzle_difficulty: u8,
) -> Result<DeployReport, TunnelDeployError> {
    if anchors.is_empty() {
        return Err(TunnelDeployError::NothingToDeploy);
    }
    // Serialize the anchors as the tunnel core.
    let mut core = Vec::with_capacity(anchors.len() * (ID_BYTES + 64) + 4);
    core.extend_from_slice(&(anchors.len() as u32).to_be_bytes());
    for a in anchors {
        core.extend_from_slice(a.hopid.as_bytes());
        core.extend_from_slice(a.key.as_bytes());
        core.extend_from_slice(&a.pw_hash);
    }
    // The tail delivers "to itself": address the core at the tail's own
    // hopid root by using an anchorless terminal right behind the tail.
    let onion = tunnel.build_onion(
        rng,
        crate::wire::Destination::Node(
            overlay
                .owner_of(tunnel.hop_ids()[tunnel.len() - 1])
                .ok_or(TunnelDeployError::TunnelBroken)?,
        ),
        &core,
        None,
    );
    let (delivery, _) = crate::transit::drive(
        overlay,
        store,
        from,
        tunnel.entry_hopid(),
        onion,
        crate::transit::TransitOptions::default(),
    )
    .map_err(|_| TunnelDeployError::TunnelBroken)?;
    let (depositor, payload) = match delivery {
        crate::transit::Delivery::ToDestination { node, core } => (node, core),
        _ => return Err(TunnelDeployError::TunnelBroken),
    };
    let _ = depositor; // the depositor's identity is what the storers see

    // The tail decodes and deposits each anchor, paying the puzzles.
    let mut report = DeployReport::default();
    let (count_b, mut rest) = payload
        .split_at_checked(4)
        .ok_or(TunnelDeployError::Malformed)?;
    let count = u32::from_be_bytes([count_b[0], count_b[1], count_b[2], count_b[3]]) as usize;
    let mut decoded = Vec::with_capacity(count);
    for _ in 0..count {
        let (hop_b, r) = rest
            .split_at_checked(ID_BYTES)
            .ok_or(TunnelDeployError::Malformed)?;
        let (key_b, r) = r.split_at_checked(32).ok_or(TunnelDeployError::Malformed)?;
        let (pw_b, r) = r.split_at_checked(32).ok_or(TunnelDeployError::Malformed)?;
        rest = r;
        decoded.push(Tha {
            hopid: Id::from_bytes(hop_b.try_into().expect("sized")),
            key: tap_crypto::SymmetricKey::from_bytes(key_b.try_into().expect("sized")),
            pw_hash: pw_b.try_into().expect("sized"),
        });
    }
    if !rest.is_empty() {
        return Err(TunnelDeployError::Malformed);
    }
    for tha in decoded {
        let hopid = tha.hopid;
        let puzzle = Puzzle::issue(rng, puzzle_difficulty);
        let solution = puzzle.solve(hopid.as_bytes());
        // Fail closed (matching the onion path): a storer must never
        // accept a deposit whose flood-defence puzzle does not verify.
        if !puzzle.verify(hopid.as_bytes(), &solution) {
            for h in &report.deposited {
                store.remove(*h);
            }
            return Err(TunnelDeployError::PuzzleFailed { hopid });
        }
        report.puzzle_work += solution.nonce;
        if !matches!(store.insert(overlay, hopid, tha), Ok(true)) {
            // Roll back, mirroring the onion-path semantics.
            for h in &report.deposited {
                store.remove(*h);
            }
            return Err(TunnelDeployError::Rejected { hopid });
        }
        report.deposited.push(hopid);
    }
    Ok(report)
}

/// Why a via-tunnel deployment failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TunnelDeployError {
    /// Empty anchor list.
    NothingToDeploy,
    /// The carrying tunnel could not deliver.
    TunnelBroken,
    /// The payload did not decode at the tail.
    Malformed,
    /// A hopid was already taken.
    Rejected {
        /// The duplicate hop identifier.
        hopid: Id,
    },
    /// The flood-defence puzzle failed to verify at the storer.
    PuzzleFailed {
        /// The anchor whose puzzle failed.
        hopid: Id,
    },
}

impl std::fmt::Display for TunnelDeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TunnelDeployError::NothingToDeploy => write!(f, "no anchors supplied"),
            TunnelDeployError::TunnelBroken => write!(f, "carrying tunnel failed"),
            TunnelDeployError::Malformed => write!(f, "deploy payload malformed"),
            TunnelDeployError::Rejected { hopid } => {
                write!(f, "deposit rejected for {hopid:?}")
            }
            TunnelDeployError::PuzzleFailed { hopid } => {
                write!(f, "storage puzzle failed for {hopid:?}")
            }
        }
    }
}

impl std::error::Error for TunnelDeployError {}

/// Delete a THA by proving knowledge of its password (§3.4).
pub fn delete_tha(
    store: &mut ReplicaStore<Tha>,
    hopid: Id,
    password: &[u8; 32],
) -> Result<(), DeleteError> {
    let rec = store.get(hopid).ok_or(DeleteError::Unknown)?;
    if !rec.value.verify_password(password) {
        return Err(DeleteError::WrongPassword);
    }
    store.remove(hopid);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tha::ThaFactory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;
    use tap_pastry::PastryConfig;

    struct Fx {
        overlay: Overlay,
        store: ReplicaStore<Tha>,
        keys: HashMap<Id, KeyPair>,
        rng: StdRng,
    }

    fn fixture(n: usize, seed: u64) -> Fx {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = Overlay::new(PastryConfig::paper_defaults());
        let mut keys = HashMap::new();
        for _ in 0..n {
            let id = overlay.add_random_node(&mut rng);
            keys.insert(id, KeyPair::generate(&mut rng));
        }
        Fx {
            overlay,
            store: ReplicaStore::new(3),
            keys,
            rng,
        }
    }

    fn anchors(fx: &mut Fx, count: usize) -> Vec<(Tha, [u8; 32])> {
        let node = fx.overlay.random_node(&mut fx.rng).unwrap();
        let mut f = ThaFactory::new(&mut fx.rng, node);
        (0..count)
            .map(|_| {
                let s = f.next(&mut fx.rng);
                (s.stored(), s.password)
            })
            .collect()
    }

    fn relays(fx: &mut Fx, count: usize) -> Vec<Id> {
        let mut out = Vec::new();
        while out.len() < count {
            let n = fx.overlay.random_node(&mut fx.rng).unwrap();
            if !out.contains(&n) {
                out.push(n);
            }
        }
        out
    }

    #[test]
    fn deploy_stores_every_anchor() {
        let mut fx = fixture(100, 1);
        let aps = anchors(&mut fx, 3);
        let path = relays(&mut fx, 3);
        let thas: Vec<Tha> = aps.iter().map(|(t, _)| t.clone()).collect();
        let report = deploy_via_onion(
            &mut fx.rng,
            &fx.overlay,
            &mut fx.store,
            &fx.keys,
            &path,
            &thas,
            4,
        )
        .unwrap();
        assert_eq!(report.deposited.len(), 3);
        for (tha, _) in &aps {
            assert_eq!(
                fx.store.holders(tha.hopid),
                fx.overlay.k_closest(tha.hopid, 3)
            );
        }
    }

    #[test]
    fn dead_relay_aborts_and_rolls_back() {
        let mut fx = fixture(100, 2);
        let aps = anchors(&mut fx, 3);
        let path = relays(&mut fx, 3);
        fx.overlay.remove_node(path[1]);
        let thas: Vec<Tha> = aps.iter().map(|(t, _)| t.clone()).collect();
        let err = deploy_via_onion(
            &mut fx.rng,
            &fx.overlay,
            &mut fx.store,
            &fx.keys,
            &path,
            &thas,
            0,
        )
        .unwrap_err();
        assert_eq!(err, DeployError::RelayDown { node: path[1] });
        assert!(fx.store.is_empty(), "partial deposits rolled back");
    }

    #[test]
    fn retry_on_fresh_path_succeeds() {
        // "A node can always try to use another Onion path to deploy its
        // initial THAs until the first anonymous tunnel is able to be
        // formed."
        let mut fx = fixture(100, 3);
        let aps = anchors(&mut fx, 2);
        let thas: Vec<Tha> = aps.iter().map(|(t, _)| t.clone()).collect();
        let bad_path = relays(&mut fx, 2);
        fx.overlay.remove_node(bad_path[0]);
        assert!(deploy_via_onion(
            &mut fx.rng,
            &fx.overlay,
            &mut fx.store,
            &fx.keys,
            &bad_path,
            &thas,
            0,
        )
        .is_err());
        let good_path: Vec<Id> = relays(&mut fx, 2);
        deploy_via_onion(
            &mut fx.rng,
            &fx.overlay,
            &mut fx.store,
            &fx.keys,
            &good_path,
            &thas,
            0,
        )
        .unwrap();
        assert_eq!(fx.store.len(), 2);
    }

    #[test]
    fn duplicate_hopid_rejected() {
        let mut fx = fixture(100, 4);
        let aps = anchors(&mut fx, 1);
        let thas: Vec<Tha> = aps.iter().map(|(t, _)| t.clone()).collect();
        let p1 = relays(&mut fx, 1);
        deploy_via_onion(
            &mut fx.rng,
            &fx.overlay,
            &mut fx.store,
            &fx.keys,
            &p1,
            &thas,
            0,
        )
        .unwrap();
        let p2 = relays(&mut fx, 1);
        let err = deploy_via_onion(
            &mut fx.rng,
            &fx.overlay,
            &mut fx.store,
            &fx.keys,
            &p2,
            &thas,
            0,
        )
        .unwrap_err();
        assert_eq!(
            err,
            DeployError::Rejected {
                hopid: thas[0].hopid
            }
        );
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let mut fx = fixture(50, 5);
        let aps = anchors(&mut fx, 2);
        let thas: Vec<Tha> = aps.iter().map(|(t, _)| t.clone()).collect();
        let path = relays(&mut fx, 3);
        assert_eq!(
            deploy_via_onion(
                &mut fx.rng,
                &fx.overlay,
                &mut fx.store,
                &fx.keys,
                &path,
                &thas,
                0,
            ),
            Err(DeployError::Mismatched)
        );
        assert_eq!(
            deploy_via_onion(
                &mut fx.rng,
                &fx.overlay,
                &mut fx.store,
                &fx.keys,
                &[],
                &[],
                0,
            ),
            Err(DeployError::Mismatched)
        );
    }

    #[test]
    fn puzzle_work_scales_with_difficulty() {
        let mut fx = fixture(100, 6);
        let mut total_easy = 0u64;
        let mut total_hard = 0u64;
        for round in 0..8 {
            let aps = anchors(&mut fx, 1);
            let thas: Vec<Tha> = aps.iter().map(|(t, _)| t.clone()).collect();
            let path = relays(&mut fx, 1);
            let difficulty = if round % 2 == 0 { 2 } else { 10 };
            let report = deploy_via_onion(
                &mut fx.rng,
                &fx.overlay,
                &mut fx.store,
                &fx.keys,
                &path,
                &thas,
                difficulty,
            )
            .unwrap();
            if difficulty == 2 {
                total_easy += report.puzzle_work;
            } else {
                total_hard += report.puzzle_work;
            }
        }
        assert!(
            total_hard > total_easy,
            "hard puzzles ({total_hard}) should cost more than easy ({total_easy})"
        );
    }

    #[test]
    fn delete_requires_correct_password() {
        let mut fx = fixture(80, 7);
        let aps = anchors(&mut fx, 1);
        let (tha, pw) = (&aps[0].0, aps[0].1);
        let path = relays(&mut fx, 1);
        deploy_via_onion(
            &mut fx.rng,
            &fx.overlay,
            &mut fx.store,
            &fx.keys,
            &path,
            std::slice::from_ref(tha),
            0,
        )
        .unwrap();

        let mut wrong = pw;
        wrong[3] ^= 0x10;
        assert_eq!(
            delete_tha(&mut fx.store, tha.hopid, &wrong),
            Err(DeleteError::WrongPassword)
        );
        assert!(fx.store.get(tha.hopid).is_some(), "still stored");
        delete_tha(&mut fx.store, tha.hopid, &pw).unwrap();
        assert!(fx.store.get(tha.hopid).is_none());
        assert_eq!(
            delete_tha(&mut fx.store, tha.hopid, &pw),
            Err(DeleteError::Unknown)
        );
    }

    #[test]
    fn deploy_via_tunnel_uses_tail_as_depositor() {
        let mut fx = fixture(200, 9);
        // Carrier tunnel with direct anchors.
        let carrier_owner = fx.overlay.random_node(&mut fx.rng).unwrap();
        let mut factory = ThaFactory::new(&mut fx.rng, carrier_owner);
        let hops: Vec<_> = (0..3)
            .map(|_| {
                let s = factory.next(&mut fx.rng);
                fx.store.insert(&fx.overlay, s.hopid, s.stored()).unwrap();
                s
            })
            .collect();
        let carrier = crate::tunnel::Tunnel::new(hops);

        // Fresh anchors to deploy through it.
        let fresh: Vec<Tha> = (0..4).map(|_| factory.next(&mut fx.rng).stored()).collect();
        let report = deploy_via_tunnel(
            &mut fx.rng,
            &mut fx.overlay,
            &mut fx.store,
            carrier_owner,
            &carrier,
            &fresh,
            4,
        )
        .unwrap();
        assert_eq!(report.deposited.len(), 4);
        for t in &fresh {
            assert_eq!(fx.store.holders(t.hopid), fx.overlay.k_closest(t.hopid, 3));
        }
        assert!(report.puzzle_work > 0, "the tail paid for the deposits");
    }

    #[test]
    fn deploy_via_tunnel_fails_cleanly_on_broken_carrier() {
        let mut fx = fixture(200, 10);
        let carrier_owner = fx.overlay.random_node(&mut fx.rng).unwrap();
        let mut factory = ThaFactory::new(&mut fx.rng, carrier_owner);
        let hops: Vec<_> = (0..3)
            .map(|_| {
                let s = factory.next(&mut fx.rng);
                fx.store.insert(&fx.overlay, s.hopid, s.stored()).unwrap();
                s
            })
            .collect();
        let carrier = crate::tunnel::Tunnel::new(hops);
        // Destroy all replicas of the middle hop.
        let victim = carrier.hop_ids()[1];
        for holder in fx.store.holders(victim).to_vec() {
            if holder != carrier_owner {
                fx.overlay.remove_node(holder);
            }
        }
        let fresh: Vec<Tha> = (0..2).map(|_| factory.next(&mut fx.rng).stored()).collect();
        let before = fx.store.len();
        let err = deploy_via_tunnel(
            &mut fx.rng,
            &mut fx.overlay,
            &mut fx.store,
            carrier_owner,
            &carrier,
            &fresh,
            0,
        )
        .unwrap_err();
        assert_eq!(err, TunnelDeployError::TunnelBroken);
        assert_eq!(fx.store.len(), before, "nothing deposited");
    }

    #[test]
    fn deploy_via_tunnel_rejects_empty() {
        let mut fx = fixture(60, 11);
        let owner = fx.overlay.random_node(&mut fx.rng).unwrap();
        let mut factory = ThaFactory::new(&mut fx.rng, owner);
        let s = factory.next(&mut fx.rng);
        fx.store.insert(&fx.overlay, s.hopid, s.stored()).unwrap();
        let carrier = crate::tunnel::Tunnel::new(vec![s]);
        assert_eq!(
            deploy_via_tunnel(
                &mut fx.rng,
                &mut fx.overlay,
                &mut fx.store,
                owner,
                &carrier,
                &[],
                0,
            ),
            Err(TunnelDeployError::NothingToDeploy)
        );
    }

    #[test]
    fn instruction_codec_roundtrip() {
        let mut rng = StdRng::seed_from_u64(8);
        let tha = Tha {
            hopid: Id::random(&mut rng),
            key: tap_crypto::SymmetricKey::generate(&mut rng),
            pw_hash: [7u8; 32],
        };
        let terminal = Instruction {
            tha: tha.clone(),
            next_relay: None,
            inner: None,
        };
        let decoded = Instruction::decode(&terminal.encode()).unwrap();
        assert_eq!(decoded.tha, tha);
        assert!(decoded.next_relay.is_none());

        let kp = KeyPair::generate(&mut rng);
        let chained = Instruction {
            tha: tha.clone(),
            next_relay: Some(Id::from_u64(5)),
            inner: Some(SealedBox::seal(&mut rng, &kp.public(), b"inner")),
        };
        let decoded = Instruction::decode(&chained.encode()).unwrap();
        assert_eq!(decoded.next_relay, Some(Id::from_u64(5)));
        assert_eq!(
            kp.open(&decoded.inner.unwrap()).unwrap(),
            b"inner",
            "nested box survives the codec"
        );
        // Garbage is rejected, not panicked on.
        assert!(Instruction::decode(&[1, 2, 3]).is_none());
    }
}
