//! Offline stand-in for the `proptest` API surface used by this workspace.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of proptest the TAP test suites rely on: the [`proptest!`] macro,
//! `any::<T>()`, integer-range strategies, tuple strategies, and
//! [`collection::vec`]. Each property runs a fixed number of random cases
//! from a seed derived from the test name, so failures are reproducible
//! run-to-run. There is no shrinking: a failing case prints its debug
//! representation instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Number of random cases each property runs.
pub const CASES: u32 = 96;
/// Cap on rejected (`prop_assume!`) cases before the property gives up.
pub const MAX_REJECTS: u32 = CASES * 16;

/// Case generator handed to strategies. Wraps the workspace [`StdRng`].
pub struct Gen(StdRng);

impl Gen {
    /// Deterministic generator derived from the test's name.
    pub fn deterministic(name: &str) -> Gen {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Gen(StdRng::seed_from_u64(h))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject,
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

/// A source of random values for one macro parameter.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draw one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(gen: &mut Gen) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(gen: &mut Gen) -> Self {
                gen.rng().gen()
            }
        }
    )*};
}
impl_arbitrary_std!(u8, u32, u64, usize, bool);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(gen: &mut Gen) -> Self {
        gen.rng().gen()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                gen.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                gen.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                ($(self.$i.generate(gen),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Gen, Strategy};

    /// Length specification for [`vec`]: an exact size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` draws with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
            use rand::Rng as _;
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                gen.rng().gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(gen)).collect()
        }
    }
}

/// Runner configuration. Only `with_cases` is honored; the [`proptest!`]
/// macro pattern-matches the call, so this type exists for name resolution
/// in `use proptest::prelude::*` contexts.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig;

impl ProptestConfig {
    /// Run `n` cases per property.
    pub fn with_cases(n: u32) -> u32 {
        n
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Define property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn prop_name(a in any::<u64>(), b in 0usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // With a leading `#![proptest_config(...)]`: honor an explicit
    // `ProptestConfig::with_cases(N)` by overriding the case count.
    (#![proptest_config($crate::ProptestConfig::with_cases($cases:expr))] $($rest:tt)+) => {
        $crate::proptest!(@cases ($cases) $($rest)+);
    };
    (#![proptest_config(ProptestConfig::with_cases($cases:expr))] $($rest:tt)+) => {
        $crate::proptest!(@cases ($cases) $($rest)+);
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest!(@cases ($crate::CASES) $($(#[$meta])* fn $name($($arg in $strat),+) $body)+);
    };
    (@cases ($cases:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut gen = $crate::Gen::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let cases: u32 = $cases;
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < cases {
                    attempts += 1;
                    assert!(
                        attempts <= cases.saturating_mul(16),
                        "prop_assume! rejected too many cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut gen);)+
                    // Snapshot inputs before the body runs: the closure may
                    // consume them by move.
                    let inputs = format!("{:?}", ($(&$arg,)+));
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed: {}\ninputs: {}",
                                stringify!($name),
                                msg,
                                inputs
                            );
                        }
                    }
                }
            }
        )+
    };
}

/// Assert inside a property body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} == {} failed: {:?} vs {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} ({:?} vs {:?})",
                format!($($fmt)+),
                lhs,
                rhs
            )));
        }
    }};
}

/// `assert_ne!` inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs != rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} != {} failed: both {:?}",
                stringify!($a),
                stringify!($b),
                lhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs != rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} (both {:?})",
                format!($($fmt)+),
                lhs
            )));
        }
    }};
}

/// Reject the current case's inputs; the runner draws fresh ones.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 0usize..10, b in 1u32..=8) {
            prop_assert!(a < 10);
            prop_assert!((1..=8).contains(&b));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn exact_vec_size(v in crate::collection::vec(any::<u8>(), 6usize)) {
            prop_assert_eq!(v.len(), 6);
        }

        #[test]
        fn tuples_and_assume(pair in (0u64..100, 0u64..100)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(a in 0usize..4) {
                prop_assert!(a > 100, "a was {}", a);
            }
        }
        always_fails();
    }
}
