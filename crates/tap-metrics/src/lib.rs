//! Structured observability for the TAP simulation stack.
//!
//! The simulator crates used to report behaviour through ad-hoc `println!`
//! calls and hand-carried tallies. This crate replaces that with three small,
//! dependency-free primitives that are cheap enough to leave enabled:
//!
//! * [`Counter`] — a monotonically increasing atomic count.
//! * [`Histogram`] — a fixed-footprint log₂-bucketed value distribution
//!   (65 buckets cover the whole `u64` domain; recording is two relaxed
//!   atomic adds and two compare-exchange loops for min/max).
//! * [`EventSink`] / [`Journal`] — a pluggable channel for discrete,
//!   timestamped events (timer drift, THA takeovers, replica evictions).
//!   The default sink drops events; installing a [`Journal`] keeps the most
//!   recent `cap` of them in a ring buffer.
//!
//! Instruments live in a [`Registry`], are created on first use by name, and
//! can be snapshotted at any point into a [`MetricsReport`] — an owned,
//! inert value that renders to JSON with [`MetricsReport::to_json`]. Names
//! are dotted paths by convention (`netsim.queue_delay_us`,
//! `pastry.route.hops`), which keeps the JSON diff-friendly and greppable.
//!
//! All instruments use relaxed atomics: totals are exact, but a snapshot
//! taken while other threads record may tear *across* instruments (e.g. a
//! counter may include an op whose histogram sample is not yet visible).
//! For the simulator — single-threaded per experiment, snapshotted at the
//! end — this never matters.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ buckets in a [`Histogram`]: one for zero plus one per
/// possible bit length of a non-zero `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed distribution of `u64` samples.
///
/// Bucket 0 holds exactly the value `0`; bucket `i ≥ 1` holds the values
/// with bit length `i`, i.e. `[2^(i-1), 2^i - 1]`. The top bucket (index
/// 64) therefore ends at `u64::MAX`. Alongside the buckets the histogram
/// tracks exact count, sum, min, and max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in: its bit length.
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive value range `[lo, hi]` of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
        if i == 0 {
            (0, 0)
        } else if i == 64 {
            (1 << 63, u64::MAX)
        } else {
            (1 << (i - 1), (1 << i) - 1)
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold an owned snapshot back into this histogram: bucket counts,
    /// count, and sum add; min/max widen. Empty snapshots are a no-op (so
    /// an untouched min stays at its sentinel).
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        for b in &snap.buckets {
            self.buckets[Self::bucket_index(b.lo)].fetch_add(b.count, Ordering::Relaxed);
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.min.fetch_min(snap.min, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// An owned copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let n = c.load(Ordering::Relaxed);
                    (n > 0).then(|| BucketCount {
                        lo: Self::bucket_bounds(i).0,
                        hi: Self::bucket_bounds(i).1,
                        count: n,
                    })
                })
                .collect(),
        }
    }
}

/// One non-empty bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Smallest value the bucket admits.
    pub lo: u64,
    /// Largest value the bucket admits.
    pub hi: u64,
    /// Samples recorded in the bucket.
    pub count: u64,
}

/// Owned, inert state of a [`Histogram`] at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples (wrapping beyond `u64::MAX`).
    pub sum: u64,
    /// Smallest sample, or 0 when empty.
    pub min: u64,
    /// Largest sample, or 0 when empty.
    pub max: u64,
    /// Non-empty buckets in ascending value order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 ≤ q ≤ 1).
    /// Log-bucketed, so the answer is exact to within a factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.hi.min(self.max);
            }
        }
        self.max
    }
}

/// A discrete, timestamped occurrence worth journaling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual-time microseconds (the stack's `SimTime`), or wall micros.
    pub at_micros: u64,
    /// Short machine-readable kind, e.g. `"netsim.timer_drift"`.
    pub kind: String,
    /// Free-form human-readable detail.
    pub detail: String,
}

/// Receives events as they happen. Implementations must be cheap: emitters
/// call this inline from hot paths.
pub trait EventSink: Send + Sync {
    /// Accept one event.
    fn emit(&self, event: Event);
}

/// The default sink: drops every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopSink;

impl EventSink for NopSink {
    fn emit(&self, _event: Event) {}
}

/// A bounded ring buffer of the most recent events.
#[derive(Debug)]
pub struct Journal {
    cap: usize,
    ring: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl Journal {
    /// A journal keeping at most `cap` events (older ones are evicted).
    pub fn new(cap: usize) -> Self {
        Journal {
            cap: cap.max(1),
            ring: Mutex::new(VecDeque::with_capacity(cap.clamp(1, 1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Events currently retained, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("journal lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of events evicted to honour the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl EventSink for Journal {
    fn emit(&self, event: Event) {
        let mut ring = self.ring.lock().expect("journal lock");
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }
}

/// A named family of instruments plus an event sink.
///
/// Cloneable handles are cheap (`Arc` inside); instruments are created on
/// first use and shared by name thereafter.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    sink: Mutex<SinkSlot>,
}

#[derive(Default)]
struct SinkSlot {
    sink: Option<Arc<dyn EventSink>>,
    journal: Option<Arc<Journal>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// A fresh registry with no instruments and the no-op sink.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.counters.lock().expect("registry lock");
        map.entry(name.to_owned())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.histograms.lock().expect("registry lock");
        map.entry(name.to_owned())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Install `sink` as the event destination.
    pub fn set_sink(&self, sink: Arc<dyn EventSink>) {
        let mut slot = self.inner.sink.lock().expect("registry lock");
        slot.journal = None;
        slot.sink = Some(sink);
    }

    /// Install a [`Journal`] of capacity `cap` as the sink and return it;
    /// its retained events appear in subsequent [`Registry::snapshot`]s.
    pub fn install_journal(&self, cap: usize) -> Arc<Journal> {
        let journal = Arc::new(Journal::new(cap));
        let mut slot = self.inner.sink.lock().expect("registry lock");
        slot.sink = Some(journal.clone());
        slot.journal = Some(journal.clone());
        journal
    }

    /// Emit an event to the installed sink (dropped under the default
    /// no-op sink).
    pub fn emit(&self, at_micros: u64, kind: &str, detail: impl Into<String>) {
        let sink = {
            let slot = self.inner.sink.lock().expect("registry lock");
            slot.sink.clone()
        };
        if let Some(sink) = sink {
            sink.emit(Event {
                at_micros,
                kind: kind.to_owned(),
                detail: detail.into(),
            });
        }
    }

    /// Fold `report` into this registry: counters add, histogram buckets
    /// add, and events re-emit through the installed sink (so a journal's
    /// capacity bound still holds). Instruments absent here are created.
    ///
    /// This is how per-trial registries from a parallel run collapse into
    /// one figure-level report: counters and histograms are order-free
    /// sums, and absorbing in trial order keeps journaled events
    /// deterministic at any thread count.
    pub fn absorb(&self, report: &MetricsReport) {
        for (name, v) in &report.counters {
            self.counter(name).add(*v);
        }
        for (name, h) in &report.histograms {
            self.histogram(name).absorb(h);
        }
        for e in &report.events {
            self.emit(e.at_micros, &e.kind, e.detail.clone());
        }
    }

    /// Snapshot `other` and fold it in — see [`Registry::absorb`].
    pub fn merge(&self, other: &Registry) {
        self.absorb(&other.snapshot());
    }

    /// An owned snapshot of every instrument (and journaled events, if a
    /// journal is installed).
    pub fn snapshot(&self) -> MetricsReport {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let events = {
            let slot = self.inner.sink.lock().expect("registry lock");
            slot.journal
                .as_ref()
                .map(|j| j.snapshot())
                .unwrap_or_default()
        };
        MetricsReport {
            counters,
            histograms,
            events,
        }
    }
}

/// Owned, inert snapshot of a [`Registry`]: what experiments hand back and
/// what renders to JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Journaled events, oldest first (empty without a journal).
    pub events: Vec<Event>,
}

impl MetricsReport {
    /// Counter value, defaulting to 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Render the report as a single JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": {"name": 3},
    ///   "histograms": {"name": {"count": 2, "sum": 7, "min": 3, "max": 4,
    ///                            "buckets": [{"lo": 2, "hi": 3, "count": 2}]}},
    ///   "events": [{"at_us": 12, "kind": "k", "detail": "d"}]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        push_joined(&mut out, self.counters.iter(), |out, (k, v)| {
            push_json_str(out, k);
            out.push(':');
            out.push_str(&v.to_string());
        });
        out.push_str("},\"histograms\":{");
        push_joined(&mut out, self.histograms.iter(), |out, (k, h)| {
            push_json_str(out, k);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count, h.sum, h.min, h.max
            ));
            push_joined(out, h.buckets.iter(), |out, b| {
                out.push_str(&format!(
                    "{{\"lo\":{},\"hi\":{},\"count\":{}}}",
                    b.lo, b.hi, b.count
                ));
            });
            out.push_str("]}");
        });
        out.push_str("},\"events\":[");
        push_joined(&mut out, self.events.iter(), |out, e| {
            out.push_str(&format!("{{\"at_us\":{},\"kind\":", e.at_micros));
            push_json_str(out, &e.kind);
            out.push_str(",\"detail\":");
            push_json_str(out, &e.detail);
            out.push('}');
        });
        out.push_str("]}");
        out
    }
}

fn push_joined<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    mut each: impl FnMut(&mut String, T),
) {
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        each(out, item);
    }
}

/// Append `s` as a JSON string literal, escaping per RFC 8259.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index((1 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_are_tight_and_tile() {
        // Every bucket's bounds admit exactly the values that index to it,
        // and consecutive buckets tile the u64 domain.
        let mut expected_lo = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} lower bound");
            assert!(lo <= hi);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "buckets must end exactly at u64::MAX");
    }

    #[test]
    fn histogram_records_edge_values() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(1);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.sum, u64::MAX.wrapping_add(1)); // documented wrapping
        assert_eq!(s.buckets.len(), 3);
        assert_eq!(
            s.buckets[0],
            BucketCount {
                lo: 0,
                hi: 0,
                count: 1
            }
        );
        assert_eq!(
            s.buckets[1],
            BucketCount {
                lo: 1,
                hi: 1,
                count: 1
            }
        );
        assert_eq!(
            s.buckets[2],
            BucketCount {
                lo: 1 << 63,
                hi: u64::MAX,
                count: 1
            }
        );
    }

    #[test]
    fn histogram_boundary_values_split_buckets() {
        let h = Histogram::new();
        // 2^k - 1 and 2^k must land in adjacent buckets for every k.
        for k in 1..64u32 {
            h.record((1u64 << k) - 1);
            h.record(1u64 << k);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 126);
        for b in &s.buckets {
            // Each bucket got exactly its top (2^i - 1) and bottom (2^(i-1))
            // value, except bucket 1 (only 2^1-1 = 1) and 64 (only 2^63).
            assert!(b.count <= 2);
        }
    }

    #[test]
    fn empty_histogram_snapshot() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let median = s.quantile(0.5);
        // True median 50 lives in bucket [32, 63].
        assert!((32..=63).contains(&median), "median bucket hi: {median}");
        assert_eq!(s.quantile(1.0), 100);
        assert_eq!(s.quantile(0.0), 1, "q=0 clamps to the first sample");
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn journal_ring_evicts_oldest() {
        let j = Journal::new(3);
        for i in 0..5u64 {
            j.emit(Event {
                at_micros: i,
                kind: "k".into(),
                detail: i.to_string(),
            });
        }
        let kept = j.snapshot();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].at_micros, 2);
        assert_eq!(kept[2].at_micros, 4);
        assert_eq!(j.dropped(), 2);
    }

    #[test]
    fn registry_shares_instruments_by_name() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 2);
        r.histogram("h").record(7);
        assert_eq!(r.histogram("h").count(), 1);

        let clone = r.clone();
        clone.counter("a").inc();
        assert_eq!(r.snapshot().counter("a"), 3, "clones share state");
    }

    #[test]
    fn events_dropped_without_journal_kept_with() {
        let r = Registry::new();
        r.emit(1, "lost", "no sink installed");
        assert!(r.snapshot().events.is_empty());

        let journal = r.install_journal(16);
        r.emit(2, "kept", "journal installed");
        assert_eq!(journal.snapshot().len(), 1);
        let report = r.snapshot();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].kind, "kept");
    }

    #[test]
    fn merge_preserves_counter_sums() {
        let total = Registry::new();
        total.counter("ops").add(2);
        for n in [3u64, 5] {
            let part = Registry::new();
            part.counter("ops").add(n);
            part.counter("extra").inc();
            total.merge(&part);
        }
        let report = total.snapshot();
        assert_eq!(report.counter("ops"), 10);
        assert_eq!(report.counter("extra"), 2);
    }

    #[test]
    fn merge_preserves_histogram_shape() {
        let total = Registry::new();
        let samples: [&[u64]; 3] = [&[0, 1, 7], &[7, 1 << 40], &[u64::MAX]];
        let reference = Histogram::new();
        for part_samples in samples {
            let part = Registry::new();
            for &v in part_samples {
                part.histogram("h").record(v);
                reference.record(v);
            }
            total.merge(&part);
        }
        let merged = total.snapshot().histogram("h").unwrap().clone();
        let expect = reference.snapshot();
        assert_eq!(merged.buckets, expect.buckets, "bucket counts must add");
        assert_eq!(merged.count, expect.count);
        assert_eq!(merged.sum, expect.sum);
        assert_eq!(merged.min, expect.min);
        assert_eq!(merged.max, expect.max);
        // An empty part changes nothing (min sentinel survives).
        total.absorb(&Registry::new().snapshot());
        assert_eq!(total.snapshot().histogram("h").unwrap(), &expect);
    }

    #[test]
    fn merge_respects_journal_capacity() {
        let total = Registry::new();
        total.install_journal(3);
        for i in 0..2u64 {
            let part = Registry::new();
            part.install_journal(8);
            for j in 0..4u64 {
                part.emit(i * 10 + j, "trial.event", format!("t{i}e{j}"));
            }
            total.merge(&part);
        }
        let events = total.snapshot().events;
        assert_eq!(events.len(), 3, "merged journal stays within its cap");
        assert_eq!(events[0].detail, "t1e1", "oldest events evicted first");
        assert_eq!(events[2].detail, "t1e3");
    }

    #[test]
    fn report_json_shape() {
        let r = Registry::new();
        r.counter("ops").add(3);
        r.histogram("lat_us").record(3);
        r.histogram("lat_us").record(4);
        r.install_journal(4);
        r.emit(12, "k\"ind", "line1\nline2");
        let json = r.snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{\"ops\":3}"));
        assert!(json.contains(
            "\"lat_us\":{\"count\":2,\"sum\":7,\"min\":3,\"max\":4,\"buckets\":\
             [{\"lo\":2,\"hi\":3,\"count\":1},{\"lo\":4,\"hi\":7,\"count\":1}]}"
        ));
        assert!(json.contains("\"kind\":\"k\\\"ind\""));
        assert!(json.contains("\"detail\":\"line1\\nline2\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn report_lookup_helpers() {
        let r = Registry::new();
        r.counter("x").inc();
        let report = r.snapshot();
        assert_eq!(report.counter("x"), 1);
        assert_eq!(report.counter("missing"), 0);
        assert!(report.histogram("missing").is_none());
    }
}
