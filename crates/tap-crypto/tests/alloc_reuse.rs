//! Pins the allocation behaviour of the reusable crypto hot paths with a
//! counting global allocator: once an [`OnionBuilder`] or [`LayerBuf`] has
//! warmed up on a transfer shape, repeating that shape must allocate
//! nothing — the per-transfer cost is cipher work, not the allocator.
//!
//! Lives in its own integration binary because `#[global_allocator]` is
//! process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;
use tap_crypto::cipher::SymmetricKey;
use tap_crypto::onion::{LayerBuf, OnionBuilder};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves or grows is an allocator round-trip too.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `f` and return how many allocator calls it made.
fn allocations_in(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn fixture(layers: usize) -> (Vec<(SymmetricKey, Vec<u8>)>, StdRng) {
    let mut rng = StdRng::seed_from_u64(0x5EA1);
    let ls = (0..layers)
        .map(|i| {
            (
                SymmetricKey::generate(&mut rng),
                format!("hop-header-{i}").into_bytes(),
            )
        })
        .collect();
    (ls, rng)
}

#[test]
fn reused_onion_builder_seals_without_allocating() {
    let (layers, mut rng) = fixture(6);
    let core = vec![0xA5u8; 3072];
    let mut b = OnionBuilder::new();
    // Warm-up transfer grows every buffer to its steady-state capacity.
    b.seal(&mut rng, &layers, &core);

    let count = allocations_in(|| {
        for _ in 0..8 {
            b.seal(&mut rng, &layers, &core);
        }
    });
    assert_eq!(
        count, 0,
        "a warmed OnionBuilder must reuse its margin and scratch, not realloc"
    );
}

#[test]
fn warmed_builder_absorbs_smaller_transfers_too() {
    let (layers, mut rng) = fixture(6);
    let mut b = OnionBuilder::new();
    b.seal(&mut rng, &layers, &vec![1u8; 4096]);

    // Anything that fits in the warmed capacity — fewer layers, shorter
    // cores — must also be allocation-free.
    let (short_layers, _) = fixture(3);
    let count = allocations_in(|| {
        b.seal(&mut rng, &short_layers, &[2u8; 512]);
        b.seal(&mut rng, &layers, &[3u8; 64]);
    });
    assert_eq!(count, 0, "smaller transfers fit the warmed capacity");
}

#[test]
fn reused_layer_buf_peels_without_allocating() {
    let (layers, mut rng) = fixture(5);
    let keys: Vec<_> = layers.iter().map(|(k, _)| *k).collect();
    let mut b = OnionBuilder::new();
    b.seal(&mut rng, &layers, &[0x42u8; 2048]);
    let onion = b.as_bytes().to_vec();

    let mut buf = LayerBuf::new();
    buf.load(&onion);
    for k in &keys {
        buf.peel(k).expect("transit peel");
    }

    let count = allocations_in(|| {
        buf.load(&onion);
        for k in &keys {
            buf.peel(k).expect("transit peel");
        }
    });
    assert_eq!(count, 0, "a warmed LayerBuf must peel in place");
}
