//! Reed–Solomon erasure coding over GF(2^8) for multipath tunnel transfer.
//!
//! TAP transfers historically rode a single forward tunnel: one lossy link
//! or partition window forces the full retry/backoff gauntlet, and one
//! relay sees the entire payload. Striping each payload into `n` coded
//! fragments — any `k` of which reconstruct it — lets `tap-core` ship a
//! transfer across `n` disjoint tunnels concurrently and tolerate up to
//! `n − k` stripe failures without a retry (craftnet's 5/3 design).
//!
//! The codec is systematic and zero-dependency:
//!
//! * arithmetic is GF(2^8) with the AES-adjacent primitive polynomial
//!   `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), via compile-time exp/log tables;
//! * the payload is cut into ~3 KB chunks; each chunk is split into `k`
//!   data shards (zero-padded) interpreted as evaluations of a degree
//!   `< k` polynomial at the field points `0..k`, and the `n − k` parity
//!   shards are the evaluations at points `k..n` (Lagrange interpolation);
//! * fragment `i` carries shard `i` of every chunk, so geometry is fully
//!   derivable from `(payload_len, n, k, chunk)` — no side metadata;
//! * every fragment carries a checksum over its header and body plus an
//!   8-byte digest of the whole payload, so a corrupted fragment is
//!   *detected* and skipped rather than silently poisoning the decode.
//!
//! `k = 1` degenerates to replication and `(1, 1)` to the identity code,
//! which is exactly the single-path fallback `tap-core` uses when a small
//! or churning overlay cannot supply `n` disjoint tunnels.

use crate::sha256::sha256;

/// Fragment header: `[n][k][index][payload_len: u32 BE][payload digest; 8][check; 4]`.
pub const HEADER_LEN: usize = 3 + 4 + PAYLOAD_DIGEST_LEN + FRAGMENT_CHECK_LEN;
const PAYLOAD_DIGEST_LEN: usize = 8;
const FRAGMENT_CHECK_LEN: usize = 4;

// GF(2^8) exp/log tables for the primitive polynomial 0x11d with generator
// 2, built at compile time. EXP is doubled so `EXP[LOG[a] + LOG[b]]` never
// needs a modular reduction (the sum is at most 508).
const GF_TABLES: ([u8; 512], [u8; 256]) = build_gf_tables();
const GF_EXP: [u8; 512] = GF_TABLES.0;
const GF_LOG: [u8; 256] = GF_TABLES.1;

const fn build_gf_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11d;
        }
        i += 1;
    }
    while i < 512 {
        exp[i] = exp[i - 255];
        i += 1;
    }
    (exp, log)
}

#[inline]
fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        GF_EXP[GF_LOG[a as usize] as usize + GF_LOG[b as usize] as usize]
    }
}

/// Split 4-bit multiply tables for one fixed coefficient: by GF(2^8)
/// linearity over XOR, `c·b = lo[b & 15] ^ hi[b >> 4]`. Thirty-two bytes
/// per coefficient — resident in a cache line or two — versus the 768
/// bytes of exp/log the generic [`gf_mul`] walks, and `log(c)` is looked
/// up exactly once per (coefficient, shard) pair instead of per byte.
struct GfMulTable {
    lo: [u8; 16],
    hi: [u8; 16],
}

impl GfMulTable {
    fn new(coeff: u8) -> GfMulTable {
        debug_assert_ne!(coeff, 0, "zero rows are skipped before table build");
        let log_c = GF_LOG[coeff as usize] as usize;
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for x in 1usize..16 {
            lo[x] = GF_EXP[log_c + GF_LOG[x] as usize];
            hi[x] = GF_EXP[log_c + GF_LOG[x << 4] as usize];
        }
        GfMulTable { lo, hi }
    }

    #[inline(always)]
    fn mul(&self, b: u8) -> u8 {
        self.lo[(b & 0x0f) as usize] ^ self.hi[(b >> 4) as usize]
    }
}

/// `dst[i] ^= coeff · src[i]` over GF(2^8) — the encode/reconstruct inner
/// loop — eight bytes per `u64` load/store step through the split nibble
/// tables (SWAR over the memory traffic; the nibble lookups stay scalar
/// but hit a 32-byte table). `coeff == 1` degrades to a pure wide XOR.
/// Bit-identical to [`gf_mul_acc_scalar`] (proptested below).
#[doc(hidden)]
pub fn gf_mul_acc(coeff: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert!(src.len() >= dst.len());
    let n = dst.len();
    if coeff == 0 {
        return;
    }
    if coeff == 1 {
        for (d, s) in dst[..n - n % 8]
            .chunks_exact_mut(8)
            .zip(src.chunks_exact(8))
        {
            let x = u64::from_le_bytes(d[..8].try_into().expect("8-byte chunk"))
                ^ u64::from_le_bytes(s[..8].try_into().expect("8-byte chunk"));
            d.copy_from_slice(&x.to_le_bytes());
        }
        for (d, s) in dst[n - n % 8..].iter_mut().zip(&src[n - n % 8..]) {
            *d ^= s;
        }
        return;
    }
    let t = GfMulTable::new(coeff);
    for (d, s) in dst[..n - n % 8]
        .chunks_exact_mut(8)
        .zip(src.chunks_exact(8))
    {
        let x = u64::from_le_bytes(s[..8].try_into().expect("8-byte chunk"));
        let mut y = 0u64;
        for k in 0..8 {
            y |= (t.mul((x >> (k * 8)) as u8) as u64) << (k * 8);
        }
        let cur = u64::from_le_bytes(d[..8].try_into().expect("8-byte chunk"));
        d.copy_from_slice(&(cur ^ y).to_le_bytes());
    }
    for (d, s) in dst[n - n % 8..].iter_mut().zip(&src[n - n % 8..]) {
        *d ^= t.mul(*s);
    }
}

/// The scalar multiply-accumulate with the per-coefficient log lookup
/// hoisted out of the byte loop (the pre-SWAR loop re-derived
/// `GF_LOG[coeff]` through [`gf_mul`] on every byte). Reference for the
/// SWAR path and the baseline the kernel benches compare against.
#[doc(hidden)]
pub fn gf_mul_acc_scalar(coeff: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert!(src.len() >= dst.len());
    if coeff == 0 {
        return;
    }
    let log_c = GF_LOG[coeff as usize] as usize;
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        if s != 0 {
            *d ^= GF_EXP[log_c + GF_LOG[s as usize] as usize];
        }
    }
}

#[inline]
fn gf_inv(a: u8) -> u8 {
    debug_assert_ne!(a, 0, "zero has no inverse in GF(2^8)");
    GF_EXP[255 - GF_LOG[a as usize] as usize]
}

/// The Lagrange row evaluating the degree `< xs.len()` polynomial defined
/// by values at the field points `xs` at the target point `e`: the value
/// at `e` is the GF dot product of the row with the values at `xs`.
fn lagrange_row(xs: &[u8], e: u8) -> Vec<u8> {
    xs.iter()
        .enumerate()
        .map(|(j, &xj)| {
            if xj == e {
                return 1;
            }
            if xs.contains(&e) {
                return 0;
            }
            let mut num = 1u8;
            let mut den = 1u8;
            for (m, &xm) in xs.iter().enumerate() {
                if m == j {
                    continue;
                }
                num = gf_mul(num, e ^ xm);
                den = gf_mul(den, xj ^ xm);
            }
            gf_mul(num, gf_inv(den))
        })
        .collect()
}

/// Why encoding or reconstruction could not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcError {
    /// `(n, k)` outside `1 ≤ k ≤ n ≤ MAX_FRAGMENTS`, or a zero chunk size.
    BadConfig,
    /// Payload length exceeds the `u32` carried in fragment headers.
    TooLarge,
    /// A fragment failed its header or checksum validation.
    Corrupt,
    /// Fewer intact fragments than the `k` the code requires.
    NotEnough {
        /// Intact, config-consistent fragments seen.
        have: usize,
        /// The `k` of the code.
        need: usize,
    },
    /// Intact fragments disagree on payload length or digest — the caller
    /// mixed fragments from different transfers.
    Inconsistent,
    /// The reconstructed payload failed its end-to-end digest check.
    DigestMismatch,
}

impl std::fmt::Display for EcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcError::BadConfig => write!(f, "erasure config outside 1 <= k <= n <= 64"),
            EcError::TooLarge => write!(f, "payload exceeds u32 length"),
            EcError::Corrupt => write!(f, "fragment failed checksum validation"),
            EcError::NotEnough { have, need } => {
                write!(f, "{have} intact fragments, {need} required")
            }
            EcError::Inconsistent => write!(f, "fragments from different transfers mixed"),
            EcError::DigestMismatch => write!(f, "reconstructed payload digest mismatch"),
        }
    }
}

impl std::error::Error for EcError {}

/// Validated header of a single fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentMeta {
    /// Total fragments the transfer was encoded into.
    pub n: u8,
    /// Fragments required to reconstruct.
    pub k: u8,
    /// This fragment's shard index in `0..n`.
    pub index: u8,
    /// Length of the original payload in bytes.
    pub payload_len: u32,
    /// Truncated SHA-256 of the original payload.
    pub digest: [u8; PAYLOAD_DIGEST_LEN],
}

/// Parse and checksum-validate a fragment header without a config in hand
/// (the receiver uses this to group arriving fragments by transfer).
pub fn fragment_meta(fragment: &[u8]) -> Result<FragmentMeta, EcError> {
    let (meta, _) = parse_fragment(fragment)?;
    Ok(meta)
}

fn parse_fragment(fragment: &[u8]) -> Result<(FragmentMeta, &[u8]), EcError> {
    if fragment.len() < HEADER_LEN {
        return Err(EcError::Corrupt);
    }
    let (header, body) = fragment.split_at(HEADER_LEN);
    let mut check = crate::sha256::Sha256::new();
    check.update(&header[..HEADER_LEN - FRAGMENT_CHECK_LEN]);
    check.update(body);
    if check.finalize()[..FRAGMENT_CHECK_LEN] != header[HEADER_LEN - FRAGMENT_CHECK_LEN..] {
        return Err(EcError::Corrupt);
    }
    let mut digest = [0u8; PAYLOAD_DIGEST_LEN];
    digest.copy_from_slice(&header[7..7 + PAYLOAD_DIGEST_LEN]);
    let meta = FragmentMeta {
        n: header[0],
        k: header[1],
        index: header[2],
        payload_len: u32::from_be_bytes([header[3], header[4], header[5], header[6]]),
        digest,
    };
    if meta.k == 0 || meta.k > meta.n || meta.index >= meta.n {
        return Err(EcError::Corrupt);
    }
    Ok((meta, body))
}

/// Result of [`EcConfig::reconstruct`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reconstruction {
    /// The decoded payload, byte-identical to what was encoded.
    pub payload: Vec<u8>,
    /// How many fragments the decode actually consumed (always `k`).
    pub fragments_used: usize,
    /// Positions (in the input slice) of fragments that failed validation
    /// and were skipped. Detection, not correction: a corrupted fragment
    /// never contributes to the decode.
    pub corrupt: Vec<usize>,
}

/// An `(n, k)` Reed–Solomon configuration with a chunking granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcConfig {
    n: u8,
    k: u8,
    chunk: usize,
}

impl EcConfig {
    /// Default chunk granularity (~3 KB, craftnet's stripe unit).
    pub const DEFAULT_CHUNK: usize = 3072;
    /// Ceiling on `n`: stripe bitmasks elsewhere fit in a `u64`.
    pub const MAX_FRAGMENTS: u8 = 64;

    /// An `(n, k)` code over [`Self::DEFAULT_CHUNK`]-byte chunks.
    pub fn new(n: u8, k: u8) -> Result<EcConfig, EcError> {
        EcConfig::with_chunk(n, k, EcConfig::DEFAULT_CHUNK)
    }

    /// An `(n, k)` code with an explicit chunk size (tests use small chunks
    /// to exercise multi-chunk geometry cheaply).
    pub fn with_chunk(n: u8, k: u8, chunk: usize) -> Result<EcConfig, EcError> {
        if k == 0 || k > n || n > EcConfig::MAX_FRAGMENTS || chunk == 0 {
            return Err(EcError::BadConfig);
        }
        Ok(EcConfig { n, k, chunk })
    }

    /// Total fragments produced by [`Self::encode`].
    pub fn n(&self) -> u8 {
        self.n
    }

    /// Fragments required by [`Self::reconstruct`].
    pub fn k(&self) -> u8 {
        self.k
    }

    /// Chunk granularity in bytes.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Shard length of each chunk of a `payload_len`-byte payload, in
    /// chunk order. All geometry derives from this.
    fn shard_lens(&self, payload_len: usize) -> Vec<usize> {
        let mut lens = Vec::with_capacity(payload_len.div_ceil(self.chunk.max(1)));
        let mut off = 0;
        while off < payload_len {
            let clen = (payload_len - off).min(self.chunk);
            lens.push(clen.div_ceil(self.k as usize));
            off += clen;
        }
        lens
    }

    /// On-wire length of each fragment for a payload of `payload_len` bytes.
    pub fn fragment_len(&self, payload_len: usize) -> usize {
        HEADER_LEN + self.shard_lens(payload_len).iter().sum::<usize>()
    }

    /// Encode `payload` into `n` fragments, any `k` of which reconstruct it.
    pub fn encode(&self, payload: &[u8]) -> Result<Vec<Vec<u8>>, EcError> {
        if payload.len() > u32::MAX as usize {
            return Err(EcError::TooLarge);
        }
        let n = self.n as usize;
        let k = self.k as usize;
        let lens = self.shard_lens(payload.len());
        let body_len: usize = lens.iter().sum();
        let data_points: Vec<u8> = (0..self.k).collect();
        let parity_rows: Vec<Vec<u8>> = (self.k..self.n)
            .map(|e| lagrange_row(&data_points, e))
            .collect();

        let mut bodies: Vec<Vec<u8>> = (0..n).map(|_| Vec::with_capacity(body_len)).collect();
        let mut off = 0;
        for &s in &lens {
            let clen = (payload.len() - off).min(self.chunk);
            let mut shards: Vec<Vec<u8>> = Vec::with_capacity(k);
            for i in 0..k {
                let mut shard = vec![0u8; s];
                let start = off + i * s;
                if start < off + clen {
                    let end = (start + s).min(off + clen);
                    shard[..end - start].copy_from_slice(&payload[start..end]);
                }
                shards.push(shard);
            }
            for (body, shard) in bodies.iter_mut().zip(&shards) {
                body.extend_from_slice(shard);
            }
            for (j, row) in parity_rows.iter().enumerate() {
                let mut parity = vec![0u8; s];
                for (&coeff, shard) in row.iter().zip(&shards) {
                    gf_mul_acc(coeff, shard, &mut parity);
                }
                bodies[k + j].extend_from_slice(&parity);
            }
            off += clen;
        }

        let digest = payload_digest(payload);
        Ok(bodies
            .into_iter()
            .enumerate()
            .map(|(idx, body)| self.seal_fragment(idx as u8, payload.len() as u32, digest, body))
            .collect())
    }

    fn seal_fragment(
        &self,
        index: u8,
        payload_len: u32,
        digest: [u8; 8],
        body: Vec<u8>,
    ) -> Vec<u8> {
        let mut frag = Vec::with_capacity(HEADER_LEN + body.len());
        frag.push(self.n);
        frag.push(self.k);
        frag.push(index);
        frag.extend_from_slice(&payload_len.to_be_bytes());
        frag.extend_from_slice(&digest);
        let mut check = crate::sha256::Sha256::new();
        check.update(&frag);
        check.update(&body);
        frag.extend_from_slice(&check.finalize()[..FRAGMENT_CHECK_LEN]);
        frag.extend_from_slice(&body);
        frag
    }

    /// Reconstruct the payload from any `k` intact fragments (any order,
    /// duplicates and corrupted fragments tolerated and reported).
    pub fn reconstruct(&self, fragments: &[Vec<u8>]) -> Result<Reconstruction, EcError> {
        let k = self.k as usize;
        let mut corrupt = Vec::new();
        let mut valid: Vec<(u8, &[u8])> = Vec::new();
        let mut reference: Option<(u32, [u8; 8])> = None;
        for (pos, fragment) in fragments.iter().enumerate() {
            let (meta, body) = match parse_fragment(fragment) {
                Ok(parsed) => parsed,
                Err(_) => {
                    corrupt.push(pos);
                    continue;
                }
            };
            if meta.n != self.n || meta.k != self.k {
                corrupt.push(pos);
                continue;
            }
            let expected_body: usize = self.shard_lens(meta.payload_len as usize).iter().sum();
            if body.len() != expected_body {
                corrupt.push(pos);
                continue;
            }
            match reference {
                None => reference = Some((meta.payload_len, meta.digest)),
                Some((len, digest)) if len != meta.payload_len || digest != meta.digest => {
                    return Err(EcError::Inconsistent);
                }
                Some(_) => {}
            }
            if !valid.iter().any(|(idx, _)| *idx == meta.index) {
                valid.push((meta.index, body));
            }
        }
        if valid.len() < k {
            return Err(EcError::NotEnough {
                have: valid.len(),
                need: k,
            });
        }
        let (payload_len, digest) = reference.expect("valid fragments imply a reference header");
        valid.sort_by_key(|(idx, _)| *idx);
        valid.truncate(k);

        let xs: Vec<u8> = valid.iter().map(|(idx, _)| *idx).collect();
        // One interpolation row per *missing* data shard; present shards
        // copy straight out of their fragment body.
        let rows: Vec<Option<Vec<u8>>> = (0..self.k)
            .map(|i| {
                if xs.contains(&i) {
                    None
                } else {
                    Some(lagrange_row(&xs, i))
                }
            })
            .collect();

        let lens = self.shard_lens(payload_len as usize);
        let mut payload = vec![0u8; payload_len as usize];
        let mut body_off = 0;
        let mut pay_off = 0;
        for &s in &lens {
            let clen = (payload_len as usize - pay_off).min(self.chunk);
            for (i, row) in rows.iter().enumerate() {
                let start = pay_off + i * s;
                if start >= pay_off + clen {
                    break;
                }
                let take = (start + s).min(pay_off + clen) - start;
                let dst = &mut payload[start..start + take];
                match row {
                    None => {
                        let (_, body) = valid
                            .iter()
                            .find(|(idx, _)| *idx as usize == i)
                            .expect("row is None only for present shards");
                        dst.copy_from_slice(&body[body_off..body_off + take]);
                    }
                    Some(coeffs) => {
                        for (&coeff, (_, body)) in coeffs.iter().zip(&valid) {
                            // `dst` may be shorter than the shard at the
                            // payload tail; the kernel clamps to it.
                            gf_mul_acc(coeff, &body[body_off..body_off + s], dst);
                        }
                    }
                }
            }
            body_off += s;
            pay_off += clen;
        }
        if payload_digest(&payload) != digest {
            return Err(EcError::DigestMismatch);
        }
        Ok(Reconstruction {
            payload,
            fragments_used: k,
            corrupt,
        })
    }
}

fn payload_digest(payload: &[u8]) -> [u8; PAYLOAD_DIGEST_LEN] {
    let full = sha256(payload);
    let mut digest = [0u8; PAYLOAD_DIGEST_LEN];
    digest.copy_from_slice(&full[..PAYLOAD_DIGEST_LEN]);
    digest
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_payload(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u32).wrapping_mul(31).to_le_bytes()[0] ^ (i >> 8) as u8)
            .collect()
    }

    #[test]
    fn swar_mul_acc_matches_per_byte_gf_mul_for_every_coefficient() {
        // Every coefficient, a length that exercises both the u64 body
        // and the byte tail, unaligned slice starts.
        let src: Vec<u8> = (0..61u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(5))
            .collect();
        for coeff in 0u16..=255 {
            let coeff = coeff as u8;
            let mut swar = vec![0x5Au8; 61];
            let mut scalar = swar.clone();
            let mut reference = swar.clone();
            gf_mul_acc(coeff, &src, &mut swar);
            gf_mul_acc_scalar(coeff, &src, &mut scalar);
            for (p, &b) in reference.iter_mut().zip(src.iter()) {
                *p ^= gf_mul(coeff, b);
            }
            assert_eq!(swar, reference, "coeff={coeff}");
            assert_eq!(scalar, reference, "coeff={coeff}");
        }
    }

    #[test]
    fn gf_tables_are_a_group() {
        for a in 1u16..=255 {
            let a = a as u8;
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a * a^-1 == 1 for a={a}");
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, 0), 0);
        }
        // Distributivity spot check across the generator orbit.
        assert_eq!(gf_mul(3, gf_mul(7, 9)), gf_mul(gf_mul(3, 7), 9));
    }

    #[test]
    fn default_config_is_five_three() {
        let cfg = EcConfig::new(5, 3).unwrap();
        assert_eq!((cfg.n(), cfg.k(), cfg.chunk()), (5, 3, 3072));
        assert!(EcConfig::new(0, 0).is_err());
        assert!(EcConfig::new(3, 5).is_err());
        assert!(EcConfig::new(65, 3).is_err());
        assert!(EcConfig::with_chunk(5, 3, 0).is_err());
    }

    #[test]
    fn roundtrip_multi_chunk_unaligned() {
        let cfg = EcConfig::new(5, 3).unwrap();
        let payload = sample_payload(2 * 3072 + 17);
        let frags = cfg.encode(&payload).unwrap();
        assert_eq!(frags.len(), 5);
        for f in &frags {
            assert_eq!(f.len(), cfg.fragment_len(payload.len()));
        }
        // Drop the two data fragments carrying the front of the payload:
        // reconstruction must come entirely out of parity.
        let kept = frags[2..].to_vec();
        let r = cfg.reconstruct(&kept).unwrap();
        assert_eq!(r.payload, payload);
        assert_eq!(r.fragments_used, 3);
        assert!(r.corrupt.is_empty());
    }

    #[test]
    fn empty_and_single_byte_payloads() {
        let cfg = EcConfig::new(5, 3).unwrap();
        for len in [0usize, 1] {
            let payload = sample_payload(len);
            let frags = cfg.encode(&payload).unwrap();
            let r = cfg.reconstruct(&frags[..3]).unwrap();
            assert_eq!(r.payload, payload, "len={len}");
        }
    }

    #[test]
    fn identity_and_replication_degenerate_codes() {
        let single = EcConfig::new(1, 1).unwrap();
        let payload = sample_payload(100);
        let frags = single.encode(&payload).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(single.reconstruct(&frags).unwrap().payload, payload);

        let replicated = EcConfig::new(3, 1).unwrap();
        let frags = replicated.encode(&payload).unwrap();
        for f in &frags {
            let r = replicated.reconstruct(std::slice::from_ref(f)).unwrap();
            assert_eq!(r.payload, payload, "any single replica suffices");
        }
    }

    #[test]
    fn mixed_transfers_are_rejected() {
        let cfg = EcConfig::new(5, 3).unwrap();
        let a = cfg.encode(&sample_payload(64)).unwrap();
        let b = cfg.encode(&sample_payload(65)).unwrap();
        let mixed = vec![a[0].clone(), a[1].clone(), b[2].clone()];
        assert_eq!(cfg.reconstruct(&mixed), Err(EcError::Inconsistent));
    }

    #[test]
    fn meta_reports_header_fields() {
        let cfg = EcConfig::new(5, 3).unwrap();
        let frags = cfg.encode(&sample_payload(10)).unwrap();
        let meta = fragment_meta(&frags[4]).unwrap();
        assert_eq!(
            (meta.n, meta.k, meta.index, meta.payload_len),
            (5, 3, 4, 10)
        );
        assert_eq!(fragment_meta(b"short"), Err(EcError::Corrupt));
    }

    proptest! {
        // Scalar ≡ SWAR at arbitrary lengths, offsets into a larger
        // buffer (unaligned u64 phases), and coefficients.
        #[test]
        fn prop_swar_equals_scalar_mul_acc(
            coeff in any::<u8>(),
            src in proptest::collection::vec(any::<u8>(), 0..300),
            skip in 0usize..8,
            acc_seed in any::<u8>(),
        ) {
            let src = if skip < src.len() { &src[skip..] } else { &src[..0] };
            let mut swar = vec![acc_seed; src.len()];
            let mut scalar = swar.clone();
            gf_mul_acc(coeff, src, &mut swar);
            gf_mul_acc_scalar(coeff, src, &mut scalar);
            prop_assert_eq!(swar, scalar);
        }

        // The full codec stays correct over the whole (n, k) envelope up
        // to MAX_FRAGMENTS = 64, through the SWAR inner loops.
        #[test]
        fn prop_roundtrip_all_nk_up_to_64(
            n in 1u8..=64,
            k_seed in any::<u8>(),
            payload in proptest::collection::vec(any::<u8>(), 0..300),
            drop_seed in any::<u64>(),
        ) {
            let k = 1 + k_seed % n;
            let cfg = EcConfig::with_chunk(n, k, 96).unwrap();
            let frags = cfg.encode(&payload).unwrap();
            prop_assert_eq!(frags.len(), n as usize);
            // Keep a pseudo-random k-subset of the n fragments.
            let mut kept: Vec<Vec<u8>> = Vec::with_capacity(k as usize);
            let mut state = drop_seed | 1;
            let mut order: Vec<usize> = (0..n as usize).collect();
            for i in (1..order.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                order.swap(i, (state >> 33) as usize % (i + 1));
            }
            for &i in order.iter().take(k as usize) {
                kept.push(frags[i].clone());
            }
            let r = cfg.reconstruct(&kept).unwrap();
            prop_assert_eq!(r.payload, payload);
            prop_assert_eq!(r.fragments_used, k as usize);
        }

        #[test]
        fn roundtrip_under_every_erasure_pattern(
            n in 2u8..7,
            k_seed in any::<u8>(),
            payload in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            let k = 1 + k_seed % n;
            let cfg = EcConfig::with_chunk(n, k, 48).unwrap();
            let frags = cfg.encode(&payload).unwrap();
            // Every erasure pattern losing up to n - k fragments.
            for mask in 0u32..(1u32 << n) {
                if mask.count_ones() < k as u32 {
                    continue;
                }
                let kept: Vec<Vec<u8>> = frags
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, f)| f.clone())
                    .collect();
                let r = cfg.reconstruct(&kept).unwrap();
                prop_assert_eq!(&r.payload, &payload, "mask {:05b}", mask);
                prop_assert!(r.corrupt.is_empty());
            }
            // Below k intact fragments, reconstruction refuses.
            if k > 1 {
                let starved = frags[..k as usize - 1].to_vec();
                prop_assert_eq!(
                    cfg.reconstruct(&starved),
                    Err(EcError::NotEnough { have: k as usize - 1, need: k as usize })
                );
            }
        }

        #[test]
        fn corrupted_fragment_is_detected(
            payload in proptest::collection::vec(any::<u8>(), 1..160),
            victim_seed in any::<u8>(),
            flip_seed in any::<u64>(),
        ) {
            let cfg = EcConfig::with_chunk(5, 3, 48).unwrap();
            let mut frags = cfg.encode(&payload).unwrap();
            let victim = (victim_seed % 5) as usize;
            let flip_at = flip_seed as usize % frags[victim].len();
            frags[victim][flip_at] ^= 0x41;
            // With all five fragments present the corrupted one is skipped
            // and reported; the decode still succeeds from the other four.
            let r = cfg.reconstruct(&frags).unwrap();
            prop_assert_eq!(&r.payload, &payload);
            prop_assert_eq!(&r.corrupt, &vec![victim]);
            // With exactly k fragments including the corrupted one, the
            // decode refuses rather than returning garbage.
            let kept = frags[victim.min(2)..victim.min(2) + 3].to_vec();
            let starved = cfg.reconstruct(&kept);
            prop_assert!(
                starved == Err(EcError::NotEnough { have: 2, need: 3 }),
                "expected NotEnough, got {:?}", starved
            );
        }
    }
}
