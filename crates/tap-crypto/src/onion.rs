//! Layered (onion) encryption — the message format of Fig. 1.
//!
//! The initiator produces `{h2, {h3, {D, m}_K3}_K2}_K1`: each layer carries
//! a routing header for the *next* hop plus the sealed remainder. This
//! module provides the generic wrap/peel machinery over
//! [`crate::cipher::SymmetricKey`]s; the TAP crate supplies the concrete
//! header types.
//!
//! Headers are serialized with a tiny length-prefixed framing (no external
//! serialization dependency on the hot path) so a peel is exactly: one
//! `open`, split header from remainder, done — the "single symmetric key
//! operation per message" the paper promises (§4).

use rand::Rng;

use crate::chacha20::{KeystreamCursor, NONCE_LEN};
use crate::cipher::{CipherError, SymmetricKey, TAG_LEN};
use crate::hmac::HmacSha256;

/// Framing prefix: a big-endian `u32` header length.
const LEN_PREFIX: usize = 4;

/// Front-margin bytes [`OnionBuilder`] consumes per layer *beyond* the
/// header itself (nonce plus framing prefix) — size reservations with
/// `LAYER_MARGIN + header.len()` per layer never regrow.
pub const LAYER_MARGIN: usize = NONCE_LEN + LEN_PREFIX;

/// One decrypted layer: the routing header for this hop and the still-sealed
/// remainder destined for the next hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeeledLayer {
    /// This hop's routing header bytes.
    pub header: Vec<u8>,
    /// The sealed inner onion (empty at the innermost layer).
    pub inner: Vec<u8>,
}

/// Errors from peeling an onion layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnionError {
    /// The layer failed authentication (wrong key or tampering).
    Crypto(CipherError),
    /// The decrypted plaintext did not parse as a framed layer.
    Malformed,
}

impl From<CipherError> for OnionError {
    fn from(e: CipherError) -> Self {
        OnionError::Crypto(e)
    }
}

impl std::fmt::Display for OnionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnionError::Crypto(e) => write!(f, "onion layer crypto failure: {e}"),
            OnionError::Malformed => write!(f, "onion layer framing malformed"),
        }
    }
}

impl std::error::Error for OnionError {}

/// Build an onion from the inside out.
///
/// `layers` is ordered **outermost first** — the same order the message will
/// traverse hops — where each element is `(key, header)`: the symmetric key
/// the hop holds and the routing header it should see. `core` is the
/// innermost payload revealed to the final hop alongside its header.
///
/// With hops `[(K1, h1'), (K2, h2'), (K3, h3')]` and core `m` this produces
/// `{h1', {h2', {h3', m}_K3}_K2}_K1` — matching Fig. 1 when each `hi'` names
/// the *next* destination.
pub fn wrap<R: Rng + ?Sized>(
    rng: &mut R,
    layers: &[(SymmetricKey, Vec<u8>)],
    core: &[u8],
) -> Vec<u8> {
    let mut b = OnionBuilder::new();
    b.seal(rng, layers, core);
    b.into_vec()
}

/// Builds an onion in one buffer, two ways:
///
/// * [`OnionBuilder::seal`] — the fused codec: the whole layout is written
///   as plaintext first, then **one** left-to-right pass applies all `l`
///   layers' keystreams chunk by chunk (each layer a [`KeystreamCursor`],
///   each MAC a streaming [`HmacSha256`]), instead of the layered builder's
///   `l` full-buffer cipher sweeps. Headers, nonce draws and tags are
///   byte-for-byte those of the layered path at the same RNG position.
/// * [`OnionBuilder::add_layer`] — the layered path, one seal per call
///   ([`SymmetricKey::seal_in_place`]); kept as the timeable and testable
///   reference the fused pass is pinned against.
///
/// `add_layer` adds layers **innermost first** (the reverse of [`wrap`]'s
/// argument order). A builder is reusable across transfers: every buffer —
/// the onion itself and the per-layer cursor/MAC scratch — retains its
/// capacity, so steady-state sealing allocates nothing.
pub struct OnionBuilder {
    buf: Vec<u8>,
    start: usize,
    end: usize,
    // Fused-seal scratch, reused across `seal` calls.
    layer_starts: Vec<usize>,
    cursors: Vec<KeystreamCursor>,
    macs: Vec<Option<HmacSha256>>,
}

impl std::fmt::Debug for OnionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The scratch holds key-derived cipher states; print only shape.
        f.debug_struct("OnionBuilder")
            .field("len", &(self.end - self.start))
            .field("layers", &self.layer_starts.len())
            .finish_non_exhaustive()
    }
}

impl Default for OnionBuilder {
    fn default() -> Self {
        OnionBuilder::new()
    }
}

impl OnionBuilder {
    /// An empty builder; [`OnionBuilder::seal`] it per transfer, or start
    /// layering from [`OnionBuilder::with_margin`].
    pub fn new() -> OnionBuilder {
        OnionBuilder {
            buf: Vec::new(),
            start: 0,
            end: 0,
            layer_starts: Vec::new(),
            cursors: Vec::new(),
            macs: Vec::new(),
        }
    }

    /// Start from the innermost payload, reserving `margin` front bytes —
    /// enough when it is ≥ Σ per-layer `NONCE_LEN + LEN_PREFIX + header.len()`
    /// (the builder regrows if an `add_layer` outruns the reservation).
    pub fn with_margin(core: &[u8], margin: usize, layers_hint: usize) -> OnionBuilder {
        let mut buf = vec![0u8; margin + core.len()];
        buf[margin..].copy_from_slice(core);
        buf.reserve(layers_hint * TAG_LEN);
        OnionBuilder {
            buf,
            start: margin,
            end: margin + core.len(),
            layer_starts: Vec::new(),
            cursors: Vec::new(),
            macs: Vec::new(),
        }
    }

    /// Seal a complete onion in one fused pass, replacing the builder's
    /// previous contents. `layers` is ordered outermost first, as in
    /// [`wrap`].
    ///
    /// Correctness sketch: layer `i`'s ciphertext body is the buffer
    /// region `(s_i + 12) .. (e_i − 16)`, and bodies nest — so walking the
    /// buffer left to right, every chunk's final bytes are
    /// `plain ⊕ ks_c ⊕ … ⊕ ks_0` for the `c+1` layers covering it, and
    /// each *intermediate* value in that chain (innermost keystream first)
    /// is exactly what layer `j`'s MAC saw in the layered build. Chaining
    /// in place and feeding each layer's streaming MAC as its keystream is
    /// applied therefore reproduces every tag; tags land innermost-first
    /// at the buffer tail, so each MAC completes precisely when the sweep
    /// reaches its tag slot, and the freshly written tag bytes then chain
    /// through the remaining outer layers like any other plaintext.
    /// Per-layer keystream consumption is strictly left-to-right over a
    /// contiguous body, which is what lets one [`KeystreamCursor`] per
    /// layer feed the whole pass from the wide block kernel.
    pub fn seal<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        layers: &[(SymmetricKey, Vec<u8>)],
        core: &[u8],
    ) {
        assert!(!layers.is_empty(), "an onion needs at least one layer");
        let l = layers.len();
        let mut total = core.len() + l * TAG_LEN;
        for (_, h) in layers {
            total += LAYER_MARGIN + h.len();
        }
        self.buf.clear();
        self.buf.resize(total, 0);
        self.start = 0;
        self.end = total;
        self.layer_starts.clear();
        self.cursors.clear();
        self.macs.clear();

        // Plaintext skeleton: per-layer frame prefix + header, then core.
        let mut pos = 0;
        for (_, h) in layers {
            self.layer_starts.push(pos);
            let fs = pos + NONCE_LEN;
            self.buf[fs..fs + LEN_PREFIX].copy_from_slice(&(h.len() as u32).to_be_bytes());
            self.buf[fs + LEN_PREFIX..fs + LEN_PREFIX + h.len()].copy_from_slice(h);
            pos += LAYER_MARGIN + h.len();
        }
        let core_start = pos;
        self.buf[core_start..core_start + core.len()].copy_from_slice(core);

        // Nonces innermost first — the layered builder's exact RNG draw
        // order, one 12-byte fill per layer.
        for i in (0..l).rev() {
            let s = self.layer_starts[i];
            rng.fill(&mut self.buf[s..s + NONCE_LEN]);
        }

        // Per-layer streaming cipher and MAC states.
        for (i, (key, _)) in layers.iter().enumerate() {
            let (enc_key, mac_key) = key.subkeys();
            let s = self.layer_starts[i];
            let mut nonce = [0u8; NONCE_LEN];
            nonce.copy_from_slice(&self.buf[s..s + NONCE_LEN]);
            self.cursors.push(KeystreamCursor::new(&enc_key, &nonce, 1));
            self.macs.push(Some(HmacSha256::new(&mac_key)));
        }

        /// XOR the keystreams of layers `depth-1 .. 0` (innermost covering
        /// layer outward) into `buf[range]` in place, feeding each
        /// intermediate state to that layer's MAC.
        fn chain(
            buf: &mut [u8],
            range: std::ops::Range<usize>,
            cursors: &mut [KeystreamCursor],
            macs: &mut [Option<HmacSha256>],
            depth: usize,
        ) {
            for j in (0..depth).rev() {
                cursors[j].xor_into(&mut buf[range.clone()]);
                macs[j]
                    .as_mut()
                    .expect("outer MACs outlive inner tag slots")
                    .update(&buf[range.clone()]);
            }
        }

        let OnionBuilder {
            buf,
            layer_starts,
            cursors,
            macs,
            ..
        } = self;

        // The single pass. Layer i's nonce is MACed raw by layer i and
        // encrypted by layers 0..i; its frame is encrypted by 0..=i.
        for i in 0..l {
            let s = layer_starts[i];
            macs[i]
                .as_mut()
                .expect("MACs finalize only at their tag slot")
                .update(&buf[s..s + NONCE_LEN]);
            chain(buf, s..s + NONCE_LEN, cursors, macs, i);
            let frame_end = if i + 1 < l {
                layer_starts[i + 1]
            } else {
                core_start
            };
            chain(buf, s + NONCE_LEN..frame_end, cursors, macs, i + 1);
        }
        chain(buf, core_start..core_start + core.len(), cursors, macs, l);
        // Tags, innermost outward: MAC i has consumed exactly
        // [s_i, e_i − 16) when the sweep reaches its slot.
        let mut at = core_start + core.len();
        for i in (0..l).rev() {
            let tag = macs[i].take().expect("each MAC finalizes once").finalize();
            buf[at..at + TAG_LEN].copy_from_slice(&tag[..TAG_LEN]);
            chain(buf, at..at + TAG_LEN, cursors, macs, i);
            at += TAG_LEN;
        }
    }

    /// Wrap the current region in one more layer keyed by `key`, showing
    /// `header` to the hop that will peel it.
    pub fn add_layer<R: Rng + ?Sized>(&mut self, rng: &mut R, key: &SymmetricKey, header: &[u8]) {
        let need = LAYER_MARGIN + header.len();
        if self.start < need {
            // The reservation was short: regrow the front margin.
            let extra = (need - self.start).max(64);
            let mut grown = vec![0u8; extra + self.buf.len()];
            grown[extra..].copy_from_slice(&self.buf);
            self.buf = grown;
            self.start += extra;
            self.end += extra;
        }
        let frame_start = self.start - LEN_PREFIX - header.len();
        self.buf[frame_start..frame_start + LEN_PREFIX]
            .copy_from_slice(&(header.len() as u32).to_be_bytes());
        self.buf[frame_start + LEN_PREFIX..self.start].copy_from_slice(header);
        self.start = frame_start - NONCE_LEN;
        self.end += TAG_LEN;
        if self.buf.len() < self.end {
            self.buf.resize(self.end, 0);
        }
        key.seal_in_place(rng, &mut self.buf[self.start..self.end]);
    }

    /// The sealed onion built so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Finish, reusing the build buffer as the onion (one `memmove`, no
    /// allocation).
    pub fn into_vec(mut self) -> Vec<u8> {
        self.buf.truncate(self.end);
        self.buf.drain(..self.start);
        self.buf
    }
}

/// A reusable peel buffer: load a sealed onion once, then every
/// [`LayerBuf::peel`] is a single in-place cipher pass. The header comes
/// back as a borrowed view and the inner onion simply *is* the same buffer,
/// narrowed — the per-hop transit loop allocates nothing.
#[derive(Debug, Default, Clone)]
pub struct LayerBuf {
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl LayerBuf {
    /// An empty buffer; [`LayerBuf::load`] it before peeling.
    pub fn new() -> LayerBuf {
        LayerBuf::default()
    }

    /// Adopt an owned onion without copying.
    pub fn from_vec(onion: Vec<u8>) -> LayerBuf {
        let end = onion.len();
        LayerBuf {
            buf: onion,
            start: 0,
            end,
        }
    }

    /// Finish, reusing the backing buffer for the remaining bytes (one
    /// `memmove`, no allocation).
    pub fn into_vec(mut self) -> Vec<u8> {
        self.buf.truncate(self.end);
        self.buf.drain(..self.start);
        self.buf
    }

    /// Load a sealed onion, reusing the buffer's capacity.
    pub fn load(&mut self, onion: &[u8]) {
        self.buf.clear();
        self.buf.extend_from_slice(onion);
        self.start = 0;
        self.end = onion.len();
    }

    /// The current contents: the sealed remainder after each peel, or the
    /// core payload once the innermost layer has been peeled.
    pub fn bytes(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer currently holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copy the current contents out (the final residue travels onward as
    /// an owned value; everything before that stays borrowed).
    pub fn to_vec(&self) -> Vec<u8> {
        self.bytes().to_vec()
    }

    /// Peel one layer in place and return this hop's header as a view into
    /// the buffer. Afterwards [`LayerBuf::bytes`] is the sealed remainder.
    /// On [`OnionError::Crypto`] the buffer is unchanged; on
    /// [`OnionError::Malformed`] its contents are unspecified (the caller
    /// is aborting the transit either way).
    pub fn peel(&mut self, key: &SymmetricKey) -> Result<&[u8], OnionError> {
        let plain = key
            .open_in_place(&mut self.buf[self.start..self.end])
            .map(|r| self.start + r.start..self.start + r.end)?;
        if plain.len() < LEN_PREFIX {
            return Err(OnionError::Malformed);
        }
        let p = &self.buf[plain.start..plain.start + LEN_PREFIX];
        let hlen = u32::from_be_bytes([p[0], p[1], p[2], p[3]]) as usize;
        if plain.len() < LEN_PREFIX + hlen {
            return Err(OnionError::Malformed);
        }
        let header = plain.start + LEN_PREFIX..plain.start + LEN_PREFIX + hlen;
        self.start = header.end;
        self.end = plain.end;
        Ok(&self.buf[header])
    }
}

/// Peel one layer with `key`, returning this hop's header and the sealed
/// remainder (the innermost layer's remainder is the core payload).
pub fn peel(key: &SymmetricKey, onion: &[u8]) -> Result<PeeledLayer, OnionError> {
    let mut buf = LayerBuf::new();
    buf.load(onion);
    let header = buf.peel(key)?.to_vec();
    Ok(PeeledLayer {
        header,
        inner: buf.to_vec(),
    })
}

/// Peel an entire onion with a known key sequence (outermost first),
/// returning every header plus the core payload. Test/analysis helper: real
/// hops only ever peel their own single layer.
pub fn peel_all(
    keys: &[SymmetricKey],
    onion: &[u8],
) -> Result<(Vec<Vec<u8>>, Vec<u8>), OnionError> {
    let mut headers = Vec::with_capacity(keys.len());
    let mut buf = LayerBuf::new();
    buf.load(onion);
    for key in keys {
        headers.push(buf.peel(key)?.to_vec());
    }
    Ok((headers, buf.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys(n: usize, seed: u64) -> (Vec<SymmetricKey>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ks = (0..n).map(|_| SymmetricKey::generate(&mut rng)).collect();
        (ks, rng)
    }

    #[test]
    fn three_hop_onion_matches_fig1() {
        let (ks, mut rng) = keys(3, 1);
        let layers: Vec<_> = ks
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, format!("hop-header-{i}").into_bytes()))
            .collect();
        let onion = wrap(&mut rng, &layers, b"{D, m}");

        // Hop 1 peels with K1, sees its header, forwards the inner onion.
        let l1 = peel(&ks[0], &onion).unwrap();
        assert_eq!(l1.header, b"hop-header-0");
        let l2 = peel(&ks[1], &l1.inner).unwrap();
        assert_eq!(l2.header, b"hop-header-1");
        let l3 = peel(&ks[2], &l2.inner).unwrap();
        assert_eq!(l3.header, b"hop-header-2");
        assert_eq!(l3.inner, b"{D, m}");
    }

    #[test]
    fn peel_all_agrees_with_sequential_peels() {
        let (ks, mut rng) = keys(5, 2);
        let layers: Vec<_> = ks.iter().map(|k| (*k, vec![0xAA; 8])).collect();
        let onion = wrap(&mut rng, &layers, b"core");
        let (headers, core) = peel_all(&ks, &onion).unwrap();
        assert_eq!(headers.len(), 5);
        assert!(headers.iter().all(|h| h == &vec![0xAA; 8]));
        assert_eq!(core, b"core");
    }

    #[test]
    fn wrong_hop_key_fails_cleanly() {
        let (ks, mut rng) = keys(2, 3);
        let layers: Vec<_> = ks.iter().map(|k| (*k, b"h".to_vec())).collect();
        let onion = wrap(&mut rng, &layers, b"core");
        // Peeling the outer layer with the inner key must fail.
        assert!(matches!(
            peel(&ks[1], &onion),
            Err(OnionError::Crypto(CipherError::BadTag))
        ));
    }

    #[test]
    fn out_of_order_peeling_fails() {
        let (ks, mut rng) = keys(3, 4);
        let layers: Vec<_> = ks.iter().map(|k| (*k, b"h".to_vec())).collect();
        let onion = wrap(&mut rng, &layers, b"core");
        let l1 = peel(&ks[0], &onion).unwrap();
        // Skipping hop 2 and trying hop 3's key on hop 2's layer fails.
        assert!(peel(&ks[2], &l1.inner).is_err());
    }

    #[test]
    fn single_layer_onion() {
        let (ks, mut rng) = keys(1, 5);
        let onion = wrap(&mut rng, &[(ks[0], b"only".to_vec())], b"payload");
        let l = peel(&ks[0], &onion).unwrap();
        assert_eq!(l.header, b"only");
        assert_eq!(l.inner, b"payload");
    }

    #[test]
    fn empty_header_and_core() {
        let (ks, mut rng) = keys(2, 6);
        let layers: Vec<_> = ks.iter().map(|k| (*k, Vec::new())).collect();
        let onion = wrap(&mut rng, &layers, b"");
        let (headers, core) = peel_all(&ks, &onion).unwrap();
        assert!(headers.iter().all(|h| h.is_empty()));
        assert!(core.is_empty());
    }

    #[test]
    fn wrap_bytes_match_a_manual_seal_chain() {
        // The in-place builder must be byte-identical to sealing framed
        // layers one Vec at a time from the same RNG position.
        let (ks, rng) = keys(3, 8);
        let layers: Vec<_> = ks
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, vec![i as u8; 5 + i]))
            .collect();
        let mut a_rng = rng.clone();
        let mut b_rng = rng;
        let onion = wrap(&mut a_rng, &layers, b"core bytes");

        let mut inner = b"core bytes".to_vec();
        for (key, header) in layers.iter().rev() {
            let mut plain = (header.len() as u32).to_be_bytes().to_vec();
            plain.extend_from_slice(header);
            plain.extend_from_slice(&inner);
            inner = key.seal(&mut b_rng, &plain);
        }
        assert_eq!(onion, inner);
    }

    /// The layered reference path: one [`SymmetricKey::seal_in_place`] full
    /// sweep per layer, innermost first.
    fn wrap_layered(rng: &mut StdRng, layers: &[(SymmetricKey, Vec<u8>)], core: &[u8]) -> Vec<u8> {
        let margin: usize = layers.iter().map(|(_, h)| LAYER_MARGIN + h.len()).sum();
        let mut b = OnionBuilder::with_margin(core, margin, layers.len());
        for (key, header) in layers.iter().rev() {
            b.add_layer(rng, key, header);
        }
        b.into_vec()
    }

    #[test]
    fn fused_seal_matches_layered_builder() {
        for l in 1..=7 {
            let (ks, rng) = keys(l, 20 + l as u64);
            let layers: Vec<_> = ks
                .iter()
                .enumerate()
                .map(|(i, k)| (*k, vec![0x30 + i as u8; 3 * i + 1]))
                .collect();
            let mut a_rng = rng.clone();
            let mut b_rng = rng;
            let fused = wrap(&mut a_rng, &layers, b"fused == layered");
            let layered = wrap_layered(&mut b_rng, &layers, b"fused == layered");
            assert_eq!(fused, layered, "l={l}");
            assert_eq!(
                a_rng.gen::<u64>(),
                b_rng.gen::<u64>(),
                "RNG positions must agree after sealing"
            );
        }
    }

    #[test]
    fn reused_builder_seals_are_independent() {
        let (ks, mut rng) = keys(5, 30);
        let mut b = OnionBuilder::new();
        // Same builder across transfers of different shapes; each onion
        // must peel as if built fresh.
        for (round, core) in [&b"first"[..], b"a much longer second core", b""]
            .iter()
            .enumerate()
        {
            let layers: Vec<_> = ks
                .iter()
                .take(2 + round)
                .enumerate()
                .map(|(i, k)| (*k, vec![i as u8; 4 + round]))
                .collect();
            b.seal(&mut rng, &layers, core);
            let onion = b.as_bytes().to_vec();
            let (headers, peeled) = peel_all(&ks[..2 + round], &onion).unwrap();
            assert_eq!(headers.len(), 2 + round);
            assert_eq!(peeled, *core, "round {round}");
        }
    }

    #[test]
    fn layer_buf_peels_match_allocating_peels_and_reuse_is_clean() {
        let (ks, mut rng) = keys(4, 9);
        let layers: Vec<_> = ks
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, format!("header-{i}").into_bytes()))
            .collect();
        let onion = wrap(&mut rng, &layers, b"the core");

        let mut buf = LayerBuf::new();
        // Load twice: the second pass must be unaffected by the first
        // (reuse across transits is the whole point).
        for _ in 0..2 {
            buf.load(&onion);
            let mut cursor = onion.clone();
            for k in &ks {
                let reference = peel(k, &cursor).unwrap();
                let header = buf.peel(k).unwrap();
                assert_eq!(header, &reference.header[..]);
                assert_eq!(buf.bytes(), &reference.inner[..]);
                cursor = reference.inner;
            }
            assert_eq!(buf.bytes(), b"the core");
        }
    }

    #[test]
    fn layer_buf_rejects_what_peel_rejects() {
        let (ks, mut rng) = keys(2, 10);
        let layers: Vec<_> = ks.iter().map(|k| (*k, b"h".to_vec())).collect();
        let onion = wrap(&mut rng, &layers, b"core");
        let mut buf = LayerBuf::new();
        buf.load(&onion);
        assert!(matches!(
            buf.peel(&ks[1]),
            Err(OnionError::Crypto(CipherError::BadTag))
        ));
        // A failed authentication leaves the buffer usable.
        assert_eq!(buf.peel(&ks[0]).unwrap(), b"h");
        buf.load(b"xx");
        assert!(matches!(
            buf.peel(&ks[0]),
            Err(OnionError::Crypto(CipherError::TooShort))
        ));
    }

    #[test]
    fn builder_regrows_when_the_margin_is_short() {
        let (ks, mut rng) = keys(2, 11);
        // Deliberately reserve nothing: every add_layer must regrow.
        let mut b = OnionBuilder::with_margin(b"payload", 0, 0);
        b.add_layer(&mut rng, &ks[1], b"inner-header");
        b.add_layer(&mut rng, &ks[0], b"outer-header");
        let onion = b.into_vec();
        let (headers, core) = peel_all(&ks, &onion).unwrap();
        assert_eq!(
            headers,
            vec![b"outer-header".to_vec(), b"inner-header".to_vec()]
        );
        assert_eq!(core, b"payload");
    }

    #[test]
    fn malformed_frame_detected() {
        let (ks, mut rng) = keys(1, 7);
        // Seal a plaintext that claims a longer header than it carries.
        let mut bogus = 100u32.to_be_bytes().to_vec();
        bogus.extend_from_slice(b"short");
        let sealed = ks[0].seal(&mut rng, &bogus);
        assert_eq!(peel(&ks[0], &sealed), Err(OnionError::Malformed));
    }

    proptest! {
        #[test]
        fn prop_wrap_peel_roundtrip(
            n in 1usize..6,
            core in proptest::collection::vec(any::<u8>(), 0..128),
            headers in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 6),
            seed in any::<u64>(),
        ) {
            let (ks, mut rng) = keys(n, seed);
            let layers: Vec<_> = ks
                .iter()
                .zip(headers.iter())
                .map(|(k, h)| (*k, h.clone()))
                .collect();
            let onion = wrap(&mut rng, &layers, &core);
            let (got_headers, got_core) = peel_all(&ks, &onion).unwrap();
            prop_assert_eq!(got_core, core);
            for (g, h) in got_headers.iter().zip(headers.iter()) {
                prop_assert_eq!(g, h);
            }
        }

        #[test]
        fn prop_layer_sizes_leak_only_depth(
            n in 1usize..5,
            seed in any::<u64>(),
        ) {
            // Each layer adds a fixed overhead: size reveals at most the
            // remaining depth, never the content.
            let (ks, mut rng) = keys(n, seed);
            let layers: Vec<_> = ks.iter().map(|k| (*k, vec![7u8; 16])).collect();
            let a = wrap(&mut rng, &layers, &[0u8; 64]);
            let b = wrap(&mut rng, &layers, &[1u8; 64]);
            prop_assert_eq!(a.len(), b.len());
        }

        #[test]
        fn prop_fused_seal_equals_layered_builder(
            n in 1usize..8,
            core in proptest::collection::vec(any::<u8>(), 0..300),
            headers in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 8),
            seed in any::<u64>(),
        ) {
            let (ks, rng) = keys(n, seed);
            let layers: Vec<_> = ks
                .iter()
                .zip(headers.iter())
                .map(|(k, h)| (*k, h.clone()))
                .collect();
            let mut a_rng = rng.clone();
            let mut b_rng = rng;
            let fused = wrap(&mut a_rng, &layers, &core);
            let layered = wrap_layered(&mut b_rng, &layers, &core);
            prop_assert_eq!(fused, layered);
            prop_assert_eq!(a_rng.gen::<u64>(), b_rng.gen::<u64>());
        }
    }
}
