//! Layered (onion) encryption — the message format of Fig. 1.
//!
//! The initiator produces `{h2, {h3, {D, m}_K3}_K2}_K1`: each layer carries
//! a routing header for the *next* hop plus the sealed remainder. This
//! module provides the generic wrap/peel machinery over
//! [`crate::cipher::SymmetricKey`]s; the TAP crate supplies the concrete
//! header types.
//!
//! Headers are serialized with a tiny length-prefixed framing (no external
//! serialization dependency on the hot path) so a peel is exactly: one
//! `open`, split header from remainder, done — the "single symmetric key
//! operation per message" the paper promises (§4).

use rand::Rng;

use crate::cipher::{CipherError, SymmetricKey};

/// One decrypted layer: the routing header for this hop and the still-sealed
/// remainder destined for the next hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeeledLayer {
    /// This hop's routing header bytes.
    pub header: Vec<u8>,
    /// The sealed inner onion (empty at the innermost layer).
    pub inner: Vec<u8>,
}

/// Frame `header` and `inner` into one plaintext buffer.
fn frame(header: &[u8], inner: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + header.len() + inner.len());
    out.extend_from_slice(&(header.len() as u32).to_be_bytes());
    out.extend_from_slice(header);
    out.extend_from_slice(inner);
    out
}

/// Split a framed plaintext back into header and inner.
fn unframe(plain: &[u8]) -> Result<PeeledLayer, OnionError> {
    if plain.len() < 4 {
        return Err(OnionError::Malformed);
    }
    let hlen = u32::from_be_bytes([plain[0], plain[1], plain[2], plain[3]]) as usize;
    if plain.len() < 4 + hlen {
        return Err(OnionError::Malformed);
    }
    Ok(PeeledLayer {
        header: plain[4..4 + hlen].to_vec(),
        inner: plain[4 + hlen..].to_vec(),
    })
}

/// Errors from peeling an onion layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnionError {
    /// The layer failed authentication (wrong key or tampering).
    Crypto(CipherError),
    /// The decrypted plaintext did not parse as a framed layer.
    Malformed,
}

impl From<CipherError> for OnionError {
    fn from(e: CipherError) -> Self {
        OnionError::Crypto(e)
    }
}

impl std::fmt::Display for OnionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnionError::Crypto(e) => write!(f, "onion layer crypto failure: {e}"),
            OnionError::Malformed => write!(f, "onion layer framing malformed"),
        }
    }
}

impl std::error::Error for OnionError {}

/// Build an onion from the inside out.
///
/// `layers` is ordered **outermost first** — the same order the message will
/// traverse hops — where each element is `(key, header)`: the symmetric key
/// the hop holds and the routing header it should see. `core` is the
/// innermost payload revealed to the final hop alongside its header.
///
/// With hops `[(K1, h1'), (K2, h2'), (K3, h3')]` and core `m` this produces
/// `{h1', {h2', {h3', m}_K3}_K2}_K1` — matching Fig. 1 when each `hi'` names
/// the *next* destination.
pub fn wrap<R: Rng + ?Sized>(
    rng: &mut R,
    layers: &[(SymmetricKey, Vec<u8>)],
    core: &[u8],
) -> Vec<u8> {
    assert!(!layers.is_empty(), "an onion needs at least one layer");
    let mut inner: Vec<u8> = core.to_vec();
    let mut first = true;
    for (key, header) in layers.iter().rev() {
        let plain = if first {
            first = false;
            frame(header, &inner)
        } else {
            frame(header, &inner)
        };
        inner = key.seal(rng, &plain);
    }
    inner
}

/// Peel one layer with `key`, returning this hop's header and the sealed
/// remainder (the innermost layer's remainder is the core payload).
pub fn peel(key: &SymmetricKey, onion: &[u8]) -> Result<PeeledLayer, OnionError> {
    let plain = key.open(onion)?;
    unframe(&plain)
}

/// Peel an entire onion with a known key sequence (outermost first),
/// returning every header plus the core payload. Test/analysis helper: real
/// hops only ever peel their own single layer.
pub fn peel_all(
    keys: &[SymmetricKey],
    onion: &[u8],
) -> Result<(Vec<Vec<u8>>, Vec<u8>), OnionError> {
    let mut headers = Vec::with_capacity(keys.len());
    let mut cursor = onion.to_vec();
    for key in keys {
        let layer = peel(key, &cursor)?;
        headers.push(layer.header);
        cursor = layer.inner;
    }
    Ok((headers, cursor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys(n: usize, seed: u64) -> (Vec<SymmetricKey>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ks = (0..n).map(|_| SymmetricKey::generate(&mut rng)).collect();
        (ks, rng)
    }

    #[test]
    fn three_hop_onion_matches_fig1() {
        let (ks, mut rng) = keys(3, 1);
        let layers: Vec<_> = ks
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, format!("hop-header-{i}").into_bytes()))
            .collect();
        let onion = wrap(&mut rng, &layers, b"{D, m}");

        // Hop 1 peels with K1, sees its header, forwards the inner onion.
        let l1 = peel(&ks[0], &onion).unwrap();
        assert_eq!(l1.header, b"hop-header-0");
        let l2 = peel(&ks[1], &l1.inner).unwrap();
        assert_eq!(l2.header, b"hop-header-1");
        let l3 = peel(&ks[2], &l2.inner).unwrap();
        assert_eq!(l3.header, b"hop-header-2");
        assert_eq!(l3.inner, b"{D, m}");
    }

    #[test]
    fn peel_all_agrees_with_sequential_peels() {
        let (ks, mut rng) = keys(5, 2);
        let layers: Vec<_> = ks.iter().map(|k| (*k, vec![0xAA; 8])).collect();
        let onion = wrap(&mut rng, &layers, b"core");
        let (headers, core) = peel_all(&ks, &onion).unwrap();
        assert_eq!(headers.len(), 5);
        assert!(headers.iter().all(|h| h == &vec![0xAA; 8]));
        assert_eq!(core, b"core");
    }

    #[test]
    fn wrong_hop_key_fails_cleanly() {
        let (ks, mut rng) = keys(2, 3);
        let layers: Vec<_> = ks.iter().map(|k| (*k, b"h".to_vec())).collect();
        let onion = wrap(&mut rng, &layers, b"core");
        // Peeling the outer layer with the inner key must fail.
        assert!(matches!(
            peel(&ks[1], &onion),
            Err(OnionError::Crypto(CipherError::BadTag))
        ));
    }

    #[test]
    fn out_of_order_peeling_fails() {
        let (ks, mut rng) = keys(3, 4);
        let layers: Vec<_> = ks.iter().map(|k| (*k, b"h".to_vec())).collect();
        let onion = wrap(&mut rng, &layers, b"core");
        let l1 = peel(&ks[0], &onion).unwrap();
        // Skipping hop 2 and trying hop 3's key on hop 2's layer fails.
        assert!(peel(&ks[2], &l1.inner).is_err());
    }

    #[test]
    fn single_layer_onion() {
        let (ks, mut rng) = keys(1, 5);
        let onion = wrap(&mut rng, &[(ks[0], b"only".to_vec())], b"payload");
        let l = peel(&ks[0], &onion).unwrap();
        assert_eq!(l.header, b"only");
        assert_eq!(l.inner, b"payload");
    }

    #[test]
    fn empty_header_and_core() {
        let (ks, mut rng) = keys(2, 6);
        let layers: Vec<_> = ks.iter().map(|k| (*k, Vec::new())).collect();
        let onion = wrap(&mut rng, &layers, b"");
        let (headers, core) = peel_all(&ks, &onion).unwrap();
        assert!(headers.iter().all(|h| h.is_empty()));
        assert!(core.is_empty());
    }

    #[test]
    fn malformed_frame_detected() {
        let (ks, mut rng) = keys(1, 7);
        // Seal a plaintext that claims a longer header than it carries.
        let mut bogus = 100u32.to_be_bytes().to_vec();
        bogus.extend_from_slice(b"short");
        let sealed = ks[0].seal(&mut rng, &bogus);
        assert_eq!(peel(&ks[0], &sealed), Err(OnionError::Malformed));
    }

    proptest! {
        #[test]
        fn prop_wrap_peel_roundtrip(
            n in 1usize..6,
            core in proptest::collection::vec(any::<u8>(), 0..128),
            headers in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 6),
            seed in any::<u64>(),
        ) {
            let (ks, mut rng) = keys(n, seed);
            let layers: Vec<_> = ks
                .iter()
                .zip(headers.iter())
                .map(|(k, h)| (*k, h.clone()))
                .collect();
            let onion = wrap(&mut rng, &layers, &core);
            let (got_headers, got_core) = peel_all(&ks, &onion).unwrap();
            prop_assert_eq!(got_core, core);
            for (g, h) in got_headers.iter().zip(headers.iter()) {
                prop_assert_eq!(g, h);
            }
        }

        #[test]
        fn prop_layer_sizes_leak_only_depth(
            n in 1usize..5,
            seed in any::<u64>(),
        ) {
            // Each layer adds a fixed overhead: size reveals at most the
            // remaining depth, never the content.
            let (ks, mut rng) = keys(n, seed);
            let layers: Vec<_> = ks.iter().map(|k| (*k, vec![7u8; 16])).collect();
            let a = wrap(&mut rng, &layers, &[0u8; 64]);
            let b = wrap(&mut rng, &layers, &[1u8; 64]);
            prop_assert_eq!(a.len(), b.len());
        }
    }
}
