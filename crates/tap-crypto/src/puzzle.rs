//! CPU-payment puzzles against THA flooding (§3.3).
//!
//! "Malicious nodes can simply try to flood the system with random THAs …
//! The usual way of counteracting this type of attack is to charge the node
//! for deploying a THA. This charge can take the form of … a CPU-based
//! payment system that forces the node to solve some puzzles."
//!
//! We implement the hashcash variant: the storing node issues a random
//! challenge bound to the THA being deployed; the depositor must find a
//! nonce such that `SHA-256(challenge || tha_digest || nonce)` has
//! `difficulty` leading zero bits. Verification is one hash; solving is
//! expected `2^difficulty` hashes — an asymmetric cost that rate-limits
//! deployment without identifying the depositor.

use rand::Rng;

use crate::sha256::sha256;

/// A puzzle challenge issued by a storing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Puzzle {
    /// Random challenge bytes (prevents precomputation).
    pub challenge: [u8; 16],
    /// Required number of leading zero bits in the solution hash.
    pub difficulty: u8,
}

/// A claimed solution to a [`Puzzle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PuzzleSolution {
    /// The nonce found by the solver.
    pub nonce: u64,
}

impl Puzzle {
    /// Issue a fresh puzzle at `difficulty` leading zero bits.
    pub fn issue<R: Rng + ?Sized>(rng: &mut R, difficulty: u8) -> Puzzle {
        debug_assert!(difficulty <= 64, "difficulty beyond practical range");
        let mut challenge = [0u8; 16];
        rng.fill(&mut challenge[..]);
        Puzzle {
            challenge,
            difficulty,
        }
    }

    fn digest(&self, binding: &[u8], nonce: u64) -> [u8; 32] {
        let mut buf = Vec::with_capacity(16 + binding.len() + 8);
        buf.extend_from_slice(&self.challenge);
        buf.extend_from_slice(binding);
        buf.extend_from_slice(&nonce.to_be_bytes());
        sha256(&buf)
    }

    /// Brute-force a solution. `binding` ties the work to a specific THA so
    /// a solution cannot be reused for a different deployment.
    pub fn solve(&self, binding: &[u8]) -> PuzzleSolution {
        let mut nonce = 0u64;
        loop {
            if leading_zero_bits(&self.digest(binding, nonce)) >= self.difficulty as u32 {
                return PuzzleSolution { nonce };
            }
            nonce = nonce.wrapping_add(1);
        }
    }

    /// Verify a claimed solution in one hash.
    pub fn verify(&self, binding: &[u8], solution: &PuzzleSolution) -> bool {
        leading_zero_bits(&self.digest(binding, solution.nonce)) >= self.difficulty as u32
    }
}

fn leading_zero_bits(digest: &[u8; 32]) -> u32 {
    let mut bits = 0;
    for &b in digest {
        if b == 0 {
            bits += 8;
        } else {
            bits += b.leading_zeros();
            break;
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solve_and_verify() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Puzzle::issue(&mut rng, 10);
        let sol = p.solve(b"tha-digest");
        assert!(p.verify(b"tha-digest", &sol));
    }

    #[test]
    fn solution_bound_to_tha() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = Puzzle::issue(&mut rng, 12);
        let sol = p.solve(b"tha-A");
        // Reusing the proof of work for a different THA must fail (except
        // with ~2^-12 luck, ruled out by the fixed seed).
        assert!(!p.verify(b"tha-B", &sol));
    }

    #[test]
    fn solution_bound_to_challenge() {
        let mut rng = StdRng::seed_from_u64(3);
        let p1 = Puzzle::issue(&mut rng, 12);
        let p2 = Puzzle::issue(&mut rng, 12);
        let sol = p1.solve(b"tha");
        assert!(!p2.verify(b"tha", &sol));
    }

    #[test]
    fn difficulty_zero_is_free() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = Puzzle::issue(&mut rng, 0);
        assert!(p.verify(b"x", &PuzzleSolution { nonce: 0 }));
    }

    #[test]
    fn higher_difficulty_needs_more_work() {
        // Statistical sanity: the average solving nonce grows with
        // difficulty. Averaged over challenges to avoid flakiness.
        let mut rng = StdRng::seed_from_u64(5);
        let avg = |d: u8, rng: &mut StdRng| -> f64 {
            let mut total = 0u64;
            for _ in 0..24 {
                let p = Puzzle::issue(rng, d);
                total += p.solve(b"work").nonce;
            }
            total as f64 / 24.0
        };
        let easy = avg(4, &mut rng);
        let hard = avg(10, &mut rng);
        assert!(
            hard > easy * 4.0,
            "difficulty 10 ({hard:.1}) should cost far more than 4 ({easy:.1})"
        );
    }

    #[test]
    fn leading_zero_bits_edges() {
        let mut d = [0u8; 32];
        assert_eq!(leading_zero_bits(&d), 256);
        d[0] = 0x80;
        assert_eq!(leading_zero_bits(&d), 0);
        d[0] = 0x01;
        assert_eq!(leading_zero_bits(&d), 7);
        d[0] = 0x00;
        d[1] = 0x40;
        assert_eq!(leading_zero_bits(&d), 9);
    }
}
