//! SHA-1 (FIPS 180-4), the hash Pastry and PAST use for 160-bit identifiers.
//!
//! SHA-1 is cryptographically broken for collision resistance against a
//! motivated attacker, but it is what the paper (and FreePastry 1.3) used to
//! derive ids, and the identifier space it induces is exactly what we need
//! to reproduce. Anything security-critical in this workspace (MACs, key
//! derivation) uses [`crate::sha256`] instead.

/// Output width in bytes.
pub const DIGEST_LEN: usize = 20;
const BLOCK_LEN: usize = 64;

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// A fresh hasher with the FIPS initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(BLOCK_LEN - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= BLOCK_LEN {
            let (block, tail) = rest.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finish and return the 20-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != BLOCK_LEN - 8 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / RFC 3174 test vectors.
    #[test]
    fn fips_vectors() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha1(&data), "split at {split}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths that straddle the 55/56/64-byte padding edges must all
        // be distinct and stable.
        let mut seen = std::collections::HashSet::new();
        for len in 50..70 {
            let data = vec![0xabu8; len];
            assert!(seen.insert(sha1(&data)), "collision at length {len}");
        }
    }
}
