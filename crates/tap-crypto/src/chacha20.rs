//! The ChaCha20 stream cipher (RFC 8439), our `{m}_K`.
//!
//! The paper treats the symmetric cipher as a black box; we pick ChaCha20
//! because it is simple enough to implement from scratch without lookup
//! tables or unsafe code, and because RFC 8439 publishes complete
//! intermediate test vectors to validate against.

/// Key width in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce width in bytes (the RFC 8439 96-bit nonce).
pub const NONCE_LEN: usize = 12;
const BLOCK_LEN: usize = 64;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Compute one 64-byte keystream block for `(key, counter, nonce)`.
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let v = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// XOR `data` in place with the ChaCha20 keystream starting at block
/// `initial_counter`. Encryption and decryption are the same operation.
pub fn apply_keystream(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let ks = block(key, counter, nonce);
        for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
            *byte ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.3.2: the block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, 1, &nonce);
        assert_eq!(
            hex(&out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 8439 §2.4.2: encryption of the "sunscreen" plaintext.
    #[test]
    fn rfc8439_encryption_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        apply_keystream(&key, &nonce, 1, &mut data);
        let expect = unhex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expect);
        // Round-trip back to plaintext.
        apply_keystream(&key, &nonce, 1, &mut data);
        assert_eq!(&data, plaintext);
    }

    #[test]
    fn keystream_is_counter_continuous() {
        // Applying to one long buffer equals applying block by block.
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let mut whole = vec![0u8; 200];
        apply_keystream(&key, &nonce, 5, &mut whole);
        let mut pieces = vec![0u8; 200];
        apply_keystream(&key, &nonce, 5, &mut pieces[..64]);
        apply_keystream(&key, &nonce, 6, &mut pieces[64..128]);
        apply_keystream(&key, &nonce, 7, &mut pieces[128..192]);
        apply_keystream(&key, &nonce, 8, &mut pieces[192..]);
        assert_eq!(whole, pieces);
    }

    #[test]
    fn distinct_nonces_give_distinct_streams() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        apply_keystream(&key, &[0u8; 12], 0, &mut a);
        apply_keystream(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }
}
