//! The ChaCha20 stream cipher (RFC 8439), our `{m}_K`.
//!
//! The paper treats the symmetric cipher as a black box; we pick ChaCha20
//! because it is simple enough to implement from scratch without lookup
//! tables or unsafe code, and because RFC 8439 publishes complete
//! intermediate test vectors to validate against.
//!
//! Two keystream engines share one round function:
//!
//! * [`block`] — the scalar reference, one 64-byte block per call, kept
//!   verbatim against the RFC vectors;
//! * a wide kernel computing [`WIDE_BLOCKS`] independent blocks per
//!   round-function invocation over interleaved `[u32; WIDE_BLOCKS]` lanes,
//!   so the sixteen quarter-round data dependencies overlap across lanes
//!   (ILP / autovectorization) instead of serializing.
//!
//! [`KeystreamCursor`] positions the keystream at any *byte* offset and
//! feeds from whichever engine fits the remaining demand; it is
//! counter-continuous with the scalar stream everywhere, so every consumer
//! — [`apply_keystream`], the sealed-cipher path, the fused onion codec —
//! produces bit-identical output to the one-block-at-a-time loop.

/// Key width in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce width in bytes (the RFC 8439 96-bit nonce).
pub const NONCE_LEN: usize = 12;
/// Keystream block width in bytes.
pub const BLOCK_LEN: usize = 64;
/// Blocks the wide kernel produces per round-function invocation.
pub const WIDE_BLOCKS: usize = 4;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// RFC 8439 §2.3 initial state for `(key, counter, nonce)`.
#[inline]
fn init_state(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    state
}

/// Compute one 64-byte keystream block for `(key, counter, nonce)`.
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let state = init_state(key, counter, nonce);
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let v = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// One quarter-round step over all [`WIDE_BLOCKS`] lanes at once. Each
/// state word is a `[u32; WIDE_BLOCKS]` row; the fixed-trip-count lane
/// loops compile to straight-line SIMD (or at worst four independent
/// scalar chains), which is the whole point: the rotate/add/xor latency
/// chain of one block overlaps with three others.
#[inline(always)]
// Each lane loop reads one row of `s` and writes another; iterator zips
// can't borrow two rows of the same array at once, and the fixed-trip
// indexed form is exactly the shape the autovectorizer wants.
#[allow(clippy::needless_range_loop)]
fn quarter_round_wide(s: &mut [[u32; WIDE_BLOCKS]; 16], a: usize, b: usize, c: usize, d: usize) {
    for l in 0..WIDE_BLOCKS {
        s[a][l] = s[a][l].wrapping_add(s[b][l]);
    }
    for l in 0..WIDE_BLOCKS {
        s[d][l] = (s[d][l] ^ s[a][l]).rotate_left(16);
    }
    for l in 0..WIDE_BLOCKS {
        s[c][l] = s[c][l].wrapping_add(s[d][l]);
    }
    for l in 0..WIDE_BLOCKS {
        s[b][l] = (s[b][l] ^ s[c][l]).rotate_left(12);
    }
    for l in 0..WIDE_BLOCKS {
        s[a][l] = s[a][l].wrapping_add(s[b][l]);
    }
    for l in 0..WIDE_BLOCKS {
        s[d][l] = (s[d][l] ^ s[a][l]).rotate_left(8);
    }
    for l in 0..WIDE_BLOCKS {
        s[c][l] = s[c][l].wrapping_add(s[d][l]);
    }
    for l in 0..WIDE_BLOCKS {
        s[b][l] = (s[b][l] ^ s[c][l]).rotate_left(7);
    }
}

/// Compute [`WIDE_BLOCKS`] consecutive keystream blocks (counters
/// `counter`, `counter+1`, … with the same wrapping semantics as the
/// scalar loop) in one interleaved round-function pass. `out[l*64..]`
/// holds the block for counter `counter + l` — bit-identical to
/// [`block`] at that counter.
fn blocks_wide(
    key: &[u8; KEY_LEN],
    counter: u32,
    nonce: &[u8; NONCE_LEN],
    out: &mut [u8; BLOCK_LEN * WIDE_BLOCKS],
) {
    let base = init_state(key, counter, nonce);
    let mut init = [[0u32; WIDE_BLOCKS]; 16];
    for (i, row) in init.iter_mut().enumerate() {
        *row = [base[i]; WIDE_BLOCKS];
    }
    for (l, slot) in init[12].iter_mut().enumerate() {
        *slot = counter.wrapping_add(l as u32);
    }
    let mut s = init;
    for _ in 0..10 {
        quarter_round_wide(&mut s, 0, 4, 8, 12);
        quarter_round_wide(&mut s, 1, 5, 9, 13);
        quarter_round_wide(&mut s, 2, 6, 10, 14);
        quarter_round_wide(&mut s, 3, 7, 11, 15);
        quarter_round_wide(&mut s, 0, 5, 10, 15);
        quarter_round_wide(&mut s, 1, 6, 11, 12);
        quarter_round_wide(&mut s, 2, 7, 8, 13);
        quarter_round_wide(&mut s, 3, 4, 9, 14);
    }
    for l in 0..WIDE_BLOCKS {
        for i in 0..16 {
            let v = s[i][l].wrapping_add(init[i][l]);
            let at = l * BLOCK_LEN + i * 4;
            out[at..at + 4].copy_from_slice(&v.to_le_bytes());
        }
    }
}

/// XOR `ks` into `dst`, eight bytes per `u64` step.
#[inline]
fn xor_bytes(dst: &mut [u8], ks: &[u8]) {
    debug_assert!(ks.len() >= dst.len());
    let n = dst.len();
    for (d, k) in dst[..n - n % 8].chunks_exact_mut(8).zip(ks.chunks_exact(8)) {
        let x = u64::from_le_bytes(d[..8].try_into().expect("8-byte chunk"))
            ^ u64::from_le_bytes(k[..8].try_into().expect("8-byte chunk"));
        d.copy_from_slice(&x.to_le_bytes());
    }
    for (d, k) in dst[n - n % 8..].iter_mut().zip(&ks[n - n % 8..]) {
        *d ^= k;
    }
}

/// A sequential view of one `(key, nonce, initial_counter)` keystream,
/// positionable at any byte offset. Keystream is generated on demand —
/// through the wide kernel when at least three blocks are wanted, the
/// scalar [`block`] otherwise — and buffered, so arbitrarily fragmented
/// [`KeystreamCursor::xor_into`] calls still see every block computed
/// exactly once. The bytes produced are identical to the scalar stream at
/// the same offsets, whatever the call pattern.
#[derive(Debug, Clone)]
pub struct KeystreamCursor {
    key: [u8; KEY_LEN],
    nonce: [u8; NONCE_LEN],
    /// Counter of the next block to generate.
    counter: u32,
    buf: [u8; BLOCK_LEN * WIDE_BLOCKS],
    /// Next unconsumed byte in `buf[..len]`.
    pos: usize,
    /// Valid bytes in `buf`.
    len: usize,
}

impl KeystreamCursor {
    /// A cursor at byte 0 of the stream starting at `initial_counter`
    /// (the position [`apply_keystream`] starts from).
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], initial_counter: u32) -> Self {
        KeystreamCursor {
            key: *key,
            nonce: *nonce,
            counter: initial_counter,
            buf: [0u8; BLOCK_LEN * WIDE_BLOCKS],
            pos: 0,
            len: 0,
        }
    }

    /// A cursor positioned `byte_offset` bytes into the same stream:
    /// counter-continuous with [`apply_keystream`]`(key, nonce,
    /// initial_counter, ..)` at that offset, including mid-block.
    pub fn at_offset(
        key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        initial_counter: u32,
        byte_offset: usize,
    ) -> Self {
        let mut c = KeystreamCursor::new(key, nonce, initial_counter);
        c.counter = initial_counter.wrapping_add((byte_offset / BLOCK_LEN) as u32);
        let skip = byte_offset % BLOCK_LEN;
        if skip != 0 {
            // Materialize the straddled block and discard its head.
            let b = block(&c.key, c.counter, &c.nonce);
            c.buf[..BLOCK_LEN].copy_from_slice(&b);
            c.counter = c.counter.wrapping_add(1);
            c.pos = skip;
            c.len = BLOCK_LEN;
        }
        c
    }

    /// XOR the next `data.len()` keystream bytes into `data`, advancing
    /// the cursor.
    pub fn xor_into(&mut self, mut data: &mut [u8]) {
        loop {
            let avail = self.len - self.pos;
            if avail > 0 {
                let take = avail.min(data.len());
                xor_bytes(&mut data[..take], &self.buf[self.pos..self.pos + take]);
                self.pos += take;
                data = &mut data[take..];
            }
            if data.is_empty() {
                return;
            }
            self.refill(data.len());
        }
    }

    /// Generate more keystream into the (exhausted) buffer. Demand of
    /// three blocks or more goes through the wide kernel — its four lanes
    /// cost well under three scalar blocks — smaller demand computes
    /// exactly the scalar blocks it needs, so short messages never pay
    /// for keystream they throw away.
    fn refill(&mut self, demand: usize) {
        debug_assert_eq!(self.pos, self.len, "refill only on an empty buffer");
        let blocks_needed = demand.div_ceil(BLOCK_LEN);
        if blocks_needed >= WIDE_BLOCKS - 1 {
            blocks_wide(&self.key, self.counter, &self.nonce, &mut self.buf);
            self.counter = self.counter.wrapping_add(WIDE_BLOCKS as u32);
            self.len = BLOCK_LEN * WIDE_BLOCKS;
        } else {
            for i in 0..blocks_needed {
                let b = block(&self.key, self.counter, &self.nonce);
                self.buf[i * BLOCK_LEN..(i + 1) * BLOCK_LEN].copy_from_slice(&b);
                self.counter = self.counter.wrapping_add(1);
            }
            self.len = blocks_needed * BLOCK_LEN;
        }
        self.pos = 0;
    }
}

/// XOR `data` in place with the ChaCha20 keystream starting at block
/// `initial_counter`. Encryption and decryption are the same operation.
pub fn apply_keystream(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    KeystreamCursor::new(key, nonce, initial_counter).xor_into(data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// The pre-rewrite scalar loop, verbatim: the reference every wide
    /// path must match byte for byte.
    fn apply_keystream_scalar(
        key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        initial_counter: u32,
        data: &mut [u8],
    ) {
        let mut counter = initial_counter;
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = block(key, counter, nonce);
            for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
                *byte ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    // RFC 8439 §2.3.2: the block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, 1, &nonce);
        assert_eq!(
            hex(&out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 8439 §2.4.2: encryption of the "sunscreen" plaintext.
    #[test]
    fn rfc8439_encryption_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        apply_keystream(&key, &nonce, 1, &mut data);
        let expect = unhex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expect);
        // Round-trip back to plaintext.
        apply_keystream(&key, &nonce, 1, &mut data);
        assert_eq!(&data, plaintext);
    }

    // RFC 8439 A.1 test vectors #1 and #2: four consecutive keystream
    // blocks in one buffer exercise the wide kernel against published
    // bytes (the §2 vectors above never span more than two blocks).
    #[test]
    fn rfc8439_appendix_a1_multi_block_keystream() {
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        let mut stream = vec![0u8; 4 * BLOCK_LEN];
        apply_keystream(&key, &nonce, 0, &mut stream);
        // A.1 #1: counter 0.
        assert_eq!(
            hex(&stream[..BLOCK_LEN]),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7\
             da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586"
        );
        // A.1 #2: counter 1, same zero key and nonce.
        assert_eq!(
            hex(&stream[BLOCK_LEN..2 * BLOCK_LEN]),
            "9f07e7be5551387a98ba977c732d080dcb0f29a048e3656912c6533e32ee7aed\
             29b721769ce64e43d57133b074d839d531ed1f28510afb45ace10a1f4b794d6f"
        );
        // Counters 2 and 3 pin the remaining wide lanes to the scalar
        // block function (itself pinned to §2.3.2 above).
        assert_eq!(
            &stream[2 * BLOCK_LEN..3 * BLOCK_LEN],
            &block(&key, 2, &nonce)
        );
        assert_eq!(&stream[3 * BLOCK_LEN..], &block(&key, 3, &nonce));
    }

    #[test]
    fn keystream_is_counter_continuous() {
        // Applying to one long buffer equals applying block by block.
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let mut whole = vec![0u8; 200];
        apply_keystream(&key, &nonce, 5, &mut whole);
        let mut pieces = vec![0u8; 200];
        apply_keystream(&key, &nonce, 5, &mut pieces[..64]);
        apply_keystream(&key, &nonce, 6, &mut pieces[64..128]);
        apply_keystream(&key, &nonce, 7, &mut pieces[128..192]);
        apply_keystream(&key, &nonce, 8, &mut pieces[192..]);
        assert_eq!(whole, pieces);
    }

    #[test]
    fn distinct_nonces_give_distinct_streams() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        apply_keystream(&key, &[0u8; 12], 0, &mut a);
        apply_keystream(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn wide_blocks_match_scalar_blocks_across_counter_wrap() {
        let key: [u8; 32] = core::array::from_fn(|i| (i * 7) as u8);
        let nonce: [u8; 12] = core::array::from_fn(|i| (i * 13) as u8);
        for counter in [0u32, 1, 1000, u32::MAX - 3, u32::MAX - 1, u32::MAX] {
            let mut wide = [0u8; BLOCK_LEN * WIDE_BLOCKS];
            blocks_wide(&key, counter, &nonce, &mut wide);
            for l in 0..WIDE_BLOCKS {
                assert_eq!(
                    &wide[l * BLOCK_LEN..(l + 1) * BLOCK_LEN],
                    &block(&key, counter.wrapping_add(l as u32), &nonce),
                    "counter={counter} lane={l}"
                );
            }
        }
    }

    #[test]
    fn cursor_at_offset_matches_stream_suffix() {
        let key = [9u8; 32];
        let nonce = [4u8; 12];
        let mut reference = vec![0u8; 1000];
        apply_keystream_scalar(&key, &nonce, 1, &mut reference);
        for offset in [0usize, 1, 63, 64, 65, 128, 257, 640, 999] {
            let mut got = vec![0u8; 1000 - offset];
            KeystreamCursor::at_offset(&key, &nonce, 1, offset).xor_into(&mut got);
            assert_eq!(got, reference[offset..], "offset={offset}");
        }
    }

    proptest! {
        // Tentpole equivalence: the wide path is bit-identical to the
        // scalar loop at arbitrary lengths and counters, including
        // counter-boundary and counter-wrap starts.
        #[test]
        fn prop_wide_equals_scalar(
            len in 0usize..1200,
            counter_seed in any::<u32>(),
            wrap_case in 0usize..3,
            key_seed in any::<u64>(),
        ) {
            // Exercise arbitrary counters plus the wrap boundary and zero.
            let counter = match wrap_case {
                0 => counter_seed,
                1 => u32::MAX - 2,
                _ => 0,
            };
            let key: [u8; 32] = core::array::from_fn(|i| (key_seed >> (i % 8)) as u8 ^ i as u8);
            let nonce: [u8; 12] = core::array::from_fn(|i| (key_seed >> (2 * i % 60)) as u8);
            let mut wide = vec![0xA5u8; len];
            let mut scalar = wide.clone();
            apply_keystream(&key, &nonce, counter, &mut wide);
            apply_keystream_scalar(&key, &nonce, counter, &mut scalar);
            prop_assert_eq!(wide, scalar);
        }

        // A cursor consumed in arbitrary fragments — unaligned offsets,
        // splits inside and across block boundaries — equals one scalar
        // sweep of the same region.
        #[test]
        fn prop_fragmented_cursor_equals_scalar(
            pieces in proptest::collection::vec(1usize..150, 1..12),
            start_offset in 0usize..200,
            counter in any::<u32>(),
        ) {
            let key = [0x42u8; 32];
            let nonce = [0x17u8; 12];
            let total: usize = pieces.iter().sum();
            let mut reference = vec![0u8; start_offset + total];
            apply_keystream_scalar(&key, &nonce, counter, &mut reference);

            let mut got = vec![0u8; total];
            let mut cursor = KeystreamCursor::at_offset(&key, &nonce, counter, start_offset);
            let mut at = 0;
            for p in pieces {
                cursor.xor_into(&mut got[at..at + p]);
                at += p;
            }
            prop_assert_eq!(&got[..], &reference[start_offset..]);
        }
    }
}
