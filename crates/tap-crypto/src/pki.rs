//! Per-node keypairs and public-key "sealed boxes".
//!
//! The paper's bootstrap (§3.3) assumes every node has a private/public
//! keypair so an initiator can build a one-shot Onion Routing path without
//! any prior shared secret. We provide exactly that surface:
//!
//! * [`KeyPair`] / [`PublicKey`] — X25519 keys.
//! * [`SealedBox`] — anonymous public-key encryption: a fresh ephemeral
//!   X25519 key agrees with the recipient's static key, the shared secret
//!   keys a [`crate::cipher::SymmetricKey`], and the ephemeral public key
//!   travels in the header. The recipient learns nothing about the sender
//!   (crucial: an onion layer must not identify the initiator).

use rand::Rng;

use crate::cipher::{CipherError, SymmetricKey};
use crate::x25519;

/// A node's public key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey(pub [u8; 32]);

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PublicKey({:02x}{:02x}..)", self.0[0], self.0[1])
    }
}

/// A node's keypair.
#[derive(Clone)]
pub struct KeyPair {
    secret: [u8; 32],
    public: PublicKey,
}

impl std::fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyPair")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

impl KeyPair {
    /// Generate a fresh keypair.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut secret = [0u8; 32];
        rng.fill(&mut secret[..]);
        let public = PublicKey(x25519::public_key(&secret));
        KeyPair { secret, public }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Raw Diffie–Hellman against a peer's public key.
    pub fn agree(&self, peer: &PublicKey) -> [u8; 32] {
        x25519::x25519(&self.secret, &peer.0)
    }

    /// Open a [`SealedBox`] addressed to this keypair.
    pub fn open(&self, boxed: &SealedBox) -> Result<Vec<u8>, CipherError> {
        let shared = x25519::x25519(&self.secret, &boxed.ephemeral.0);
        let key = box_key(&shared, &boxed.ephemeral, &self.public);
        key.open(&boxed.sealed)
    }
}

/// Anonymous public-key ciphertext: ephemeral key plus sealed payload.
#[derive(Clone, PartialEq, Eq)]
pub struct SealedBox {
    /// The sender's one-shot ephemeral public key.
    pub ephemeral: PublicKey,
    /// `SymmetricKey::seal` output under the derived box key.
    pub sealed: Vec<u8>,
}

impl std::fmt::Debug for SealedBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SealedBox")
            .field("ephemeral", &self.ephemeral)
            .field("len", &self.sealed.len())
            .finish()
    }
}

impl SealedBox {
    /// Encrypt `plaintext` to `recipient` with a fresh ephemeral key.
    pub fn seal<R: Rng + ?Sized>(
        rng: &mut R,
        recipient: &PublicKey,
        plaintext: &[u8],
    ) -> SealedBox {
        let eph = KeyPair::generate(rng);
        let shared = eph.agree(recipient);
        let key = box_key(&shared, &eph.public(), recipient);
        SealedBox {
            ephemeral: eph.public(),
            sealed: key.seal(rng, plaintext),
        }
    }
}

/// Bind the box key to both public keys so a ciphertext cannot be replayed
/// to a different recipient.
fn box_key(shared: &[u8; 32], ephemeral: &PublicKey, recipient: &PublicKey) -> SymmetricKey {
    let mut transcript = Vec::with_capacity(96);
    transcript.extend_from_slice(shared);
    transcript.extend_from_slice(&ephemeral.0);
    transcript.extend_from_slice(&recipient.0);
    SymmetricKey::derive(&transcript, "tap.box")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seal_open_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let recipient = KeyPair::generate(&mut rng);
        let boxed = SealedBox::seal(&mut rng, &recipient.public(), b"onion layer");
        assert_eq!(recipient.open(&boxed).unwrap(), b"onion layer");
    }

    #[test]
    fn wrong_recipient_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let alice = KeyPair::generate(&mut rng);
        let eve = KeyPair::generate(&mut rng);
        let boxed = SealedBox::seal(&mut rng, &alice.public(), b"for alice");
        assert!(eve.open(&boxed).is_err());
    }

    #[test]
    fn tampered_ephemeral_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let alice = KeyPair::generate(&mut rng);
        let mut boxed = SealedBox::seal(&mut rng, &alice.public(), b"msg");
        boxed.ephemeral.0[5] ^= 1;
        assert!(alice.open(&boxed).is_err());
    }

    #[test]
    fn agreement_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        assert_eq!(a.agree(&b.public()), b.agree(&a.public()));
    }

    #[test]
    fn ciphertexts_are_unlinkable() {
        // Two boxes to the same recipient share no visible structure.
        let mut rng = StdRng::seed_from_u64(5);
        let alice = KeyPair::generate(&mut rng);
        let b1 = SealedBox::seal(&mut rng, &alice.public(), b"same");
        let b2 = SealedBox::seal(&mut rng, &alice.public(), b"same");
        assert_ne!(b1.ephemeral, b2.ephemeral);
        assert_ne!(b1.sealed, b2.sealed);
    }
}
