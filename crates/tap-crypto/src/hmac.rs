//! HMAC-SHA-256 (RFC 2104), plus the small HKDF-style key derivation used
//! to split one shared secret into independent per-purpose keys.

use crate::sha256::{sha256, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Compute `HMAC-SHA256(key, data)`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

/// Incremental HMAC-SHA-256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Start a MAC under `key` (any length; long keys are pre-hashed as the
    /// RFC requires).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..DIGEST_LEN].copy_from_slice(&sha256(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and return the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time tag comparison.
///
/// The simulator is not a remote-timing target, but verifying MACs in
/// constant time is free and keeps the primitive honest.
pub fn verify_tag(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Derive a labelled subkey from `secret`: `HMAC(secret, label || counter)`.
///
/// A one-step HKDF-Expand; sufficient because our secrets are already
/// uniform (X25519 outputs fed through SHA-256, or RNG-drawn keys).
pub fn derive_key(secret: &[u8], label: &str, counter: u8) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(secret);
    mac.update(label.as_bytes());
    mac.update(&[counter]);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases 1, 2, and 3.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 case 6: key longer than one block must be pre-hashed.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = b"some key";
        let data = b"split me into pieces";
        let mut mac = HmacSha256::new(key);
        mac.update(&data[..5]);
        mac.update(&data[5..]);
        assert_eq!(mac.finalize(), hmac_sha256(key, data));
    }

    #[test]
    fn verify_tag_behaviour() {
        let t = hmac_sha256(b"k", b"m");
        assert!(verify_tag(&t, &t));
        let mut bad = t;
        bad[0] ^= 1;
        assert!(!verify_tag(&t, &bad));
        assert!(!verify_tag(&t, &t[..31]), "length mismatch rejected");
    }

    #[test]
    fn derive_key_separates_labels_and_counters() {
        let s = b"master secret";
        let a = derive_key(s, "enc", 0);
        let b = derive_key(s, "enc", 1);
        let c = derive_key(s, "mac", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(a, derive_key(s, "enc", 0));
    }
}
