//! X25519 Diffie–Hellman (RFC 7748), from scratch.
//!
//! The paper assumes "each node has a pair of private and public keys"
//! (§3.3) so that a joining node can bootstrap its first anonymous tunnel
//! with Onion Routing. We realize that PKI with X25519: field arithmetic
//! over `2^255 - 19` in radix-2^51, a constant-time Montgomery ladder, and
//! nothing else. Validated against the RFC 7748 §5.2 and §6.1 vectors.

/// A field element mod `2^255 - 19` in five 51-bit limbs.
///
/// Invariant maintained between operations: every limb fits comfortably in
/// 52 bits, so sums of two elements never overflow a `u64` and products fit
/// the `u128` accumulators in [`mul`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Fe([u64; 5]);

const MASK51: u64 = (1u64 << 51) - 1;

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |off: usize| -> u64 {
            let mut v = 0u64;
            for i in 0..8 {
                v |= (bytes[off + i] as u64) << (8 * i);
            }
            v
        };
        // Five 51-bit windows of the 255-bit little-endian value
        // (the top bit of byte 31 is masked off, per RFC 7748 §5).
        Fe([
            load(0) & MASK51,
            (load(6) >> 3) & MASK51,
            (load(12) >> 6) & MASK51,
            (load(19) >> 1) & MASK51,
            (load(24) >> 12) & MASK51,
        ])
    }

    fn to_bytes(self) -> [u8; 32] {
        // Fully reduce into [0, p).
        let mut t = self.carry().carry().0;
        // Compute the borrow chain of (t + 19) >> 255 to decide whether
        // t >= p, then add 19*q and drop the carry out of the top limb.
        let mut q = (t[0].wrapping_add(19)) >> 51;
        q = (t[1].wrapping_add(q)) >> 51;
        q = (t[2].wrapping_add(q)) >> 51;
        q = (t[3].wrapping_add(q)) >> 51;
        q = (t[4].wrapping_add(q)) >> 51;
        t[0] = t[0].wrapping_add(19u64.wrapping_mul(q));
        let mut carry;
        carry = t[0] >> 51;
        t[0] &= MASK51;
        t[1] = t[1].wrapping_add(carry);
        carry = t[1] >> 51;
        t[1] &= MASK51;
        t[2] = t[2].wrapping_add(carry);
        carry = t[2] >> 51;
        t[2] &= MASK51;
        t[3] = t[3].wrapping_add(carry);
        carry = t[3] >> 51;
        t[3] &= MASK51;
        t[4] = t[4].wrapping_add(carry);
        t[4] &= MASK51;

        let mut out = [0u8; 32];
        let mut acc = 0u128;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for limb in t {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 {
                out[idx] = acc as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        if idx < 32 {
            out[idx] = acc as u8;
        }
        out
    }

    /// One pass of carry propagation; brings limbs back under ~52 bits.
    fn carry(self) -> Fe {
        let mut t = self.0;
        let mut c: u64;
        c = t[0] >> 51;
        t[0] &= MASK51;
        t[1] += c;
        c = t[1] >> 51;
        t[1] &= MASK51;
        t[2] += c;
        c = t[2] >> 51;
        t[2] &= MASK51;
        t[3] += c;
        c = t[3] >> 51;
        t[3] &= MASK51;
        t[4] += c;
        c = t[4] >> 51;
        t[4] &= MASK51;
        t[0] += c * 19;
        Fe(t)
    }

    fn add(self, rhs: Fe) -> Fe {
        Fe([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
            self.0[4] + rhs.0[4],
        ])
        .carry()
    }

    fn sub(self, rhs: Fe) -> Fe {
        // Add 2p before subtracting so limbs never underflow.
        Fe([
            self.0[0] + 0xfffffffffffda - rhs.0[0],
            self.0[1] + 0xffffffffffffe - rhs.0[1],
            self.0[2] + 0xffffffffffffe - rhs.0[2],
            self.0[3] + 0xffffffffffffe - rhs.0[3],
            self.0[4] + 0xffffffffffffe - rhs.0[4],
        ])
        .carry()
    }

    fn mul(self, rhs: Fe) -> Fe {
        let a = &self.0;
        let b = &rhs.0;
        let m = |x: u64, y: u64| x as u128 * y as u128;
        let r0 =
            m(a[0], b[0]) + 19 * (m(a[1], b[4]) + m(a[2], b[3]) + m(a[3], b[2]) + m(a[4], b[1]));
        let r1 =
            m(a[0], b[1]) + m(a[1], b[0]) + 19 * (m(a[2], b[4]) + m(a[3], b[3]) + m(a[4], b[2]));
        let r2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + 19 * (m(a[3], b[4]) + m(a[4], b[3]));
        let r3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + 19 * m(a[4], b[4]);
        let r4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        let mut t = [0u64; 5];
        let mut c: u128;
        c = r0 >> 51;
        t[0] = r0 as u64 & MASK51;
        let r1 = r1 + c;
        c = r1 >> 51;
        t[1] = r1 as u64 & MASK51;
        let r2 = r2 + c;
        c = r2 >> 51;
        t[2] = r2 as u64 & MASK51;
        let r3 = r3 + c;
        c = r3 >> 51;
        t[3] = r3 as u64 & MASK51;
        let r4 = r4 + c;
        c = r4 >> 51;
        t[4] = r4 as u64 & MASK51;
        t[0] += (c as u64) * 19;
        Fe(t).carry()
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    /// Multiply by the curve constant `a24 = 121665`.
    fn mul_small(self, k: u32) -> Fe {
        let mut t = [0u64; 5];
        let mut c: u128 = 0;
        for (out, limb) in t.iter_mut().zip(self.0.iter()) {
            let v = *limb as u128 * k as u128 + c;
            *out = v as u64 & MASK51;
            c = v >> 51;
        }
        t[0] += (c as u64) * 19;
        Fe(t).carry()
    }

    /// Inversion via Fermat: `self^(p-2)`, p-2 = 2^255 - 21.
    fn invert(self) -> Fe {
        // Square-and-multiply over the fixed exponent bits. Constant time
        // is inherited because the exponent is a public constant.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb; // 2^255 - 21, little-endian
        exp[31] = 0x7f;
        let mut acc = Fe::ONE;
        for i in (0..255).rev() {
            acc = acc.square();
            if (exp[i / 8] >> (i % 8)) & 1 == 1 {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Constant-time conditional swap driven by `swap ∈ {0, 1}`.
    fn cswap(swap: u64, a: &mut Fe, b: &mut Fe) {
        debug_assert!(swap <= 1);
        let mask = swap.wrapping_neg();
        for i in 0..5 {
            let x = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= x;
            b.0[i] ^= x;
        }
    }
}

/// Clamp a 32-byte scalar as RFC 7748 §5 prescribes.
fn clamp(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// The X25519 function: scalar-multiply the point with u-coordinate `u` by
/// the clamped `scalar`.
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp(*scalar);
    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let kt = ((k[t / 8] >> (t % 8)) & 1) as u64;
        swap ^= kt;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = kt;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121665)));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);
    x2.mul(z2.invert()).to_bytes()
}

/// The canonical base point (u = 9).
pub const BASEPOINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Derive the public key for `scalar`: `X25519(scalar, 9)`.
pub fn public_key(scalar: &[u8; 32]) -> [u8; 32] {
    x25519(scalar, &BASEPOINT)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap();
        }
        out
    }

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(
            hex(&x25519(&scalar, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector2() {
        let scalar = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        assert_eq!(
            hex(&x25519(&scalar, &u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    // RFC 7748 §5.2: one iteration of the iterated vector.
    #[test]
    fn rfc7748_iterated_once() {
        let k = unhex32("0900000000000000000000000000000000000000000000000000000000000000");
        let out = x25519(&k, &k);
        assert_eq!(
            hex(&out),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    // RFC 7748 §5.2: a thousand iterations of the iterated vector.
    #[test]
    fn rfc7748_iterated_thousand() {
        let mut k = unhex32("0900000000000000000000000000000000000000000000000000000000000000");
        let mut u = k;
        for _ in 0..1000 {
            let next = x25519(&k, &u);
            u = k;
            k = next;
        }
        assert_eq!(
            hex(&k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        );
    }

    // RFC 7748 §6.1: the full Diffie–Hellman exchange.
    #[test]
    fn rfc7748_dh_exchange() {
        let alice_priv =
            unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_priv = unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pub = public_key(&alice_priv);
        let bob_pub = public_key(&bob_priv);
        assert_eq!(
            hex(&alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex(&bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let k_a = x25519(&alice_priv, &bob_pub);
        let k_b = x25519(&bob_priv, &alice_pub);
        assert_eq!(k_a, k_b);
        assert_eq!(
            hex(&k_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn dh_commutes_for_random_keys() {
        use rand::{rngs::StdRng, RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..8 {
            let mut a = [0u8; 32];
            let mut b = [0u8; 32];
            rng.fill_bytes(&mut a);
            rng.fill_bytes(&mut b);
            let shared_ab = x25519(&a, &public_key(&b));
            let shared_ba = x25519(&b, &public_key(&a));
            assert_eq!(shared_ab, shared_ba);
            assert_ne!(shared_ab, [0u8; 32]);
        }
    }

    #[test]
    fn field_roundtrip() {
        // to_bytes ∘ from_bytes is the identity on canonical encodings.
        let cases = [
            [0u8; 32],
            {
                let mut b = [0u8; 32];
                b[0] = 1;
                b
            },
            unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c"),
        ];
        for c in cases {
            assert_eq!(Fe::from_bytes(&c).to_bytes(), c);
        }
    }

    #[test]
    fn field_reduces_noncanonical() {
        // p itself must encode as zero.
        let mut p = [0xffu8; 32];
        p[0] = 0xed;
        p[31] = 0x7f;
        assert_eq!(Fe::from_bytes(&p).to_bytes(), [0u8; 32]);
    }

    #[test]
    fn field_algebra() {
        let a = Fe::from_bytes(&unhex32(
            "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcd0f",
        ));
        let b = Fe::from_bytes(&unhex32(
            "fedcba9876543210fedcba9876543210fedcba9876543210fedcba987654320f",
        ));
        assert_eq!(a.add(b).sub(b).to_bytes(), a.to_bytes());
        assert_eq!(a.mul(b).to_bytes(), b.mul(a).to_bytes());
        assert_eq!(a.mul(a.invert()).to_bytes(), Fe::ONE.to_bytes());
        assert_eq!(a.square().to_bytes(), a.mul(a).to_bytes());
    }
}
