//! Authenticated symmetric encryption — the `{m}_K` of the paper.
//!
//! A [`SymmetricKey`] is the `K` stored inside a tunnel hop anchor. Sealing
//! is ChaCha20 under a fresh random nonce with an HMAC-SHA-256 tag
//! (encrypt-then-MAC); the wire format is `nonce || ciphertext || tag`.
//! Opening verifies the tag before touching the ciphertext, so a tunnel hop
//! can reject tampered or mis-keyed layers instead of forwarding garbage.

use rand::Rng;

use crate::chacha20::{self, KEY_LEN, NONCE_LEN};
use crate::hmac::{derive_key, hmac_sha256, verify_tag};

/// Tag width (truncated HMAC-SHA-256; 16 bytes keeps per-layer overhead at
/// 28 bytes while leaving a 2^-128 forgery bound).
pub const TAG_LEN: usize = 16;
/// Total sealing overhead per layer: nonce plus tag.
pub const SEAL_OVERHEAD: usize = NONCE_LEN + TAG_LEN;

/// Errors from [`SymmetricKey::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CipherError {
    /// The buffer is shorter than `nonce || tag` can possibly be.
    TooShort,
    /// Authentication failed: wrong key or corrupted ciphertext.
    BadTag,
}

impl std::fmt::Display for CipherError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CipherError::TooShort => write!(f, "sealed message too short"),
            CipherError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for CipherError {}

/// A 256-bit symmetric key (the `K` in a THA `<hopid, K, H(PW)>`).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SymmetricKey([u8; KEY_LEN]);

impl std::fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material in logs.
        write!(f, "SymmetricKey(..)")
    }
}

impl SymmetricKey {
    /// Wrap existing key bytes.
    pub const fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        SymmetricKey(bytes)
    }

    /// Generate a fresh random key — the paper's "random bit-string as the
    /// symmetric key K" (§3.2).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut k = [0u8; KEY_LEN];
        rng.fill(&mut k[..]);
        SymmetricKey(k)
    }

    /// Derive a key from a shared secret (used after a DH exchange).
    pub fn derive(secret: &[u8], label: &str) -> Self {
        SymmetricKey(derive_key(secret, label, 0))
    }

    /// Raw key bytes.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }

    /// The (encrypt, MAC) subkey split every sealed message uses. Exposed
    /// to the crate so the fused onion codec can run the same cipher and
    /// MAC streams incrementally; the bytes on the wire stay exactly
    /// those of [`SymmetricKey::seal_in_place`].
    pub(crate) fn subkeys(&self) -> ([u8; KEY_LEN], [u8; KEY_LEN]) {
        (
            derive_key(&self.0, "tap.enc", 0),
            derive_key(&self.0, "tap.mac", 0),
        )
    }

    /// Encrypt and authenticate `plaintext` under a fresh nonce.
    pub fn seal<R: Rng + ?Sized>(&self, rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; plaintext.len() + SEAL_OVERHEAD];
        out[NONCE_LEN..NONCE_LEN + plaintext.len()].copy_from_slice(plaintext);
        self.seal_in_place(rng, &mut out);
        out
    }

    /// Seal in place: `buf` is `nonce slot (12) || plaintext || tag slot
    /// (16)`. The nonce slot is filled from `rng`, the plaintext region is
    /// encrypted where it lies, and the tag slot is overwritten — no
    /// allocation. After the call `buf` holds exactly the bytes
    /// [`SymmetricKey::seal`] would have produced for the same plaintext
    /// and RNG position (one 12-byte `rng.fill` either way).
    pub fn seal_in_place<R: Rng + ?Sized>(&self, rng: &mut R, buf: &mut [u8]) {
        assert!(
            buf.len() >= SEAL_OVERHEAD,
            "seal_in_place needs room for nonce and tag"
        );
        let (enc_key, mac_key) = self.subkeys();
        let body_end = buf.len() - TAG_LEN;
        rng.fill(&mut buf[..NONCE_LEN]);
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&buf[..NONCE_LEN]);
        chacha20::apply_keystream(&enc_key, &nonce, 1, &mut buf[NONCE_LEN..body_end]);
        let tag = hmac_sha256(&mac_key, &buf[..body_end]);
        buf[body_end..].copy_from_slice(&tag[..TAG_LEN]);
    }

    /// Verify and decrypt a message produced by [`SymmetricKey::seal`].
    pub fn open(&self, sealed: &[u8]) -> Result<Vec<u8>, CipherError> {
        let mut buf = sealed.to_vec();
        let range = self.open_in_place(&mut buf)?;
        buf.truncate(range.end);
        buf.drain(..range.start);
        Ok(buf)
    }

    /// Verify and decrypt in place: on success the plaintext sits at the
    /// returned range of `sealed` (between the nonce and the tag) and the
    /// only cipher pass is the in-place decrypt — no copies. On failure the
    /// buffer is untouched (the tag is checked before anything is written).
    pub fn open_in_place(&self, sealed: &mut [u8]) -> Result<std::ops::Range<usize>, CipherError> {
        if sealed.len() < SEAL_OVERHEAD {
            return Err(CipherError::TooShort);
        }
        let (enc_key, mac_key) = self.subkeys();
        let body_end = sealed.len() - TAG_LEN;
        let expect = hmac_sha256(&mac_key, &sealed[..body_end]);
        if !verify_tag(&sealed[body_end..], &expect[..TAG_LEN]) {
            return Err(CipherError::BadTag);
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&sealed[..NONCE_LEN]);
        chacha20::apply_keystream(&enc_key, &nonce, 1, &mut sealed[NONCE_LEN..body_end]);
        Ok(NONCE_LEN..body_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> (SymmetricKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        (SymmetricKey::generate(&mut rng), rng)
    }

    #[test]
    fn roundtrip() {
        let (k, mut rng) = key(1);
        let msg = b"attack at dawn";
        let sealed = k.seal(&mut rng, msg);
        assert_eq!(sealed.len(), msg.len() + SEAL_OVERHEAD);
        assert_eq!(k.open(&sealed).unwrap(), msg);
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let (k, mut rng) = key(2);
        let sealed = k.seal(&mut rng, b"");
        assert_eq!(k.open(&sealed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn wrong_key_rejected() {
        let (k1, mut rng) = key(3);
        let (k2, _) = key(4);
        let sealed = k1.seal(&mut rng, b"secret");
        assert_eq!(k2.open(&sealed), Err(CipherError::BadTag));
    }

    #[test]
    fn tamper_any_byte_rejected() {
        let (k, mut rng) = key(5);
        let sealed = k.seal(&mut rng, b"hello world");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x40;
            assert_eq!(k.open(&bad), Err(CipherError::BadTag), "byte {i}");
        }
    }

    #[test]
    fn truncation_rejected() {
        let (k, mut rng) = key(6);
        let sealed = k.seal(&mut rng, b"hello");
        assert_eq!(
            k.open(&sealed[..SEAL_OVERHEAD - 1]),
            Err(CipherError::TooShort)
        );
        assert_eq!(
            k.open(&sealed[..sealed.len() - 1]),
            Err(CipherError::BadTag)
        );
    }

    #[test]
    fn nonces_randomize_ciphertexts() {
        let (k, mut rng) = key(7);
        let a = k.seal(&mut rng, b"same message");
        let b = k.seal(&mut rng, b"same message");
        assert_ne!(a, b, "sealing twice must not repeat ciphertext");
        assert_eq!(k.open(&a).unwrap(), k.open(&b).unwrap());
    }

    #[test]
    fn derive_is_deterministic_and_label_separated() {
        let a = SymmetricKey::derive(b"shared", "fwd");
        let b = SymmetricKey::derive(b"shared", "fwd");
        let c = SymmetricKey::derive(b"shared", "rev");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn in_place_seal_matches_allocating_seal() {
        let (k, mut rng) = key(8);
        let msg = b"same bytes either way";
        // Two RNG clones at the same position must produce identical
        // ciphertext through both APIs.
        let mut rng2 = rng.clone();
        let sealed = k.seal(&mut rng, msg);
        let mut buf = vec![0u8; msg.len() + SEAL_OVERHEAD];
        buf[NONCE_LEN..NONCE_LEN + msg.len()].copy_from_slice(msg);
        k.seal_in_place(&mut rng2, &mut buf);
        assert_eq!(buf, sealed);
    }

    #[test]
    fn in_place_open_decrypts_between_nonce_and_tag() {
        let (k, mut rng) = key(9);
        let msg = b"peel me where I stand";
        let mut sealed = k.seal(&mut rng, msg);
        let range = k.open_in_place(&mut sealed).unwrap();
        assert_eq!(range, NONCE_LEN..NONCE_LEN + msg.len());
        assert_eq!(&sealed[range], msg);
    }

    #[test]
    fn in_place_open_leaves_buffer_untouched_on_bad_tag() {
        let (k, mut rng) = key(10);
        let mut sealed = k.seal(&mut rng, b"tamper target");
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        let before = sealed.clone();
        assert_eq!(k.open_in_place(&mut sealed), Err(CipherError::BadTag));
        assert_eq!(sealed, before, "failed open must not scribble");
        let mut short = sealed[..SEAL_OVERHEAD - 1].to_vec();
        assert_eq!(k.open_in_place(&mut short), Err(CipherError::TooShort));
    }

    proptest! {
        #[test]
        fn prop_seal_open_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512), seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let k = SymmetricKey::generate(&mut rng);
            let sealed = k.seal(&mut rng, &data);
            prop_assert_eq!(k.open(&sealed).unwrap(), data);
        }

        #[test]
        fn prop_in_place_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512), seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let k = SymmetricKey::generate(&mut rng);
            let mut buf = vec![0u8; data.len() + SEAL_OVERHEAD];
            buf[NONCE_LEN..NONCE_LEN + data.len()].copy_from_slice(&data);
            k.seal_in_place(&mut rng, &mut buf);
            let range = k.open_in_place(&mut buf).unwrap();
            prop_assert_eq!(&buf[range], &data[..]);
        }
    }
}
