//! # tap-crypto — the cryptographic substrate for TAP
//!
//! TAP (Zhu & Hu, ICPP 2004) assumes a handful of cryptographic facilities
//! without depending on any particular algorithm:
//!
//! * a uniform collision-resistant hash `H` for deriving hop identifiers
//!   (`hopid = H(node_ID, hkey, t)`, §3.2) and for password commitments
//!   (`H(PW)` inside a tunnel hop anchor, §3.1);
//! * a symmetric cipher for the mix-style layered encryption `{m}_K` that
//!   every tunnel hop peels or adds (Fig. 1, §2);
//! * per-node public/private keypairs ("relying on a public key
//!   infrastructure", §3.3) so a node can bootstrap its first tunnel with
//!   Onion Routing;
//! * a defence against THA flooding — the paper suggests "a CPU-based
//!   payment system that forces the node to solve some puzzles" (§3.3).
//!
//! This crate implements all four **from scratch** (no external crypto
//! dependencies), each validated against published test vectors:
//!
//! | need | implementation | vectors |
//! |------|----------------|---------|
//! | `H` | [`sha1`] (Pastry's id width) and [`sha256`] | FIPS 180-4 |
//! | MAC / KDF | [`hmac`] (HMAC-SHA-256) | RFC 4231 |
//! | `{m}_K` | [`chacha20`] + the [`cipher::SymmetricKey`] AEAD-style seal | RFC 8439 |
//! | keypairs | [`x25519`] Diffie–Hellman + [`pki`] sealed boxes | RFC 7748 |
//! | puzzles | [`puzzle`] hashcash-style partial preimage | self-checking |
//!
//! [`onion`] builds the layered (onion) encoding used by both TAP tunnels
//! and the Onion-Routing bootstrap path on top of [`cipher`]. [`ec`] adds a
//! zero-dependency GF(2^8) Reed–Solomon codec so `tap-core` can stripe one
//! transfer across `n` parallel tunnels and reconstruct from any `k`
//! fragments (erasure-coded multipath transfer).
//!
//! Everything here is deterministic given an RNG, `#![forbid(unsafe_code)]`,
//! and allocation-conscious: the per-hop operation on the tunnel hot path is
//! exactly one ChaCha20 pass plus one HMAC, matching the paper's note that
//! "each tunnel hop performs only a single symmetric key operation per
//! message" (§4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha20;
pub mod cipher;
pub mod ec;
pub mod hmac;
pub mod onion;
pub mod pki;
pub mod puzzle;
pub mod sha1;
pub mod sha256;
pub mod x25519;

pub use cipher::{CipherError, SymmetricKey};
pub use pki::{KeyPair, PublicKey, SealedBox};
pub use puzzle::{Puzzle, PuzzleSolution};

use tap_id::Id;

/// Derive a 160-bit identifier by hashing the concatenation of `parts`.
///
/// This is the paper's `H(node_ID, hkey, t)` construction (§3.2): each part
/// is length-prefixed before hashing so that distinct part boundaries can
/// never collide ("12"+"3" vs "1"+"23").
pub fn derive_id(parts: &[&[u8]]) -> Id {
    let mut h = sha1::Sha1::new();
    for p in parts {
        h.update(&(p.len() as u64).to_be_bytes());
        h.update(p);
    }
    Id::from_bytes(h.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_id_respects_boundaries() {
        let a = derive_id(&[b"12", b"3"]);
        let b = derive_id(&[b"1", b"23"]);
        assert_ne!(a, b, "length prefixing must separate part boundaries");
        assert_eq!(a, derive_id(&[b"12", b"3"]), "deterministic");
    }

    #[test]
    fn derive_id_is_sha1_of_framed_input() {
        let id = derive_id(&[b"abc"]);
        let mut h = sha1::Sha1::new();
        h.update(&3u64.to_be_bytes());
        h.update(b"abc");
        assert_eq!(*id.as_bytes(), h.finalize());
    }
}
