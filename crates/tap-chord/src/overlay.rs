//! The Chord ring: membership, finger routing, successor-list failover.
//!
//! Like the Pastry overlay, node state is `Arc`-shared copy-on-write:
//! clones and [`ChordOverlay::checkpoint`] snapshots cost one pointer
//! bump per node, and a mutation copies only the node it touches.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use rand::Rng;
use tap_id::{Id, ID_BITS};
use tap_pastry::substrate::{KeyRouter, Snapshots};
use tap_pastry::RouteError;

/// Chord parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChordConfig {
    /// Successor-list length `r` (Chord's failover depth; the paper on
    /// Chord suggests `r = Ω(log N)`; 8 covers the network sizes here).
    pub successor_list: usize,
    /// Replication factor for the DHash-style replica set exposed to TAP.
    pub replication: usize,
}

impl ChordConfig {
    /// `r = 8`, `k = 3` — comparable to the Pastry defaults.
    pub fn defaults() -> Self {
        ChordConfig {
            successor_list: 8,
            replication: 3,
        }
    }

    /// Panics on inconsistent parameters.
    pub fn validate(&self) {
        assert!(self.successor_list >= 2, "successor list too short");
        assert!(
            self.replication <= self.successor_list,
            "replicas live on the successor list ({} > {})",
            self.replication,
            self.successor_list
        );
    }
}

/// Per-node Chord state.
#[derive(Debug, Clone)]
pub struct ChordNode {
    /// The node's identifier.
    pub id: Id,
    /// `fingers[i]` ≈ `successor(id + 2^i)`; dead entries repaired lazily.
    pub fingers: Vec<Option<Id>>,
    /// The next `r` live successors, eagerly maintained.
    pub successor_list: Vec<Id>,
    /// The ring predecessor, eagerly maintained.
    pub predecessor: Option<Id>,
}

impl ChordNode {
    fn new(id: Id) -> Self {
        ChordNode {
            id,
            fingers: vec![None; ID_BITS as usize],
            successor_list: Vec::new(),
            predecessor: None,
        }
    }

    /// The immediate successor (self on a singleton ring).
    pub fn successor(&self) -> Id {
        self.successor_list.first().copied().unwrap_or(self.id)
    }

    /// Number of populated finger entries (diagnostics).
    pub fn finger_occupancy(&self) -> usize {
        self.fingers.iter().flatten().count()
    }
}

/// A simulated Chord overlay.
#[derive(Clone)]
pub struct ChordOverlay {
    config: ChordConfig,
    nodes: HashMap<Id, Arc<ChordNode>>,
    ring: BTreeSet<Id>,
    order: Vec<Id>,
    pos: HashMap<Id, usize>,
}

/// A saved membership state from [`ChordOverlay::checkpoint`]: ring
/// indexes plus one `Arc` per node (pointer-sized, not finger-table-
/// sized).
#[derive(Clone)]
pub struct ChordCheckpoint {
    nodes: HashMap<Id, Arc<ChordNode>>,
    ring: BTreeSet<Id>,
    order: Vec<Id>,
    pos: HashMap<Id, usize>,
}

impl ChordOverlay {
    /// An empty ring.
    pub fn new(config: ChordConfig) -> Self {
        config.validate();
        ChordOverlay {
            config,
            nodes: HashMap::new(),
            ring: BTreeSet::new(),
            order: Vec::new(),
            pos: HashMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ChordConfig {
        &self.config
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Iterate over live node ids in ring order.
    pub fn ids(&self) -> impl Iterator<Item = Id> + '_ {
        self.ring.iter().copied()
    }

    /// Borrow a node's state.
    pub fn node(&self, id: Id) -> Option<&ChordNode> {
        self.nodes.get(&id).map(|n| &**n)
    }

    /// Save the current membership state (structural sharing; no finger
    /// table or successor list is copied).
    pub fn checkpoint(&self) -> ChordCheckpoint {
        ChordCheckpoint {
            nodes: self.nodes.clone(),
            ring: self.ring.clone(),
            order: self.order.clone(),
            pos: self.pos.clone(),
        }
    }

    /// Restore a state saved by [`ChordOverlay::checkpoint`], discarding
    /// every membership mutation made since.
    pub fn rollback(&mut self, cp: &ChordCheckpoint) {
        self.nodes = cp.nodes.clone();
        self.ring = cp.ring.clone();
        self.order = cp.order.clone();
        self.pos = cp.pos.clone();
    }

    /// A fully-owned copy sharing no node state with `self` (the deep
    /// oracle for the snapshot proptests).
    pub fn deep_clone(&self) -> ChordOverlay {
        ChordOverlay {
            config: self.config,
            nodes: self
                .nodes
                .iter()
                .map(|(&id, n)| (id, Arc::new(n.as_ref().clone())))
                .collect(),
            ring: self.ring.clone(),
            order: self.order.clone(),
            pos: self.pos.clone(),
        }
    }

    /// How many node handles are physically shared with `other`
    /// (diagnostics for the snapshot tests).
    pub fn handles_shared_with(&self, other: &ChordOverlay) -> usize {
        self.nodes
            .iter()
            .filter(|(id, n)| other.nodes.get(id).is_some_and(|o| Arc::ptr_eq(n, o)))
            .count()
    }

    /// A uniformly random live node.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Id> {
        if self.order.is_empty() {
            return None;
        }
        Some(self.order[rng.gen_range(0..self.order.len())])
    }

    /// Oracle: the first live node at or clockwise of `key` — Chord's
    /// `successor(key)`, the node responsible for it.
    pub fn successor_of(&self, key: Id) -> Option<Id> {
        if self.ring.is_empty() {
            return None;
        }
        self.ring
            .range(key..)
            .next()
            .or_else(|| self.ring.iter().next())
            .copied()
    }

    /// Oracle: `n` live nodes clockwise of `from` (exclusive).
    pub fn successors(&self, from: Id, n: usize) -> Vec<Id> {
        let mut out = Vec::with_capacity(n);
        for id in self
            .ring
            .range((std::ops::Bound::Excluded(from), std::ops::Bound::Unbounded))
            .chain(self.ring.range(..from))
        {
            if out.len() == n {
                break;
            }
            out.push(*id);
        }
        out
    }

    /// Oracle: `n` live nodes counter-clockwise of `from` (exclusive).
    pub fn predecessors(&self, from: Id, n: usize) -> Vec<Id> {
        let mut out = Vec::with_capacity(n);
        for id in self.ring.range(..from).rev().chain(
            self.ring
                .range((std::ops::Bound::Excluded(from), std::ops::Bound::Unbounded))
                .rev(),
        ) {
            if out.len() == n {
                break;
            }
            out.push(*id);
        }
        out
    }

    /// Add a node with a fresh random id; returns it.
    pub fn add_random_node<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Id {
        loop {
            let id = Id::random(rng);
            if self.add_node(id) {
                return id;
            }
        }
    }

    /// Join `id`. Fingers are built by lookups (here: against the oracle,
    /// the converged result of `fix_fingers`); the successor lists and
    /// predecessor pointers of the ring neighbourhood are updated eagerly,
    /// as Chord's `stabilize()` would converge to. Returns `false` if the
    /// id is taken.
    pub fn add_node(&mut self, id: Id) -> bool {
        if self.ring.contains(&id) {
            return false;
        }
        self.ring.insert(id);
        self.pos.insert(id, self.order.len());
        self.order.push(id);

        let mut node = ChordNode::new(id);
        self.init_fingers(&mut node);
        node.successor_list = self.successors(id, self.config.successor_list);
        node.predecessor = self.predecessors(id, 1).first().copied();
        self.nodes.insert(id, Arc::new(node));

        // Eager repair of the neighbourhood: the r predecessors now have a
        // new entry in their successor lists; the old successor gets a new
        // predecessor.
        self.repair_neighbourhood(id);
        true
    }

    /// Remove (leave or fail-stop) `id`. Idempotent: removing an id that
    /// is not (or no longer) live returns `false` and changes nothing.
    pub fn remove_node(&mut self, id: Id) -> bool {
        if !self.ring.remove(&id) {
            return false;
        }
        self.nodes.remove(&id);
        if let Some(idx) = self.pos.remove(&id) {
            if let Some(last) = self.order.pop() {
                if last != id {
                    self.order[idx] = last;
                    self.pos.insert(last, idx);
                }
            }
        }
        self.repair_neighbourhood(id);
        true
    }

    /// Recompute successor lists and predecessor pointers for the `r`
    /// nodes preceding `around` and its successor.
    fn repair_neighbourhood(&mut self, around: Id) {
        let r = self.config.successor_list;
        let mut affected = self.predecessors(around, r);
        // The strict successor (exclusive — `successor_of` would return
        // `around` itself right after a join).
        affected.extend(self.successors(around, 1));
        if self.ring.contains(&around) {
            affected.push(around);
        }
        for a in affected {
            let list = self.successors(a, r);
            let pred = self.predecessors(a, 1).first().copied();
            if let Some(slot) = self.nodes.get_mut(&a) {
                // Copy the node out of snapshot sharing only when the
                // repair actually changes it.
                if slot.successor_list != list || slot.predecessor != pred {
                    let n = Arc::make_mut(slot);
                    n.successor_list = list;
                    n.predecessor = pred;
                }
            }
        }
    }

    fn init_fingers(&self, node: &mut ChordNode) {
        let mut offset = Id::from_u64(1);
        for i in 0..ID_BITS as usize {
            let start = node.id.wrapping_add(offset);
            let target = self.successor_of(start).filter(|t| *t != node.id);
            node.fingers[i] = target;
            offset = offset.wrapping_add(offset); // 2^(i+1)
        }
    }

    /// The best live finger of `current` strictly inside `(current, key)`
    /// going clockwise — Chord's `closest_preceding_node`. Evicts dead
    /// fingers it inspects.
    fn closest_preceding(&mut self, current: Id, key: Id) -> Option<Id> {
        let node = self.nodes.get(&current)?;
        let mut best: Option<Id> = None;
        let mut dead: Vec<usize> = Vec::new();
        for (i, f) in node.fingers.iter().enumerate() {
            let Some(f) = *f else { continue };
            if !self.ring.contains(&f) {
                dead.push(i);
                continue;
            }
            // f ∈ (current, key) clockwise, i.e. strictly before key.
            if f != key && f.between_cw(current, key) {
                // Prefer the one closest to (just before) the key.
                if best.is_none_or(|b| f.between_cw(b, key)) {
                    best = Some(f);
                }
            }
        }
        // Successor-list entries are candidates too (and are live by
        // maintenance).
        for s in &node.successor_list.clone() {
            if *s != key && s.between_cw(current, key) && best.is_none_or(|b| s.between_cw(b, key))
            {
                best = Some(*s);
            }
        }
        if !dead.is_empty() {
            if let Some(slot) = self.nodes.get_mut(&current) {
                let node = Arc::make_mut(slot);
                for i in dead {
                    // Lazy repair: replace with the oracle's converged
                    // value (what fix_fingers would eventually install),
                    // or clear.
                    node.fingers[i] = None;
                }
            }
        }
        best
    }

    /// Route `key` from `from` using per-node fingers; returns the node
    /// path ending at `successor(key)`.
    pub fn route(&mut self, from: Id, key: Id) -> Result<Vec<Id>, RouteError> {
        if self.ring.is_empty() {
            return Err(RouteError::EmptyOverlay);
        }
        if !self.ring.contains(&from) {
            return Err(RouteError::UnknownSource(from));
        }
        let mut current = from;
        let mut path = vec![from];
        let max_hops = ID_BITS as usize + self.ring.len() + 16;
        loop {
            if path.len() > max_hops {
                return Err(RouteError::Loop);
            }
            // Am I responsible? (key ∈ (predecessor, current])
            let node = &self.nodes[&current];
            if let Some(pred) = node.predecessor {
                if current == key || key.between_cw(pred, current) {
                    return Ok(path);
                }
            } else if self.ring.len() == 1 {
                return Ok(path);
            }
            // Does the key fall to my immediate successor?
            let succ = self.live_successor(current)?;
            if succ == key || key.between_cw(current, succ) {
                path.push(succ);
                return Ok(path);
            }
            // Otherwise jump through the closest preceding finger.
            let next = self.closest_preceding(current, key).unwrap_or(succ);
            debug_assert!(self.ring.contains(&next));
            if next == current {
                return Err(RouteError::Stuck { at: current, key });
            }
            path.push(next);
            current = next;
        }
    }

    /// First live entry of `current`'s successor list (repairing the list
    /// head if the maintained invariant was somehow violated).
    fn live_successor(&mut self, current: Id) -> Result<Id, RouteError> {
        let node = &self.nodes[&current];
        for s in &node.successor_list {
            if self.ring.contains(s) {
                return Ok(*s);
            }
        }
        // Singleton ring or fully stale list.
        if self.ring.len() == 1 {
            return Ok(current);
        }
        Err(RouteError::Stuck {
            at: current,
            key: current,
        })
    }

    /// Assert every node's successor list and predecessor match the oracle
    /// ring exactly (test helper).
    pub fn assert_ring_exact(&self) {
        let r = self.config.successor_list;
        for (&id, node) in &self.nodes {
            assert_eq!(
                node.successor_list,
                self.successors(id, r),
                "successor list of {id:?} drifted"
            );
            assert_eq!(
                node.predecessor,
                self.predecessors(id, 1).first().copied(),
                "predecessor of {id:?} drifted"
            );
        }
    }
}

impl Snapshots for ChordOverlay {
    type Checkpoint = ChordCheckpoint;

    fn checkpoint(&self) -> Self::Checkpoint {
        ChordOverlay::checkpoint(self)
    }

    fn rollback(&mut self, cp: &Self::Checkpoint) {
        ChordOverlay::rollback(self, cp)
    }
}

impl KeyRouter for ChordOverlay {
    fn is_live(&self, node: Id) -> bool {
        self.ring.contains(&node)
    }

    fn owner_of(&self, key: Id) -> Option<Id> {
        self.successor_of(key)
    }

    fn replica_set(&self, key: Id, k: usize) -> Vec<Id> {
        // DHash-style: the responsible node plus its k-1 successors.
        let Some(root) = self.successor_of(key) else {
            return Vec::new();
        };
        let mut out = vec![root];
        out.extend(self.successors(root, k.saturating_sub(1)));
        out.dedup();
        out
    }

    fn following(&self, from: Id, n: usize) -> Vec<Id> {
        self.successors(from, n)
    }

    fn preceding(&self, from: Id, n: usize) -> Vec<Id> {
        self.predecessors(from, n)
    }

    fn route_path(&mut self, from: Id, key: Id) -> Result<Vec<Id>, RouteError> {
        self.route(from, key)
    }

    fn node_count(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tap_pastry::storage::ReplicaStore;

    fn build(n: usize, seed: u64) -> (ChordOverlay, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ov = ChordOverlay::new(ChordConfig::defaults());
        for _ in 0..n {
            ov.add_random_node(&mut rng);
        }
        (ov, rng)
    }

    #[test]
    fn singleton_owns_everything() {
        let (mut ov, mut rng) = build(1, 1);
        let only = ov.ids().next().unwrap();
        let key = Id::random(&mut rng);
        assert_eq!(ov.successor_of(key), Some(only));
        let path = ov.route(only, key).unwrap();
        assert_eq!(path, vec![only]);
    }

    #[test]
    fn route_reaches_oracle_successor() {
        let (mut ov, mut rng) = build(300, 2);
        for _ in 0..100 {
            let src = ov.random_node(&mut rng).unwrap();
            let key = Id::random(&mut rng);
            let want = ov.successor_of(key).unwrap();
            let path = ov.route(src, key).unwrap();
            assert_eq!(*path.last().unwrap(), want, "route vs oracle");
            assert_eq!(path[0], src);
        }
    }

    #[test]
    fn hop_counts_are_logarithmic() {
        let (mut ov, mut rng) = build(1_000, 3);
        let mut total = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let src = ov.random_node(&mut rng).unwrap();
            let key = Id::random(&mut rng);
            total += ov.route(src, key).unwrap().len() - 1;
        }
        let mean = total as f64 / trials as f64;
        // ½ log2(1000) ≈ 5; generous bound catches linear blowup.
        assert!(mean < 9.0, "mean hops {mean} too high for Chord at N=1000");
        assert!(mean > 2.0, "mean hops {mean} implausibly low");
    }

    #[test]
    fn ring_exact_after_churn() {
        let (mut ov, mut rng) = build(150, 4);
        for _ in 0..60 {
            if rng.gen_bool(0.5) && ov.len() > 10 {
                let victim = ov.random_node(&mut rng).unwrap();
                ov.remove_node(victim);
            } else {
                ov.add_random_node(&mut rng);
            }
        }
        ov.assert_ring_exact();
        // Routing still agrees with the oracle after churn.
        for _ in 0..50 {
            let src = ov.random_node(&mut rng).unwrap();
            let key = Id::random(&mut rng);
            assert_eq!(
                *ov.route(src, key).unwrap().last().unwrap(),
                ov.successor_of(key).unwrap()
            );
        }
    }

    #[test]
    fn mass_failure_routing_survives() {
        let (mut ov, mut rng) = build(400, 5);
        let ids: Vec<Id> = ov.ids().collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 10 < 3 {
                ov.remove_node(*id);
            }
        }
        for _ in 0..80 {
            let src = ov.random_node(&mut rng).unwrap();
            let key = Id::random(&mut rng);
            assert_eq!(
                *ov.route(src, key).unwrap().last().unwrap(),
                ov.successor_of(key).unwrap()
            );
        }
    }

    #[test]
    fn replica_set_is_successor_run() {
        let (ov, mut rng) = build(100, 6);
        for _ in 0..30 {
            let key = Id::random(&mut rng);
            let set = KeyRouter::replica_set(&ov, key, 3);
            assert_eq!(set.len(), 3);
            assert_eq!(set[0], ov.successor_of(key).unwrap());
            assert_eq!(set[1..], ov.successors(set[0], 2)[..]);
        }
    }

    #[test]
    fn replica_store_runs_over_chord() {
        // The PAST-style replication manager, unmodified, over Chord.
        let (mut ov, mut rng) = build(120, 7);
        let mut store: ReplicaStore<u32> = ReplicaStore::new(3);
        let mut keys = Vec::new();
        for i in 0..50 {
            let key = Id::random(&mut rng);
            assert!(store.insert(&ov, key, i).unwrap());
            keys.push(key);
        }
        store.assert_replica_invariant(&ov);
        // Churn with repair.
        for _ in 0..30 {
            let victim = ov.random_node(&mut rng).unwrap();
            ov.remove_node(victim);
            store.on_node_removed(&ov, victim);
            let id = ov.add_random_node(&mut rng);
            store.on_node_added(&ov, id);
        }
        store.assert_replica_invariant(&ov);
    }

    #[test]
    fn failover_promotes_next_successor() {
        let (mut ov, mut rng) = build(150, 8);
        let mut store: ReplicaStore<()> = ReplicaStore::new(3);
        let key = Id::random(&mut rng);
        store.insert(&ov, key, ()).unwrap();
        let before = store.holders(key).to_vec();
        ov.remove_node(before[0]);
        // Without repair: the new responsible node is the old candidate.
        assert_eq!(ov.successor_of(key), Some(before[1]));
        assert!(store.holders(key).contains(&before[1]));
    }

    #[test]
    fn duplicate_join_and_unknown_remove() {
        let (mut ov, _) = build(10, 9);
        let id = ov.ids().next().unwrap();
        assert!(!ov.add_node(id));
        assert!(!ov.remove_node(Id::from_u64(42)));
        assert_eq!(ov.len(), 10);
    }

    #[test]
    fn double_remove_is_idempotent() {
        let (mut ov, mut rng) = build(60, 11);
        let victim = ov.random_node(&mut rng).unwrap();
        assert!(ov.remove_node(victim));
        assert!(!ov.remove_node(victim), "second kill is a no-op");
        assert_eq!(ov.len(), 59);
        ov.assert_ring_exact();
    }

    #[test]
    fn checkpoint_rollback_restores_membership() {
        let (mut ov, mut rng) = build(120, 12);
        let before: Vec<Id> = ov.ids().collect();
        let cp = Snapshots::checkpoint(&ov);
        for _ in 0..30 {
            let victim = ov.random_node(&mut rng).unwrap();
            ov.remove_node(victim);
            ov.add_random_node(&mut rng);
        }
        assert_ne!(ov.ids().collect::<Vec<_>>(), before);
        Snapshots::rollback(&mut ov, &cp);
        assert_eq!(ov.ids().collect::<Vec<_>>(), before);
        ov.assert_ring_exact();
        // Rolled-back routing matches a pristine deep clone, key by key.
        let mut oracle = ov.deep_clone();
        let mut rng2 = StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let src = ov.random_node(&mut rng2).unwrap();
            let key = Id::random(&mut rng2);
            assert_eq!(ov.route(src, key), oracle.route(src, key));
        }
    }

    #[test]
    fn cow_clones_isolate_writes_both_ways() {
        let (mut ov, mut rng) = build(80, 13);
        let mut snap = ov.clone();
        assert_eq!(ov.handles_shared_with(&snap), 80);
        let victim = ov.random_node(&mut rng).unwrap();
        assert!(ov.remove_node(victim));
        assert!(
            snap.node(victim).is_some(),
            "snapshot must not see the kill"
        );
        snap.assert_ring_exact();
        let victim2 = loop {
            let v = snap.random_node(&mut rng).unwrap();
            if ov.node(v).is_some() {
                break v;
            }
        };
        assert!(snap.remove_node(victim2));
        assert!(ov.node(victim2).is_some());
        ov.assert_ring_exact();
        snap.assert_ring_exact();
        assert!(ov.handles_shared_with(&snap) > 0, "untouched nodes shared");
    }

    #[test]
    fn finger_tables_shrink_distance() {
        let (ov, mut rng) = build(500, 10);
        // Sanity: fingers point at (or past) their interval starts.
        for _ in 0..20 {
            let n = ov.random_node(&mut rng).unwrap();
            let node = ov.node(n).unwrap();
            assert!(node.finger_occupancy() > 0);
            let mut offset = Id::from_u64(1);
            for f in node.fingers.iter() {
                let start = n.wrapping_add(offset);
                if let Some(f) = f {
                    // f was successor(start) when installed; later joins
                    // may have slid the true successor earlier, but f must
                    // still sit at-or-after the interval start (start ∈
                    // (n, f]), which is all routing progress needs.
                    assert!(
                        start == *f || start.between_cw(n, *f),
                        "finger {f:?} precedes its interval start"
                    );
                }
                offset = offset.wrapping_add(offset);
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_route_agrees_with_oracle_under_churn(
            seed in any::<u64>(),
            script in proptest::collection::vec(any::<u8>(), 10..50),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ov = ChordOverlay::new(ChordConfig::defaults());
            for _ in 0..30 {
                ov.add_random_node(&mut rng);
            }
            for op in script {
                match op % 3 {
                    0 => {
                        ov.add_random_node(&mut rng);
                    }
                    1 if ov.len() > 5 => {
                        let victim = ov.random_node(&mut rng).unwrap();
                        ov.remove_node(victim);
                    }
                    _ => {
                        let src = ov.random_node(&mut rng).unwrap();
                        let key = Id::random(&mut rng);
                        let path = ov.route(src, key).unwrap();
                        prop_assert_eq!(
                            *path.last().unwrap(),
                            ov.successor_of(key).unwrap()
                        );
                    }
                }
            }
            ov.assert_ring_exact();
        }

        #[test]
        fn prop_replica_set_is_prefix_stable_under_failure(
            seed in any::<u64>(),
            kill in 0usize..3,
        ) {
            // Killing the first `kill` members of a replica set promotes
            // the (kill+1)-th to responsible — TAP's failover contract.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ov = ChordOverlay::new(ChordConfig::defaults());
            for _ in 0..60 {
                ov.add_random_node(&mut rng);
            }
            let key = Id::random(&mut rng);
            let set = KeyRouter::replica_set(&ov, key, 4);
            for victim in set.iter().take(kill) {
                ov.remove_node(*victim);
            }
            prop_assert_eq!(ov.successor_of(key), Some(set[kill]));
        }
    }
}
