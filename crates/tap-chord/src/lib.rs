//! # tap-chord — a Chord substrate for TAP
//!
//! The TAP paper claims its tunneling "can be easily adapted to other
//! systems" and cites Chord first (§3, §8). This crate makes the claim
//! concrete: a from-scratch Chord (Stoica et al., SIGCOMM 2001) that
//! implements `tap-pastry`'s [`tap_pastry::KeyRouter`] substrate trait, so every piece
//! of TAP — THA replication, tunnel transit, retrieval, reply blocks —
//! runs over it unchanged (see `tests/portability.rs` at the workspace
//! root).
//!
//! What changes between the substrates, and what TAP needs from each:
//!
//! | | Pastry | Chord |
//! |---|---|---|
//! | responsibility | numerically closest nodeid | `successor(key)` |
//! | replica set | k closest (both directions) | k successors (DHash-style) |
//! | routing state | prefix table + leaf set | finger table + successor list |
//! | hop count | `log_{2^b} N` | `½ log₂ N` expected |
//!
//! The failover property TAP rests on holds identically: after any
//! failures, the new `successor(key)` is the first *live* entry of the old
//! successor list, so a key's new responsible node already holds a replica
//! unless all `k` replica holders died at once.
//!
//! Maintenance mirrors the Pastry crate's approach (and the paper's own
//! methodology): successor lists are repaired eagerly on membership
//! change — installing the converged result of Chord's `stabilize()` —
//! while fingers are repaired lazily when routing trips over a dead one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod overlay;

pub use overlay::{ChordCheckpoint, ChordConfig, ChordNode, ChordOverlay};
