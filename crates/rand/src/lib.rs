//! Offline stand-in for the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, dependency-free implementation under the same crate name.
//! It provides exactly the API the TAP crates call — [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], and the [`seq`] helpers — with a deterministic
//! xoshiro256** generator behind `StdRng`.
//!
//! Determinism note: streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, so seeded simulations produce different (but equally valid)
//! draws than the checked-in `results/*.csv`, which were generated before
//! the vendoring. All statistical assertions in the test suite hold under
//! either stream.

#![forbid(unsafe_code)]

/// Low-level generator interface: raw words and byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be drawn uniformly from a generator (the subset of
/// `rand::distributions::Standard` this workspace uses).
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl<const N: usize> Standard for [u8; N] {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Integer types `gen_range` can sample; provides unbiased range draws.
pub trait UniformSample: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty sample range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Rejection sampling over the smallest covering power of two.
                let width = span + 1;
                let mask = u64::MAX >> width.leading_zeros().min(63);
                loop {
                    let v = rng.next_u64() & mask;
                    if v <= span {
                        return lo.wrapping_add(v as $t);
                    }
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl UniformSample for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample + One> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: UniformSample> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper to turn an exclusive upper bound into an inclusive one.
pub trait One {
    /// `self - 1` for the exclusive→inclusive bound conversion.
    fn minus_one(self) -> Self;
}
macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> Self { self - 1 }
        }
    )*};
}
impl_one!(u8, u16, u32, u64, usize, i32, i64);
impl One for f64 {
    // `Range<f64>` is half-open already; sampling treats the bound as open.
    fn minus_one(self) -> Self {
        self
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draw a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from a range (`0..n`, `1..=max`, …).
    fn gen_range<T: UniformSample, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }

    /// Fill a byte slice with random data (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64 (Blackman & Vigna). Not cryptographic; the
    /// crypto crate derives key material through its own primitives.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended for xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`, reservoir sampling).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }

    /// Iterator extensions mirroring `rand::seq::IteratorRandom`.
    pub trait IteratorRandom: Iterator + Sized {
        /// Reservoir-sample one element.
        fn choose<R: RngCore + ?Sized>(mut self, rng: &mut R) -> Option<Self::Item> {
            let mut chosen = self.next()?;
            let mut seen = 1u64;
            for item in self {
                seen += 1;
                if rng.next_u64().is_multiple_of(seen) {
                    chosen = item;
                }
            }
            Some(chosen)
        }

        /// Reservoir-sample up to `amount` distinct elements. Order is not
        /// specified (matches upstream's documented contract).
        fn choose_multiple<R: RngCore + ?Sized>(
            mut self,
            rng: &mut R,
            amount: usize,
        ) -> Vec<Self::Item> {
            let mut reservoir: Vec<Self::Item> = Vec::with_capacity(amount);
            if amount == 0 {
                return reservoir;
            }
            for item in self.by_ref().take(amount) {
                reservoir.push(item);
            }
            let mut seen = reservoir.len() as u64;
            for item in self {
                seen += 1;
                let j = rng.next_u64() % seen;
                if (j as usize) < amount {
                    reservoir[j as usize] = item;
                }
            }
            reservoir
        }
    }

    impl<I: Iterator> IteratorRandom for I {}
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IteratorRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            assert!(v < 10);
            let w: u64 = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&w));
            let f: f64 = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&f));
        }
        // Full-width inclusive range must not overflow the rejection mask.
        let v: u64 = rng.gen_range(1u64..=u64::MAX >> 24);
        assert!(v >= 1);
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_and_reservoir() {
        let mut rng = StdRng::seed_from_u64(9);
        let v: Vec<u32> = (0..100).collect();
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());

        let picked = (0..100u32).choose_multiple(&mut rng, 10);
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10, "choose_multiple must not repeat items");

        assert_eq!((0..5u32).choose_multiple(&mut rng, 10).len(), 5);
        assert!((0..0u32).choose(&mut rng).is_none());
    }

    #[test]
    fn fill_covers_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 20];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
