//! Offline stand-in for the `criterion` bench API used by this workspace.
//!
//! The build environment has no crates.io access. This crate keeps the
//! `crates/bench` targets compiling and running with the same source: each
//! `bench_function` runs a short warmup, then `sample_size` timed samples,
//! and prints mean / min / max wall-clock time per iteration. There is no
//! statistical analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-exported hint preventing the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. All variants behave identically
/// here: setup runs once per measured iteration, outside the timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small batches (upstream heuristic; same behavior here).
    SmallInput,
    /// Large batches (upstream heuristic; same behavior here).
    LargeInput,
}

/// Passed to every bench closure; runs and times the workload.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warmup to touch caches and lazy state.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }
}

fn report(name: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("bench {name:<40} (no samples)");
        return;
    }
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    let min = timings.iter().min().copied().unwrap_or_default();
    let max = timings.iter().max().copied().unwrap_or_default();
    println!(
        "bench {name:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
        timings.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

/// Work performed per iteration, for reporting rates alongside times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per bench (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the per-iteration throughput (accepted for API parity; the
    /// stub reports times only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Soft target for total measurement time. Accepted for source
    /// compatibility; sampling here is count-based.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run and report one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        let mut bencher = Bencher {
            samples: self.sample_size,
            timings: Vec::new(),
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher.timings);
        self
    }

    /// End the group (upstream flushes its report here; ours is streaming).
    pub fn finish(&mut self) {}
}

/// Top-level bench driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Default driver: 10 samples per bench.
    pub fn new() -> Criterion {
        Criterion { sample_size: 10 }
    }

    /// Default sample count for benches outside a group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size.max(1);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _parent: self,
        }
    }

    /// Run and report one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        let mut bencher = Bencher {
            samples: self.sample_size.max(1),
            timings: Vec::new(),
        };
        f(&mut bencher);
        report(id, &bencher.timings);
        self
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut c = Criterion::new();
        let mut runs = 0u32;
        c.sample_size(4).bench_function("unit", |b| {
            b.iter(|| runs += 1);
        });
        // 1 warmup + 4 samples.
        assert_eq!(runs, 5);
    }

    #[test]
    fn batched_setup_not_timed_path_runs() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        let mut seen = Vec::new();
        group.sample_size(3).bench_function("batched", |b| {
            b.iter_batched(|| 7u32, |v| seen.push(v), BatchSize::PerIteration);
        });
        group.finish();
        assert_eq!(seen.len(), 4);
    }
}
