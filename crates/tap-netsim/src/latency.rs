//! Pairwise propagation-delay models.
//!
//! The paper assigns "each link in the network … a random latency from 1 ms
//! to 230 ms, randomly selected in a fashion that approximates an Internet
//! network" (§7.3, citing Scarlata et al.). For 10^4 endpoints a latency
//! matrix would hold 10^8 entries, so [`UniformLatency`] instead derives
//! each unordered pair's delay by hashing `(seed, lo, hi)` — O(1) memory,
//! stable across the run, symmetric by construction.
//!
//! [`EuclideanLatency`] is the alternative "approximates an Internet"
//! reading: endpoints get coordinates on a 2D torus and delay grows with
//! distance, which respects the triangle inequality (useful for the
//! proximity-aware ablations).

use crate::time::SimDuration;
use crate::EndpointId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of symmetric pairwise propagation delays.
pub trait LatencyModel {
    /// Propagation delay between two distinct endpoints.
    ///
    /// Implementations must be symmetric (`delay(a,b) == delay(b,a)`) and
    /// stable for the lifetime of the run. `a == b` returns zero.
    fn delay(&self, a: EndpointId, b: EndpointId) -> SimDuration;

    /// Called when an endpoint is created, so coordinate-based models can
    /// lazily place it. Default: nothing.
    fn on_endpoint_added(&mut self, _id: EndpointId) {}

    /// A lower bound on the delay between any two *distinct* endpoints.
    ///
    /// The sharded event loop ([`crate::shard`]) derives its conservative
    /// lookahead window from this bound: any cross-shard message sent in a
    /// window of this width provably arrives after the window ends. The
    /// default (zero) is always sound but forbids sharding; models with a
    /// real latency floor should override it.
    fn min_delay(&self) -> SimDuration {
        SimDuration::ZERO
    }
}

/// SplitMix64 — a tiny, high-quality hash for pair → delay derivation
/// (also the fault layer's counter-stream generator; see `fault.rs`).
#[inline]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform per-pair latency in `[min, max]`, derived by hashing.
#[derive(Debug, Clone)]
pub struct UniformLatency {
    seed: u64,
    min: SimDuration,
    max: SimDuration,
}

impl UniformLatency {
    /// Uniform latency in `[min, max]` with a derivation `seed`.
    pub fn new(seed: u64, min: SimDuration, max: SimDuration) -> Self {
        assert!(min <= max, "latency range inverted");
        UniformLatency { seed, min, max }
    }

    /// The paper's setup: `U[1 ms, 230 ms]`.
    pub fn paper(seed: u64) -> Self {
        UniformLatency::new(
            seed,
            SimDuration::from_millis(1),
            SimDuration::from_millis(230),
        )
    }
}

impl LatencyModel for UniformLatency {
    fn delay(&self, a: EndpointId, b: EndpointId) -> SimDuration {
        if a == b {
            return SimDuration::ZERO;
        }
        let (lo, hi) = if a.index() < b.index() {
            (a.index() as u64, b.index() as u64)
        } else {
            (b.index() as u64, a.index() as u64)
        };
        let h = splitmix64(
            self.seed ^ splitmix64(lo ^ splitmix64(hi.wrapping_mul(0xA24BAED4963EE407))),
        );
        let span = self.max.as_micros() - self.min.as_micros() + 1;
        SimDuration::from_micros(self.min.as_micros() + h % span)
    }

    fn min_delay(&self) -> SimDuration {
        self.min
    }
}

/// Latency proportional to distance on a 2D unit torus, scaled into
/// `[min, max]`.
#[derive(Debug, Clone)]
pub struct EuclideanLatency {
    rng: StdRng,
    coords: Vec<(f64, f64)>,
    min: SimDuration,
    max: SimDuration,
}

impl EuclideanLatency {
    /// Torus-distance latency scaled into `[min, max]`.
    pub fn new(seed: u64, min: SimDuration, max: SimDuration) -> Self {
        assert!(min <= max, "latency range inverted");
        EuclideanLatency {
            rng: StdRng::seed_from_u64(seed),
            coords: Vec::new(),
            min,
            max,
        }
    }

    /// The paper's range `[1 ms, 230 ms]` over torus placement.
    pub fn paper(seed: u64) -> Self {
        EuclideanLatency::new(
            seed,
            SimDuration::from_millis(1),
            SimDuration::from_millis(230),
        )
    }

    fn coord(&self, id: EndpointId) -> (f64, f64) {
        *self
            .coords
            .get(id.index())
            .expect("endpoint placed before use (on_endpoint_added)")
    }
}

impl LatencyModel for EuclideanLatency {
    fn delay(&self, a: EndpointId, b: EndpointId) -> SimDuration {
        if a == b {
            return SimDuration::ZERO;
        }
        let (ax, ay) = self.coord(a);
        let (bx, by) = self.coord(b);
        // Torus metric: wrap-around in both dimensions.
        let dx = (ax - bx).abs().min(1.0 - (ax - bx).abs());
        let dy = (ay - by).abs().min(1.0 - (ay - by).abs());
        let dist = (dx * dx + dy * dy).sqrt();
        // Max torus distance is sqrt(0.5^2 + 0.5^2).
        let norm = dist / (0.5f64 * std::f64::consts::SQRT_2);
        let span = (self.max.as_micros() - self.min.as_micros()) as f64;
        SimDuration::from_micros(self.min.as_micros() + (norm * span).round() as u64)
    }

    fn on_endpoint_added(&mut self, id: EndpointId) {
        debug_assert_eq!(id.index(), self.coords.len(), "endpoints added in order");
        let p = (self.rng.gen::<f64>(), self.rng.gen::<f64>());
        self.coords.push(p);
    }

    fn min_delay(&self) -> SimDuration {
        self.min
    }
}

/// A view of an inner latency model through an endpoint renaming.
///
/// Workloads that replay traffic through *private* per-flow endpoints (so
/// flows never contend on a NIC) still want each private endpoint to keep
/// the pairwise delays of the real node it stands for. `RemappedLatency`
/// translates every private endpoint index through `map` before asking the
/// inner model, so `delay(p, q) == inner.delay(map[p], map[q])`.
///
/// The `placed` *inner* endpoints are registered with the inner model at
/// construction, in index order (coordinate models place them exactly as a
/// serial [`crate::Network`] filled by `add_endpoint` would); the wrapper's
/// own [`LatencyModel::on_endpoint_added`] is a no-op, so any number of
/// private endpoints may alias the same inner endpoint.
///
/// Caveat: two distinct private endpoints mapping to the same inner
/// endpoint are zero-delay neighbours, below the inner
/// [`LatencyModel::min_delay`] floor. The sharded event loop's lookahead
/// relies on that floor, so callers must never *send between* two aliases
/// of one inner endpoint (the fig-6 replay dedups consecutive path hops,
/// which guarantees exactly this).
#[derive(Debug, Clone)]
pub struct RemappedLatency<L: LatencyModel> {
    inner: L,
    map: Vec<EndpointId>,
}

impl<L: LatencyModel> RemappedLatency<L> {
    /// Wrap `inner`, registering `placed` inner endpoints up front;
    /// private endpoint `i` stands for inner endpoint `map[i]`.
    pub fn new(mut inner: L, map: Vec<EndpointId>, placed: usize) -> Self {
        for i in 0..placed {
            inner.on_endpoint_added(EndpointId::from_index(i).expect("inner index fits u32"));
        }
        RemappedLatency { inner, map }
    }
}

impl<L: LatencyModel> LatencyModel for RemappedLatency<L> {
    fn delay(&self, a: EndpointId, b: EndpointId) -> SimDuration {
        self.inner.delay(self.map[a.index()], self.map[b.index()])
    }

    // Inner endpoints were placed in `new`; private endpoints carry no
    // state of their own.
    fn on_endpoint_added(&mut self, _id: EndpointId) {}

    fn min_delay(&self) -> SimDuration {
        self.inner.min_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: usize) -> EndpointId {
        EndpointId::from_index(i).expect("test index fits u32")
    }

    #[test]
    fn remapped_delays_match_the_inner_pairs() {
        let inner = UniformLatency::paper(13);
        let map = vec![ep(2), ep(0), ep(2), ep(1)];
        let m = RemappedLatency::new(inner.clone(), map, 3);
        assert_eq!(m.delay(ep(0), ep(1)), inner.delay(ep(2), ep(0)));
        assert_eq!(m.delay(ep(1), ep(3)), inner.delay(ep(0), ep(1)));
        // Aliases of one inner endpoint are zero-delay.
        assert_eq!(m.delay(ep(0), ep(2)), SimDuration::ZERO);
        assert_eq!(m.min_delay(), inner.min_delay());
    }

    #[test]
    fn remapped_places_coordinate_models_in_serial_order() {
        // The wrapper must hand Euclidean the same placement stream a
        // serial Network would, so remapped delays equal direct delays.
        let mut direct = EuclideanLatency::paper(21);
        for i in 0..5 {
            direct.on_endpoint_added(ep(i));
        }
        let m = RemappedLatency::new(EuclideanLatency::paper(21), vec![ep(4), ep(1), ep(3)], 5);
        assert_eq!(m.delay(ep(0), ep(1)), direct.delay(ep(4), ep(1)));
        assert_eq!(m.delay(ep(1), ep(2)), direct.delay(ep(1), ep(3)));
    }

    #[test]
    fn uniform_is_symmetric_stable_and_in_range() {
        let m = UniformLatency::paper(7);
        for i in 0..50usize {
            for j in (i + 1)..50 {
                let d = m.delay(ep(i), ep(j));
                assert_eq!(d, m.delay(ep(j), ep(i)), "symmetry {i},{j}");
                assert_eq!(d, m.delay(ep(i), ep(j)), "stability {i},{j}");
                assert!(
                    (1..=230).contains(&d.as_millis()),
                    "{i},{j} -> {}ms out of range",
                    d.as_millis()
                );
            }
        }
    }

    #[test]
    fn uniform_self_delay_is_zero() {
        let m = UniformLatency::paper(7);
        assert_eq!(m.delay(ep(3), ep(3)), SimDuration::ZERO);
    }

    #[test]
    fn uniform_spreads_over_range() {
        let m = UniformLatency::paper(21);
        let mut lo = u64::MAX;
        let mut hi = 0;
        let mut sum = 0u64;
        let n = 2000usize;
        for i in 0..n {
            let d = m.delay(ep(i), ep(i + n)).as_millis();
            lo = lo.min(d);
            hi = hi.max(d);
            sum += d;
        }
        let mean = sum as f64 / n as f64;
        assert!(lo < 15, "min {lo}ms suspiciously high");
        assert!(hi > 215, "max {hi}ms suspiciously low");
        assert!(
            (100.0..130.0).contains(&mean),
            "mean {mean}ms far from uniform expectation ~115.5"
        );
    }

    #[test]
    fn distinct_seeds_give_distinct_matrices() {
        let m1 = UniformLatency::paper(1);
        let m2 = UniformLatency::paper(2);
        let differs =
            (0..100usize).any(|i| m1.delay(ep(i), ep(i + 1)) != m2.delay(ep(i), ep(i + 1)));
        assert!(differs);
    }

    #[test]
    fn euclidean_is_symmetric_and_triangle() {
        let mut m = EuclideanLatency::paper(5);
        for i in 0..30 {
            m.on_endpoint_added(ep(i));
        }
        for i in 0..30usize {
            for j in 0..30 {
                assert_eq!(m.delay(ep(i), ep(j)), m.delay(ep(j), ep(i)));
            }
        }
        // Triangle inequality up to the 1ms floor and rounding slack.
        for i in 0..10usize {
            for j in 0..10 {
                for k in 0..10 {
                    let direct = m.delay(ep(i), ep(k)).as_micros();
                    let via = m.delay(ep(i), ep(j)).as_micros() + m.delay(ep(j), ep(k)).as_micros();
                    assert!(
                        direct <= via + 2_000,
                        "triangle violated: {i}->{k} {direct} > {via}"
                    );
                }
            }
        }
    }

    #[test]
    fn euclidean_in_range() {
        let mut m = EuclideanLatency::paper(9);
        for i in 0..100 {
            m.on_endpoint_added(ep(i));
        }
        for i in 0..100usize {
            let d = m.delay(ep(i), ep((i + 37) % 100)).as_millis();
            assert!((1..=230).contains(&d), "{d}ms out of range");
        }
    }
}
