//! # tap-netsim — deterministic discrete-event network emulation
//!
//! The TAP paper evaluates everything on "a network emulation environment,
//! through which the instances of the node software communicate", with all
//! peers in a single process (§7). The performance experiment (§7.3) pins
//! the emulation parameters down precisely:
//!
//! > "Each link in the network had a random latency from 1 ms to 230 ms,
//! > randomly selected in a fashion that approximates an Internet network.
//! > All links had a simulated bandwidth of 1.5 Mb/s."
//!
//! This crate is that environment, rebuilt as a deterministic discrete-event
//! simulator:
//!
//! * [`SimTime`] / [`SimDuration`] — integer microsecond virtual time, so
//!   runs are exactly reproducible and never drift.
//! * [`latency::LatencyModel`] — pluggable pairwise propagation delay.
//!   [`latency::UniformLatency`] draws each (unordered) endpoint pair's
//!   delay from `U[min, max]` by hashing the pair — O(1) memory even for
//!   the paper's 10^4-node networks — and [`latency::EuclideanLatency`]
//!   places endpoints on a 2D torus for triangle-inequality-respecting
//!   delays.
//! * [`bandwidth::Nic`] — a per-endpoint 1.5 Mb/s serializing uplink:
//!   transmissions queue FIFO behind one another, so a 2 Mb file transfer
//!   occupies the link for its full serialization time (store-and-forward
//!   per overlay hop, as in the paper's transfer-latency figure).
//! * [`Network`] — the event kernel: endpoints, timers, message delivery,
//!   endpoint failure (messages to a dead endpoint vanish, like UDP), and
//!   traffic counters.
//!
//! The simulator is generic over the message type, single-threaded, and
//! pull-based: callers drain events with [`Network::next_event`] and react,
//! which keeps the overlay logic (in `tap-pastry` / `tap-core`) free of
//! callbacks and lifetimes.
//!
//! ```
//! use tap_netsim::{latency::UniformLatency, Network, NetworkConfig, Event};
//!
//! let mut net: Network<&'static str> =
//!     Network::new(NetworkConfig::paper_defaults(), UniformLatency::paper(42));
//! let a = net.add_endpoint();
//! let b = net.add_endpoint();
//! net.send(a, b, 100, "hello");
//! match net.next_event() {
//!     Some(Event::Message(m)) => {
//!         assert_eq!(m.dst, b);
//!         assert_eq!(m.payload, "hello");
//!     }
//!     other => panic!("expected delivery, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod fault;
pub mod latency;
mod network;
pub mod sched;
pub mod shard;
mod time;

pub use fault::{FaultAction, FaultPlan, ScheduledFault};
pub use network::{
    DeliveredMessage, EndpointId, Event, Livelock, Network, NetworkConfig, TimerHandle, TimerToken,
    TrafficStats,
};
pub use sched::{CalendarQueue, EventHandle, EventKey};
pub use shard::{ShardCtx, ShardedNetwork};
pub use time::{SimDuration, SimTime, TimeError};
