//! Finite-bandwidth serializing uplinks.
//!
//! The paper gives every link 1.5 Mb/s. We model each endpoint's uplink as
//! a FIFO serializer: a transmission must wait for the transmissions queued
//! before it, then occupies the link for `bits / bandwidth`. Propagation
//! delay (the latency model) is added after serialization completes —
//! classic store-and-forward, which is what makes the paper's 2 Mb
//! transfers dominated by per-overlay-hop transmission time.

use crate::time::{SimDuration, SimTime};

/// A single endpoint's uplink.
#[derive(Debug, Clone)]
pub struct Nic {
    bandwidth_bps: u64,
    busy_until: SimTime,
}

impl Nic {
    /// An idle NIC with the given uplink bandwidth in bits per second.
    pub fn new(bandwidth_bps: u64) -> Self {
        assert!(bandwidth_bps > 0, "bandwidth must be positive");
        Nic {
            bandwidth_bps,
            busy_until: SimTime::ZERO,
        }
    }

    /// Serialization time for `bytes` on this link.
    pub fn tx_time(&self, bytes: u64) -> SimDuration {
        // micros = bits / (bits/sec) * 1e6, computed in u128 to avoid
        // overflow for large transfers.
        let micros = (bytes as u128 * 8 * 1_000_000).div_ceil(self.bandwidth_bps as u128);
        SimDuration::from_micros(micros as u64)
    }

    /// Enqueue a transmission of `bytes` at `now`; returns the instant the
    /// last bit leaves the NIC.
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + self.tx_time(bytes);
        self.busy_until = done;
        done
    }

    /// The instant the NIC becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Drop any queued transmissions (endpoint failed).
    pub fn reset(&mut self, now: SimTime) {
        self.busy_until = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1_5_MBPS: u64 = 1_500_000;

    #[test]
    fn tx_time_matches_paper_arithmetic() {
        let nic = Nic::new(T1_5_MBPS);
        // 2 Mb file = 250_000 bytes: 2_000_000 bits / 1.5 Mb/s = 1.333.. s
        let t = nic.tx_time(250_000);
        assert!(
            (t.as_secs_f64() - 4.0 / 3.0).abs() < 1e-5,
            "2Mb at 1.5Mb/s should take ~1.333s, got {t}"
        );
        // Zero-byte control message costs nothing.
        assert_eq!(nic.tx_time(0), SimDuration::ZERO);
    }

    #[test]
    fn transmissions_serialize_fifo() {
        let mut nic = Nic::new(T1_5_MBPS);
        let now = SimTime::ZERO;
        let first = nic.transmit(now, 150_000); // 0.8 s
        let second = nic.transmit(now, 150_000); // queued behind: 1.6 s
        assert_eq!(first.as_micros(), 800_000);
        assert_eq!(second.as_micros(), 1_600_000);
    }

    #[test]
    fn idle_gap_is_not_carried_forward() {
        let mut nic = Nic::new(T1_5_MBPS);
        nic.transmit(SimTime::ZERO, 150_000); // busy until 0.8s
        let late = nic.transmit(SimTime::from_micros(2_000_000), 150_000);
        assert_eq!(
            late.as_micros(),
            2_800_000,
            "starts at `now`, not at busy_until"
        );
    }

    #[test]
    fn reset_clears_queue() {
        let mut nic = Nic::new(T1_5_MBPS);
        nic.transmit(SimTime::ZERO, 1_500_000);
        let now = SimTime::from_micros(10);
        nic.reset(now);
        assert_eq!(nic.busy_until(), now);
    }

    #[test]
    fn big_transfer_no_overflow() {
        let nic = Nic::new(1);
        // 1 GiB at 1 bit/s — would overflow u64 intermediate products.
        let t = nic.tx_time(1 << 30);
        assert_eq!(t.as_micros(), (1u64 << 33) * 1_000_000);
    }
}
