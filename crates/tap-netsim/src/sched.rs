//! The calendar-queue scheduler: O(1) amortized push/pop for the event
//! kernel, with arena-allocated pending envelopes and explicit sequence
//! numbers.
//!
//! # Why not a binary heap
//!
//! `BinaryHeap` push/pop is O(log n); at the throughput figure's scale
//! (millions of in-flight transfers) the log factor plus the per-entry
//! allocation traffic dominates the event loop. A calendar queue exploits
//! the shape of netsim's delay distribution — arrivals cluster within a
//! bounded horizon (serialization + [1 ms, 230 ms] propagation), with a
//! thin tail of far-future watchdog timers — to make both operations O(1)
//! amortized: events hash into time buckets of fixed width, and the pop
//! cursor sweeps the buckets in time order, staging only one bucket-width
//! of events at a time into a small ready heap.
//!
//! # Ordering invariant (documented, not incidental)
//!
//! Every event carries an [`EventKey`]: its timestamp plus a **monotone
//! sequence number** assigned at push time. Events pop in `(at, seq)`
//! order, so events scheduled for the *same instant* pop in push (FIFO)
//! order. This is the tie-break contract the whole simulator builds on —
//! the sharded event loop ([`crate::shard`]) supplies its own globally
//! deterministic keys through [`CalendarQueue::push_keyed`], and
//! determinism across shard counts reduces to this invariant. It is pinned
//! by unit tests and by a proptest that replays random workloads through a
//! reference binary heap.
//!
//! # Arena allocation
//!
//! Payload envelopes live in a slab arena (`Vec` + free list), so a
//! million in-flight messages reuse a contiguous allocation instead of
//! churning the global allocator, and bucket entries are three words.
//! Cancellation ([`CalendarQueue::cancel`]) frees the arena slot
//! immediately and lazily skips the stale bucket entry — which is what
//! makes cancellable watchdog timers (`tap-core`'s netdrive) cheap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// The total order events pop in: timestamp, then the monotone sequence
/// number assigned at push. Two events never share a key, so the order is
/// total and FIFO at equal timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// When the event is scheduled to occur.
    pub at: SimTime,
    /// Push-order tie-break: strictly monotone within a queue (or, for
    /// [`CalendarQueue::push_keyed`], the caller's globally unique stamp).
    pub seq: u64,
}

/// A handle to a scheduled event, for [`CalendarQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHandle {
    slot: u32,
    seq: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    at_us: u64,
    seq: u64,
    slot: u32,
}

/// `ready`'s heap element: reverses [`EventKey`] order so the max-heap
/// behaves as a min-heap (queue minimum at `peek()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Staged(Entry);

impl Ord for Staged {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.key().cmp(&self.0.key())
    }
}

impl PartialOrd for Staged {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Entry {
    fn key(&self) -> EventKey {
        EventKey {
            at: SimTime::from_micros(self.at_us),
            seq: self.seq,
        }
    }
}

struct Slot<M> {
    /// Sequence number of the event currently occupying the slot; bucket
    /// entries whose `seq` mismatches are stale (cancelled or popped) and
    /// are skipped at harvest. Sequence numbers are never reused, so a
    /// match is proof of identity.
    seq: u64,
    payload: Option<M>,
}

/// Default bucket width: 1 ms, the smallest latency the paper models —
/// same-bucket events are one propagation quantum apart at most.
const DEFAULT_WIDTH_US: u64 = 1_000;
/// Initial bucket count (grows by doubling as the queue fills).
const INITIAL_BUCKETS: usize = 32;
/// Resize when the live count exceeds this many events per bucket.
const RESIZE_LOAD: usize = 8;

/// A bucketed calendar queue over [`SimTime`], generic in the payload.
///
/// See the module docs for the design; the API contract is:
///
/// * [`CalendarQueue::push`] schedules a payload at a time and returns a
///   cancellation handle; keys are assigned monotonically.
/// * [`CalendarQueue::pop`] returns the minimum-key event.
/// * [`CalendarQueue::peek`] is `&self` and O(1): the next key is always
///   staged.
/// * Times may be arbitrary (past pushes pop immediately, far futures are
///   reached by cursor jump), but simulation kernels push monotonically.
pub struct CalendarQueue<M> {
    buckets: Vec<Vec<Entry>>,
    /// Entries with `at_us < horizon_us`, as a min-heap by key; the queue
    /// minimum is `ready.peek()`. Non-empty whenever `len > 0`. A heap
    /// (not a sorted vec) so that staging an out-of-order push costs
    /// O(log k), not an O(k) memmove.
    ready: BinaryHeap<Staged>,
    width_us: u64,
    /// Everything strictly before this instant has been staged to `ready`.
    horizon_us: u64,
    /// The bucket covering `[horizon_us, horizon_us + width_us)`.
    cursor: usize,
    arena: Vec<Slot<M>>,
    free: Vec<u32>,
    len: usize,
    next_seq: u64,
}

impl<M> Default for CalendarQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> CalendarQueue<M> {
    /// An empty queue with the default bucket geometry.
    pub fn new() -> Self {
        Self::with_width(SimDuration::from_micros(DEFAULT_WIDTH_US))
    }

    /// An empty queue with an explicit bucket width (must be nonzero).
    pub fn with_width(width: SimDuration) -> Self {
        assert!(width > SimDuration::ZERO, "bucket width must be positive");
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            ready: BinaryHeap::new(),
            width_us: width.as_micros(),
            horizon_us: 0,
            cursor: 0,
            arena: Vec::new(),
            free: Vec::new(),
            len: 0,
            next_seq: 0,
        }
    }

    /// Live (schedulable) events in the queue.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The key of the next event to pop, if any. O(1).
    pub fn peek(&self) -> Option<EventKey> {
        debug_assert_eq!(self.ready.is_empty(), self.len == 0, "ready staged");
        self.ready.peek().map(|s| s.0.key())
    }

    /// Schedule `payload` at `at` under the next monotone sequence number.
    pub fn push(&mut self, at: SimTime, payload: M) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(at, seq, payload)
    }

    /// Schedule under a caller-supplied tie-break key.
    ///
    /// For the sharded event loop: the caller derives `seq` from content
    /// (sender endpoint × per-endpoint counter), so the pop order at equal
    /// timestamps is a pure function of the workload — identical at any
    /// shard count. The caller must guarantee `seq` uniqueness per queue
    /// and must not mix `push_keyed` with [`CalendarQueue::push`].
    pub fn push_keyed(&mut self, at: SimTime, seq: u64, payload: M) -> EventHandle {
        self.insert(at, seq, payload)
    }

    fn insert(&mut self, at: SimTime, seq: u64, payload: M) -> EventHandle {
        let slot = match self.free.pop() {
            Some(s) => {
                self.arena[s as usize] = Slot {
                    seq,
                    payload: Some(payload),
                };
                s
            }
            None => {
                let s = u32::try_from(self.arena.len()).expect("arena outgrew u32 slots");
                self.arena.push(Slot {
                    seq,
                    payload: Some(payload),
                });
                s
            }
        };
        let entry = Entry {
            at_us: at.as_micros(),
            seq,
            slot,
        };
        self.len += 1;
        if entry.at_us < self.horizon_us || (self.len == 1 && self.ready.is_empty()) {
            // Lands inside (or forms) the staged window.
            self.ready.push(Staged(entry));
            if self.len == 1 {
                // Fresh staging: align the sweep to this event.
                self.align_to(entry.at_us);
            }
        } else {
            let b = self.bucket_of(entry.at_us);
            self.buckets[b].push(entry);
            self.maybe_grow();
            self.settle();
        }
        EventHandle { slot, seq }
    }

    /// Remove a scheduled event, returning its payload. `None` when the
    /// event already popped or was already cancelled (the handle is stale).
    pub fn cancel(&mut self, handle: EventHandle) -> Option<M> {
        let slot = self.arena.get_mut(handle.slot as usize)?;
        if slot.seq != handle.seq {
            return None;
        }
        let payload = slot.payload.take()?;
        slot.seq = u64::MAX; // no live entry may match again
        self.free.push(handle.slot);
        self.len -= 1;
        // A staged entry must leave `ready` eagerly so peek stays honest;
        // bucket entries are skipped lazily at harvest.
        if self.ready.iter().any(|s| s.0.seq == handle.seq) {
            self.ready.retain(|s| s.0.seq != handle.seq);
        }
        self.settle();
        Some(payload)
    }

    /// Pop the minimum-key event.
    pub fn pop(&mut self) -> Option<(EventKey, M)> {
        let Staged(entry) = self.ready.pop()?;
        let key = entry.key();
        let slot = &mut self.arena[entry.slot as usize];
        debug_assert_eq!(slot.seq, entry.seq, "staged entries are live");
        let payload = slot.payload.take().expect("staged entries carry payloads");
        slot.seq = u64::MAX;
        self.free.push(entry.slot);
        self.len -= 1;
        self.settle();
        Some((key, payload))
    }

    fn bucket_of(&self, at_us: u64) -> usize {
        ((at_us / self.width_us) % self.buckets.len() as u64) as usize
    }

    /// Point the sweep at the bucket containing `at_us`.
    fn align_to(&mut self, at_us: u64) {
        self.horizon_us = (at_us / self.width_us + 1) * self.width_us;
        self.cursor = self.bucket_of(self.horizon_us);
    }

    /// Restore the invariant: whenever live events remain, the next one is
    /// staged in `ready`. Sweeps buckets forward one width at a time; if a
    /// full rotation turns up nothing (the next event is more than one
    /// wheel revolution away), jumps the cursor straight to the global
    /// minimum instead of spinning.
    fn settle(&mut self) {
        let mut scanned = 0usize;
        while self.ready.is_empty() && self.len > 0 {
            if scanned >= self.buckets.len() {
                let min = self
                    .bucket_min()
                    .expect("len > 0 with empty ready implies a bucketed event");
                self.horizon_us = (min / self.width_us) * self.width_us;
                self.cursor = self.bucket_of(self.horizon_us);
                scanned = 0;
            }
            self.harvest_one();
            scanned += 1;
        }
    }

    /// Stage the cursor bucket's current-rotation events and advance.
    fn harvest_one(&mut self) {
        let end = self.horizon_us + self.width_us;
        let bucket = &mut self.buckets[self.cursor];
        let mut i = 0;
        while i < bucket.len() {
            let e = bucket[i];
            if self.arena[e.slot as usize].seq != e.seq {
                bucket.swap_remove(i); // stale: cancelled or long popped
                continue;
            }
            if e.at_us < end {
                bucket.swap_remove(i);
                self.ready.push(Staged(e));
                continue;
            }
            i += 1;
        }
        self.horizon_us = end;
        self.cursor = (self.cursor + 1) % self.buckets.len();
    }

    /// Minimum live timestamp across all buckets (O(n); used only for the
    /// far-future cursor jump).
    fn bucket_min(&self) -> Option<u64> {
        self.buckets
            .iter()
            .flatten()
            .filter(|e| self.arena[e.slot as usize].seq == e.seq)
            .map(|e| e.at_us)
            .min()
    }

    /// Double the bucket count once the live population outgrows the
    /// wheel, rebucketing every pending entry. Amortized O(1) per push.
    fn maybe_grow(&mut self) {
        if self.len <= RESIZE_LOAD * self.buckets.len() {
            return;
        }
        let old: Vec<Entry> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        let doubled = self.buckets.len() * 2;
        self.buckets = (0..doubled).map(|_| Vec::new()).collect();
        self.cursor = self.bucket_of(self.horizon_us);
        for e in old {
            if self.arena[e.slot as usize].seq == e.seq {
                let b = self.bucket_of(e.at_us);
                self.buckets[b].push(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(us(5_000), "c");
        q.push(us(1_000), "a");
        q.push(us(3_000), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_at_equal_timestamps_is_an_invariant() {
        let mut q = CalendarQueue::new();
        for i in 0..100u32 {
            q.push(us(7_000), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(
            order,
            (0..100).collect::<Vec<_>>(),
            "push order == pop order"
        );
    }

    #[test]
    fn keys_are_monotone_and_reported() {
        let mut q = CalendarQueue::new();
        q.push(us(10), 'x');
        q.push(us(10), 'y');
        let (k1, _) = q.pop().unwrap();
        let (k2, _) = q.pop().unwrap();
        assert_eq!(k1.at, us(10));
        assert!(k1 < k2, "equal-time keys still totally ordered");
        assert!(k1.seq < k2.seq);
    }

    #[test]
    fn peek_always_matches_pop() {
        let mut q = CalendarQueue::new();
        let times = [9u64, 400_000, 3, 9, 1_000_000_000, 250_000, 3];
        for (i, t) in times.iter().enumerate() {
            q.push(us(*t), i);
        }
        while let Some(k) = q.peek() {
            let (popped, _) = q.pop().unwrap();
            assert_eq!(k, popped);
        }
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn far_future_events_are_reached_by_cursor_jump() {
        let mut q = CalendarQueue::new();
        // One wheel revolution at default geometry is 32 ms; 1000 s is
        // thousands of revolutions away.
        q.push(us(1_000_000_000), "far");
        q.push(us(500), "near");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.peek().unwrap().at, us(1_000_000_000));
        assert_eq!(q.pop().unwrap().1, "far");
    }

    #[test]
    fn cancel_removes_exactly_its_event() {
        let mut q = CalendarQueue::new();
        let a = q.push(us(1_000), "a");
        let b = q.push(us(2_000), "b");
        let c = q.push(us(3_000), "c");
        assert_eq!(q.cancel(b), Some("b"));
        assert_eq!(q.cancel(b), None, "second cancel is stale");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.cancel(a), None, "cancel after pop is stale");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.cancel(c), None);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_of_staged_minimum_updates_peek() {
        let mut q = CalendarQueue::new();
        let a = q.push(us(100), 1);
        q.push(us(200), 2);
        assert_eq!(q.peek().unwrap().at, us(100));
        q.cancel(a);
        assert_eq!(q.peek().unwrap().at, us(200));
    }

    #[test]
    fn arena_slots_are_reused() {
        let mut q = CalendarQueue::new();
        for round in 0..50u64 {
            for i in 0..10u64 {
                q.push(us(round * 1_000 + i), (round, i));
            }
            for _ in 0..10 {
                q.pop().unwrap();
            }
        }
        assert!(q.arena.len() <= 20, "arena stays at the high-water mark");
    }

    #[test]
    fn growth_preserves_order_at_scale() {
        let mut q = CalendarQueue::new();
        let mut expect: Vec<(u64, u64)> = Vec::new();
        let mut state = 0x12345u64;
        for seq in 0..100_000u64 {
            state = crate::latency::splitmix64(state);
            let at = state % 2_000_000; // 2 s span
            q.push(us(at), seq);
            expect.push((at, seq));
        }
        expect.sort_unstable();
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(k, p)| (k.at.as_micros(), p))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn push_keyed_orders_by_caller_stamp() {
        let mut q = CalendarQueue::new();
        q.push_keyed(us(10), 500, "late");
        q.push_keyed(us(10), 7, "early");
        q.push_keyed(us(5), 900, "first");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["first", "early", "late"]);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        // Simulation pattern: pop advances time, handler pushes new events
        // relative to `now`.
        let mut q = CalendarQueue::new();
        let mut state = 99u64;
        q.push(us(0), 0u64);
        let mut last = 0u64;
        let mut processed = 0u64;
        while let Some((k, _)) = q.pop() {
            assert!(k.at.as_micros() >= last, "time must be monotone");
            last = k.at.as_micros();
            processed += 1;
            if processed < 5_000 {
                for _ in 0..2 {
                    state = crate::latency::splitmix64(state);
                    q.push(us(last + 1 + state % 300_000), processed);
                }
            }
        }
        assert!(processed >= 5_000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// The reference scheduler: the exact `BinaryHeap<Reverse<(at, seq)>>`
    /// discipline the event kernel used before the calendar queue.
    #[derive(Default)]
    struct RefHeap {
        heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    }

    impl RefHeap {
        fn push(&mut self, at_us: u64, seq: u64, payload: u32) {
            self.heap.push(Reverse((at_us, seq, payload)));
        }
        fn pop(&mut self) -> Option<(u64, u64, u32)> {
            self.heap.pop().map(|Reverse(x)| x)
        }
    }

    proptest! {
        /// Equivalence: any interleaving of pushes (bursty, same-instant,
        /// near- and far-future) and pops drains in the identical order
        /// through the calendar queue and the old binary heap.
        #[test]
        fn prop_matches_binary_heap_reference(
            ops in proptest::collection::vec((any::<bool>(), 0u64..3, 0u64..500_000), 1..300),
            seed in any::<u64>(),
        ) {
            let mut cq: CalendarQueue<u32> = CalendarQueue::new();
            let mut reference = RefHeap::default();
            let mut state = seed;
            let mut now = 0u64;
            let mut seq = 0u64;
            for (i, (pop, kind, delay)) in ops.iter().enumerate() {
                if *pop {
                    let got = cq.pop().map(|(k, p)| (k.at.as_micros(), k.seq, p));
                    let want = reference.pop();
                    prop_assert_eq!(got, want, "pop {} diverged", i);
                    if let Some((at, _, _)) = want {
                        now = at; // simulation clocks advance on pop
                    }
                } else {
                    state = crate::latency::splitmix64(state);
                    let at = match kind {
                        0 => now + delay,                     // bounded horizon
                        1 => now,                             // same-instant burst
                        _ => now + 40_000_000 + state % 1_000_000_000, // far timer
                    };
                    cq.push(SimTime::from_micros(at), i as u32);
                    reference.push(at, seq, i as u32);
                    seq += 1;
                }
            }
            // Drain both to the end: nothing may be lost or reordered.
            loop {
                let got = cq.pop().map(|(k, p)| (k.at.as_micros(), k.seq, p));
                let want = reference.pop();
                prop_assert_eq!(got, want, "drain diverged");
                if want.is_none() {
                    break;
                }
            }
        }

        /// Cancellation never perturbs the order of surviving events.
        #[test]
        fn prop_cancel_preserves_survivor_order(
            times in proptest::collection::vec(0u64..100_000, 2..120),
            cancel_mask in any::<u64>(),
        ) {
            let mut cq: CalendarQueue<usize> = CalendarQueue::new();
            let mut handles = Vec::new();
            for (i, t) in times.iter().enumerate() {
                handles.push((i, *t, cq.push(SimTime::from_micros(*t), i)));
            }
            let mut expect: Vec<(u64, usize)> = Vec::new();
            for (i, t, h) in &handles {
                if cancel_mask >> (i % 64) & 1 == 1 {
                    prop_assert_eq!(cq.cancel(*h), Some(*i));
                } else {
                    expect.push((*t, *i));
                }
            }
            expect.sort_unstable_by_key(|&(t, i)| (t, i)); // seq order == index order
            let got: Vec<(u64, usize)> = std::iter::from_fn(|| cq.pop())
                .map(|(k, p)| (k.at.as_micros(), p))
                .collect();
            prop_assert_eq!(got, expect);
        }
    }
}
