//! Virtual time: integer microseconds since simulation start.
//!
//! Integer time makes event ordering total and runs bit-reproducible;
//! microsecond resolution is three orders of magnitude below the smallest
//! latency the paper models (1 ms), so quantization never shows up in
//! results.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Why a float could not be interpreted as a span of virtual time.
///
/// A bad latency/jitter configuration must be a loud error, never an
/// instant-delivery network: silently clamping NaN or a negative delay
/// to zero would erase the very propagation model under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeError {
    /// The input was NaN or ±infinity.
    NotFinite,
    /// The input was a negative number of seconds.
    Negative,
    /// The input exceeds the representable range (~584,942 years of
    /// microseconds) — far past any plausible simulation horizon, so it
    /// is treated as a configuration bug rather than saturated.
    Overflow,
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::NotFinite => write!(f, "duration is NaN or infinite"),
            TimeError::Negative => write!(f, "duration is negative"),
            TimeError::Overflow => write!(f, "duration overflows u64 microseconds"),
        }
    }
}

impl std::error::Error for TimeError {}

/// An instant in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`; saturates to zero if reversed.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest
    /// microsecond).
    ///
    /// # Panics
    ///
    /// On NaN, infinite, negative, or overflowing input — see
    /// [`SimDuration::try_from_secs_f64`] for the fallible form.
    pub fn from_secs_f64(s: f64) -> Self {
        match Self::try_from_secs_f64(s) {
            Ok(d) => d,
            Err(e) => panic!("SimDuration::from_secs_f64({s}): {e}"),
        }
    }

    /// Construct from fractional seconds, rejecting values that cannot
    /// honestly represent a delay: NaN/infinite ([`TimeError::NotFinite`]),
    /// negative ([`TimeError::Negative`]), or beyond `u64` microseconds
    /// ([`TimeError::Overflow`]).
    pub fn try_from_secs_f64(s: f64) -> Result<Self, TimeError> {
        if !s.is_finite() {
            return Err(TimeError::NotFinite);
        }
        if s < 0.0 {
            return Err(TimeError::Negative);
        }
        let us = (s * 1_000_000.0).round();
        // 2^64 as f64; any float at or above it truncates out of range.
        if us >= 18_446_744_073_709_551_616.0 {
            return Err(TimeError::Overflow);
        }
        Ok(SimDuration(us as u64))
    }

    /// Microseconds in the span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in the span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiply the span by an integer factor.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_micros(42).as_micros(), 42);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(t.as_micros(), 3_000);
        let later = t + SimDuration::from_millis(7);
        assert_eq!((later - t).as_millis(), 7);
        assert_eq!((t - later), SimDuration::ZERO, "reversed span saturates");
        assert_eq!(SimDuration::from_millis(2).mul(3).as_millis(), 6);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(1);
        assert_eq!(t.as_secs_f64(), 1.0);
    }

    #[test]
    fn fractional_seconds_validate_their_input() {
        assert_eq!(SimDuration::try_from_secs_f64(0.0), Ok(SimDuration::ZERO));
        assert_eq!(
            SimDuration::try_from_secs_f64(0.0000005),
            Ok(SimDuration::from_micros(1)),
            "rounds to nearest microsecond"
        );
        assert_eq!(
            SimDuration::try_from_secs_f64(f64::NAN),
            Err(TimeError::NotFinite)
        );
        assert_eq!(
            SimDuration::try_from_secs_f64(f64::INFINITY),
            Err(TimeError::NotFinite)
        );
        assert_eq!(
            SimDuration::try_from_secs_f64(-0.001),
            Err(TimeError::Negative)
        );
        assert_eq!(
            SimDuration::try_from_secs_f64(1e19),
            Err(TimeError::Overflow),
            "huge floats error out instead of saturating"
        );
        // The largest in-range magnitudes still convert.
        assert!(SimDuration::try_from_secs_f64(1e12).is_ok());
    }

    #[test]
    #[should_panic(expected = "duration is NaN or infinite")]
    fn from_secs_f64_panics_on_nan() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "duration is negative")]
    fn from_secs_f64_panics_on_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "duration overflows")]
    fn from_secs_f64_panics_on_overflow() {
        let _ = SimDuration::from_secs_f64(1e30);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_micros(1_234_000).to_string(), "1.234s");
        assert_eq!(SimDuration::from_millis(10).to_string(), "0.010s");
    }
}
