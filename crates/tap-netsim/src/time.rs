//! Virtual time: integer microseconds since simulation start.
//!
//! Integer time makes event ordering total and runs bit-reproducible;
//! microsecond resolution is three orders of magnitude below the smallest
//! latency the paper models (1 ms), so quantization never shows up in
//! results.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`; saturates to zero if reversed.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest microsecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite());
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    /// Microseconds in the span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in the span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiply the span by an integer factor.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_micros(42).as_micros(), 42);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(t.as_micros(), 3_000);
        let later = t + SimDuration::from_millis(7);
        assert_eq!((later - t).as_millis(), 7);
        assert_eq!((t - later), SimDuration::ZERO, "reversed span saturates");
        assert_eq!(SimDuration::from_millis(2).mul(3).as_millis(), 6);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(1);
        assert_eq!(t.as_secs_f64(), 1.0);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_micros(1_234_000).to_string(), "1.234s");
        assert_eq!(SimDuration::from_millis(10).to_string(), "0.010s");
    }
}
