//! The region-sharded event loop: one trial over many cores,
//! deterministically.
//!
//! # Protocol
//!
//! [`ShardedNetwork`] splits the endpoint space into `S` contiguous ranges
//! ("regions"); each shard owns its range's NICs, liveness flags, and a
//! private [`CalendarQueue`]. The simulation advances in **epoch windows**
//! using conservative (lookahead-based) synchronization:
//!
//! 1. *Window.* All shards agree on `t0` = the global minimum pending
//!    timestamp, and each processes its own events in `[t0, t0 + Δ)`,
//!    where `Δ` is the lookahead. Local sends go straight into the local
//!    queue; cross-shard sends are appended to a per-`(src-shard,
//!    dst-shard)` outbox.
//! 2. *Exchange.* After a barrier, every shard drains the outboxes
//!    addressed to it (in source-shard order) into its queue, and the next
//!    window begins.
//!
//! This is causally safe when `Δ ≤` the minimum cross-shard link delay
//! ([`crate::latency::LatencyModel::min_delay`]): a message sent at
//! `τ ∈ [t0, t0+Δ)` arrives no earlier than `τ + Δ ≥ t0 + Δ`, i.e. always
//! in a *later* window than the one its receiver is currently processing —
//! so no shard can receive an event for a time it has already passed. With
//! the paper's `U[1 ms, 230 ms]` latencies, `Δ = 1 ms`.
//!
//! # Determinism across shard counts and thread counts
//!
//! Within a queue, same-instant events pop in sequence-number order
//! ([`crate::sched`]). A global push counter would encode *scheduling*
//! order, which differs across shardings — so the sharded loop instead
//! stamps every event with a **content-derived key**: `src_endpoint_index
//! << 32 | per-endpoint occurrence counter` (timers count against their
//! owner). Each endpoint's stamp stream depends only on that endpoint's
//! own deterministic processing order, never on which shard or thread
//! hosts it; therefore the set of (timestamp, stamp, event) triples — and
//! each shard's pop order — is a pure function of the workload and seed.
//! Thread assignment only decides *who* executes a shard's window, not
//! what is in it: barriers separate the process and exchange phases, and
//! outboxes are drained in fixed source-shard order. Randomness must stay
//! on the counter-stream discipline (pure functions of `(seed, index)`,
//! as in [`crate::fault::FaultPlan`]) — nothing in this module draws from
//! shared mutable RNG state.
//!
//! Worker threads are persistent for the whole run (spawned once via
//! `std::thread::scope`), with shards statically chunked across them; the
//! per-epoch global minimum is computed from per-shard atomics published
//! at the end of each exchange phase.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use tap_metrics::{Counter, Histogram, Registry};

use crate::bandwidth::Nic;
use crate::latency::LatencyModel;
use crate::network::{
    DeliveredMessage, EndpointId, Event, NetworkConfig, TimerToken, TrafficStats,
};
use crate::sched::CalendarQueue;
use crate::time::{SimDuration, SimTime};

/// Contiguous endpoint ranges: the first `total % shards` shards take one
/// extra endpoint.
struct Topology {
    total: usize,
    ranges: Vec<Range<usize>>,
    base: usize,
    rem: usize,
}

impl Topology {
    fn new(total: usize, shards: usize) -> Self {
        let base = total / shards;
        let rem = total % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0;
        for i in 0..shards {
            let width = base + usize::from(i < rem);
            ranges.push(start..start + width);
            start += width;
        }
        debug_assert_eq!(start, total);
        Topology {
            total,
            ranges,
            base,
            rem,
        }
    }

    /// The shard owning endpoint `idx` — O(1) arithmetic, no search.
    fn shard_of(&self, idx: usize) -> usize {
        debug_assert!(idx < self.total, "endpoint {idx} out of range");
        let fat = self.rem * (self.base + 1);
        if idx < fat {
            idx / (self.base + 1)
        } else {
            self.rem + (idx - fat) / self.base
        }
    }
}

/// An event staged in a shard-local queue.
enum Job<M> {
    Deliver {
        src: EndpointId,
        dst: EndpointId,
        bytes: u64,
        sent_at: SimTime,
        payload: M,
    },
    Timer {
        token: TimerToken,
    },
}

/// A cross-shard message in an outbox, carrying its canonical stamp.
struct Wire<M> {
    at: SimTime,
    stamp: u64,
    src: EndpointId,
    dst: EndpointId,
    bytes: u64,
    sent_at: SimTime,
    payload: M,
}

/// One region: its endpoints' state plus a private event queue and
/// metrics registry (folded together after the run, in shard order).
struct Shard<M> {
    range: Range<usize>,
    queue: CalendarQueue<Job<M>>,
    nics: Vec<Nic>,
    alive: Vec<bool>,
    /// Per-local-endpoint occurrence counters feeding the canonical
    /// stamps; must stay below 2^32 (they share a u64 with the endpoint
    /// index).
    counters: Vec<u64>,
    now: SimTime,
    stats: TrafficStats,
    events: u64,
    registry: Registry,
    delivered_ctr: std::sync::Arc<Counter>,
    dropped_ctr: std::sync::Arc<Counter>,
    queue_delay_us: std::sync::Arc<Histogram>,
    propagation_us: std::sync::Arc<Histogram>,
}

impl<M> Shard<M> {
    fn new(range: Range<usize>, config: &NetworkConfig) -> Self {
        let width = range.len();
        let registry = Registry::new();
        Shard {
            range,
            queue: CalendarQueue::new(),
            nics: (0..width).map(|_| Nic::new(config.bandwidth_bps)).collect(),
            alive: vec![true; width],
            counters: vec![0; width],
            now: SimTime::ZERO,
            stats: TrafficStats::default(),
            events: 0,
            delivered_ctr: registry.counter("netsim.shard.delivered"),
            dropped_ctr: registry.counter("netsim.shard.dropped"),
            queue_delay_us: registry.histogram("netsim.queue_delay_us"),
            propagation_us: registry.histogram("netsim.propagation_us"),
            registry,
        }
    }

    /// Mint the canonical stamp for the next occurrence charged to the
    /// local endpoint `global_idx`.
    fn stamp(&mut self, global_idx: usize) -> u64 {
        let local = global_idx - self.range.start;
        let c = &mut self.counters[local];
        debug_assert!(*c < u64::from(u32::MAX), "per-endpoint stamp overflow");
        let s = ((global_idx as u64) << 32) | *c;
        *c += 1;
        s
    }
}

/// The per-shard view handed to event handlers: all interaction with the
/// simulation during [`ShardedNetwork::run`] goes through it.
pub struct ShardCtx<'a, M, L: LatencyModel> {
    shard: &'a mut Shard<M>,
    shard_index: usize,
    outbox: &'a [Mutex<Vec<Wire<M>>>],
    topo: &'a Topology,
    config: &'a NetworkConfig,
    latency: &'a L,
}

impl<'a, M, L: LatencyModel> ShardCtx<'a, M, L> {
    /// This shard's current virtual time (the timestamp of the event being
    /// handled).
    pub fn now(&self) -> SimTime {
        self.shard.now
    }

    /// Index of the shard this context belongs to.
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// The contiguous endpoint range this shard owns.
    pub fn endpoints(&self) -> Range<usize> {
        self.shard.range.clone()
    }

    /// The shard-private metrics registry (folded across shards after the
    /// run via [`ShardedNetwork::fold_metrics`]).
    pub fn registry(&self) -> &Registry {
        &self.shard.registry
    }

    /// Liveness of a *local* endpoint.
    pub fn is_alive(&self, id: EndpointId) -> bool {
        let idx = id.index();
        assert!(
            self.shard.range.contains(&idx),
            "liveness of non-local endpoint {idx} queried on shard {}",
            self.shard_index
        );
        self.shard.alive[idx - self.shard.range.start]
    }

    /// Queue `payload` from the local endpoint `src` to any endpoint
    /// `dst`; semantics match [`crate::Network::send`] (FIFO uplink
    /// serialization + propagation + processing delay; `None` from a dead
    /// sender; receiver liveness checked at delivery).
    pub fn send(
        &mut self,
        src: EndpointId,
        dst: EndpointId,
        bytes: u64,
        payload: M,
    ) -> Option<SimTime> {
        let si = src.index();
        assert!(
            self.shard.range.contains(&si),
            "send from non-local endpoint {si} on shard {}",
            self.shard_index
        );
        let local = si - self.shard.range.start;
        if !self.shard.alive[local] {
            self.shard.stats.messages_dropped += 1;
            self.shard.dropped_ctr.inc();
            return None;
        }
        self.shard.stats.messages_sent += 1;
        self.shard.stats.bytes_sent += bytes;
        let now = self.shard.now;
        let tx_done = self.shard.nics[local].transmit(now, bytes);
        let propagation = self.latency.delay(src, dst);
        self.shard
            .queue_delay_us
            .record((tx_done - now).as_micros());
        self.shard.propagation_us.record(propagation.as_micros());
        let arrive = tx_done + propagation + self.config.processing_delay;
        let stamp = self.shard.stamp(si);
        let dst_shard = self.topo.shard_of(dst.index());
        if dst_shard == self.shard_index {
            self.shard.queue.push_keyed(
                arrive,
                stamp,
                Job::Deliver {
                    src,
                    dst,
                    bytes,
                    sent_at: now,
                    payload,
                },
            );
        } else {
            self.outbox[dst_shard]
                .lock()
                .expect("outbox poisoned")
                .push(Wire {
                    at: arrive,
                    stamp,
                    src,
                    dst,
                    bytes,
                    sent_at: now,
                    payload,
                });
        }
        Some(arrive)
    }

    /// Schedule a timer on the local endpoint `owner`, `after` from now.
    pub fn set_timer(
        &mut self,
        owner: EndpointId,
        after: SimDuration,
        token: TimerToken,
    ) -> SimTime {
        let oi = owner.index();
        assert!(
            self.shard.range.contains(&oi),
            "timer on non-local endpoint {oi} on shard {}",
            self.shard_index
        );
        let at = self.shard.now + after;
        let stamp = self.shard.stamp(oi);
        self.shard.queue.push_keyed(at, stamp, Job::Timer { token });
        at
    }

    /// Process every queued event strictly before `end`.
    fn process_window<F>(&mut self, end: SimTime, h: &mut F)
    where
        F: FnMut(&mut ShardCtx<'_, M, L>, Event<M>),
    {
        while self.shard.queue.peek().is_some_and(|k| k.at < end) {
            let (key, job) = self.shard.queue.pop().expect("peeked event present");
            debug_assert!(key.at >= self.shard.now, "shard time must be monotone");
            self.shard.now = key.at;
            match job {
                Job::Timer { token } => {
                    self.shard.events += 1;
                    h(self, Event::Timer { token, at: key.at });
                }
                Job::Deliver {
                    src,
                    dst,
                    bytes,
                    sent_at,
                    payload,
                } => {
                    let local = dst.index() - self.shard.range.start;
                    if !self.shard.alive[local] {
                        self.shard.stats.messages_dropped += 1;
                        self.shard.dropped_ctr.inc();
                        continue;
                    }
                    self.shard.stats.messages_delivered += 1;
                    self.shard.delivered_ctr.inc();
                    self.shard.events += 1;
                    h(
                        self,
                        Event::Message(DeliveredMessage {
                            src,
                            dst,
                            bytes,
                            sent_at,
                            delivered_at: key.at,
                            payload,
                        }),
                    );
                }
            }
        }
    }
}

/// A deterministic, region-sharded network simulation — the many-core
/// counterpart of [`crate::Network`]. See the module docs for the epoch
/// protocol and the determinism argument.
pub struct ShardedNetwork<M, L: LatencyModel = crate::latency::UniformLatency> {
    config: NetworkConfig,
    latency: L,
    topo: Topology,
    lookahead: SimDuration,
    shards: Vec<Shard<M>>,
    /// `links[src_shard][dst_shard]`: the ordered cross-shard outboxes.
    /// Locking is phase-disciplined — written only by `src_shard` during
    /// process phases, drained only by `dst_shard` during exchange phases,
    /// with barriers between — so the mutexes are never contended.
    links: Vec<Vec<Mutex<Vec<Wire<M>>>>>,
}

impl<M, L: LatencyModel> ShardedNetwork<M, L> {
    /// Build a network of `endpoints` endpoints over `shards` regions.
    ///
    /// `shards` is clamped to `[1, endpoints]`. The lookahead window is
    /// taken from `latency.min_delay()`, which must be positive when
    /// `shards > 1` (a zero lower bound admits no conservative window).
    pub fn new(config: NetworkConfig, mut latency: L, endpoints: usize, shards: usize) -> Self {
        assert!(
            endpoints > 0,
            "a sharded network needs at least one endpoint"
        );
        let shards = shards.clamp(1, endpoints);
        let lookahead = latency.min_delay();
        assert!(
            shards == 1 || lookahead > SimDuration::ZERO,
            "sharding needs a positive latency floor (LatencyModel::min_delay) for its lookahead"
        );
        for i in 0..endpoints {
            let id = EndpointId::from_index(i).expect("endpoint index fits u32");
            latency.on_endpoint_added(id);
        }
        let topo = Topology::new(endpoints, shards);
        let shard_vec: Vec<Shard<M>> = topo
            .ranges
            .iter()
            .map(|r| Shard::new(r.clone(), &config))
            .collect();
        let links = (0..shards)
            .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        ShardedNetwork {
            config,
            latency,
            topo,
            lookahead: if shards == 1 {
                // One shard needs no causal window; use a coarse slab so
                // the sequential path still batches queue work.
                lookahead.max(SimDuration::from_millis(1))
            } else {
                lookahead
            },
            shards: shard_vec,
            links,
        }
    }

    /// Number of endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.topo.total
    }

    /// Number of shards (after clamping).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The conservative epoch window width.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// The propagation delay the latency model assigns to `(a, b)`.
    pub fn link_delay(&self, a: EndpointId, b: EndpointId) -> SimDuration {
        self.latency.delay(a, b)
    }

    fn shard_of_mut(&mut self, id: EndpointId) -> &mut Shard<M> {
        let s = self.topo.shard_of(id.index());
        &mut self.shards[s]
    }

    /// Kill an endpoint before (or between) runs: fail-stop, as in
    /// [`crate::Network::kill`].
    pub fn kill(&mut self, id: EndpointId) {
        let local = id.index() - self.shard_of_mut(id).range.start;
        let now = self.shard_of_mut(id).now;
        let shard = self.shard_of_mut(id);
        shard.alive[local] = false;
        shard.nics[local].reset(now);
    }

    /// Revive a previously killed endpoint.
    pub fn revive(&mut self, id: EndpointId) {
        let local = id.index() - self.shard_of_mut(id).range.start;
        self.shard_of_mut(id).alive[local] = true;
    }

    /// Seed the simulation: schedule a timer on `owner` at absolute time
    /// `at`. The workload's initial events enter this way; handler-driven
    /// timers use [`ShardCtx::set_timer`].
    pub fn schedule_timer_at(&mut self, owner: EndpointId, at: SimTime, token: TimerToken) {
        let shard = self.shard_of_mut(owner);
        assert!(at >= shard.now, "cannot schedule into the past");
        let stamp = shard.stamp(owner.index());
        shard.queue.push_keyed(at, stamp, Job::Timer { token });
    }

    /// Aggregate traffic counters across shards.
    pub fn stats(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for s in &self.shards {
            total.messages_sent += s.stats.messages_sent;
            total.messages_delivered += s.stats.messages_delivered;
            total.messages_dropped += s.stats.messages_dropped;
            total.bytes_sent += s.stats.bytes_sent;
        }
        total
    }

    /// Fold every shard's private registry into `into`, in shard order —
    /// counters add and histogram buckets add, so the result is identical
    /// at any shard/thread count.
    pub fn fold_metrics(&self, into: &Registry) {
        for s in &self.shards {
            into.merge(&s.registry);
        }
    }

    /// Drive the simulation to quiescence on up to `threads` worker
    /// threads (clamped to the shard count; `1` runs inline with no
    /// thread or barrier overhead). `handler_for(i)` builds shard `i`'s
    /// event handler; each handler observes only its own shard's events,
    /// in deterministic order. Returns the number of events handed to
    /// handlers.
    pub fn run<F>(&mut self, threads: usize, mut handler_for: impl FnMut(usize) -> F) -> u64
    where
        M: Send,
        L: Sync,
        F: FnMut(&mut ShardCtx<'_, M, L>, Event<M>) + Send,
    {
        let n = self.shards.len();
        let mut handlers: Vec<F> = (0..n).map(&mut handler_for).collect();
        let workers = threads.clamp(1, n);
        if workers == 1 {
            self.run_sequential(&mut handlers)
        } else {
            self.run_parallel(workers, &mut handlers)
        }
    }

    fn run_sequential<F>(&mut self, handlers: &mut [F]) -> u64
    where
        F: FnMut(&mut ShardCtx<'_, M, L>, Event<M>),
    {
        let n = self.shards.len();
        loop {
            let t0 = self
                .shards
                .iter()
                .filter_map(|s| s.queue.peek())
                .map(|k| k.at)
                .min();
            let Some(t0) = t0 else { break };
            let end = t0 + self.lookahead;
            for (i, (shard, h)) in self.shards.iter_mut().zip(handlers.iter_mut()).enumerate() {
                let mut ctx = ShardCtx {
                    shard,
                    shard_index: i,
                    outbox: &self.links[i],
                    topo: &self.topo,
                    config: &self.config,
                    latency: &self.latency,
                };
                ctx.process_window(end, h);
            }
            for dst in 0..n {
                for src in 0..n {
                    if src == dst {
                        continue;
                    }
                    let mut inbox = self.links[src][dst].lock().expect("outbox poisoned");
                    for w in inbox.drain(..) {
                        debug_assert!(
                            w.at >= end,
                            "lookahead exceeds the true minimum cross-shard delay"
                        );
                        self.shards[dst].queue.push_keyed(
                            w.at,
                            w.stamp,
                            Job::Deliver {
                                src: w.src,
                                dst: w.dst,
                                bytes: w.bytes,
                                sent_at: w.sent_at,
                                payload: w.payload,
                            },
                        );
                    }
                }
            }
        }
        self.shards.iter().map(|s| s.events).sum()
    }

    fn run_parallel<F>(&mut self, workers: usize, handlers: &mut [F]) -> u64
    where
        M: Send,
        L: Sync,
        F: FnMut(&mut ShardCtx<'_, M, L>, Event<M>) + Send,
    {
        let n = self.shards.len();
        // ceil-sized chunks can cover all shards in fewer than `workers`
        // pieces (6 shards / 4 workers -> 3 chunks of 2); the barrier must
        // match the number of threads actually spawned.
        let chunk = n.div_ceil(workers);
        let spawned = n.div_ceil(chunk);
        let barrier = Barrier::new(spawned);
        let next_at: Vec<AtomicU64> = self
            .shards
            .iter()
            .map(|s| AtomicU64::new(s.queue.peek().map_or(u64::MAX, |k| k.at.as_micros())))
            .collect();
        let links = &self.links;
        let topo = &self.topo;
        let config = &self.config;
        let latency = &self.latency;
        let lookahead = self.lookahead;
        // Pair every shard with its handler, then statically chunk the
        // pairs across workers — threads are spawned once for the whole
        // run, not per epoch.
        let mut pairs: Vec<(usize, &mut Shard<M>, &mut F)> = self
            .shards
            .iter_mut()
            .zip(handlers.iter_mut())
            .enumerate()
            .map(|(i, (s, h))| (i, s, h))
            .collect();
        std::thread::scope(|scope| {
            let barrier = &barrier;
            let next_at = &next_at;
            for my in pairs.chunks_mut(chunk) {
                scope.spawn(move || {
                    loop {
                        // All shards' `next_at` publications (and outbox
                        // drains) from the previous epoch complete before
                        // this barrier releases; the min every worker then
                        // computes is identical.
                        barrier.wait();
                        let t0 = next_at
                            .iter()
                            .map(|a| a.load(Ordering::Relaxed))
                            .min()
                            .unwrap_or(u64::MAX);
                        if t0 == u64::MAX {
                            break;
                        }
                        let end = SimTime::from_micros(t0) + lookahead;
                        for (i, shard, h) in my.iter_mut() {
                            let mut ctx = ShardCtx {
                                shard,
                                shard_index: *i,
                                outbox: &links[*i],
                                topo,
                                config,
                                latency,
                            };
                            ctx.process_window(end, h);
                        }
                        // Every outbox write lands before any drain starts.
                        barrier.wait();
                        for (i, shard, _) in my.iter_mut() {
                            for (src, row) in links.iter().enumerate() {
                                if src == *i {
                                    continue;
                                }
                                let mut inbox = row[*i].lock().expect("outbox poisoned");
                                for w in inbox.drain(..) {
                                    debug_assert!(
                                        w.at >= end,
                                        "lookahead exceeds the true minimum cross-shard delay"
                                    );
                                    shard.queue.push_keyed(
                                        w.at,
                                        w.stamp,
                                        Job::Deliver {
                                            src: w.src,
                                            dst: w.dst,
                                            bytes: w.bytes,
                                            sent_at: w.sent_at,
                                            payload: w.payload,
                                        },
                                    );
                                }
                            }
                            next_at[*i].store(
                                shard.queue.peek().map_or(u64::MAX, |k| k.at.as_micros()),
                                Ordering::Relaxed,
                            );
                        }
                    }
                });
            }
        });
        self.shards.iter().map(|s| s.events).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::UniformLatency;
    use crate::Network;
    use std::sync::Arc;

    /// One delivery observed by the relay workload: (delivered_at, src,
    /// dst, payload), sorted after the run to erase thread interleaving.
    type DeliveryLog = Vec<(u64, usize, usize, u64)>;

    /// A deterministic relay workload: timers launch transfers, receivers
    /// forward a bounded number of hops. Pure function of (seed, index).
    fn relay_handler(
        total: usize,
        log: Arc<Mutex<DeliveryLog>>,
    ) -> impl FnMut(&mut ShardCtx<'_, u64, UniformLatency>, Event<u64>) + Send {
        move |ctx, ev| match ev {
            Event::Timer { token, .. } => {
                let i = token.0 as usize;
                let src = EndpointId::from_index(i % total).unwrap();
                let dst = EndpointId::from_index((i * 7 + 3) % total).unwrap();
                if src != dst {
                    ctx.send(src, dst, 200 + (token.0 % 5) * 100, token.0 << 8);
                }
            }
            Event::Message(m) => {
                log.lock().unwrap().push((
                    m.delivered_at.as_micros(),
                    m.src.index(),
                    m.dst.index(),
                    m.payload,
                ));
                let hops = m.payload & 0xFF;
                if hops < 2 {
                    let next = EndpointId::from_index((m.dst.index() * 5 + 1) % total).unwrap();
                    if next != m.dst {
                        ctx.send(m.dst, next, m.bytes, (m.payload & !0xFF) | (hops + 1));
                    }
                }
            }
        }
    }

    fn run_relay(total: usize, shards: usize, threads: usize) -> (DeliveryLog, TrafficStats, u64) {
        let mut net: ShardedNetwork<u64, UniformLatency> = ShardedNetwork::new(
            NetworkConfig::paper_defaults(),
            UniformLatency::paper(42),
            total,
            shards,
        );
        for i in 0..(total * 2) as u64 {
            let owner = EndpointId::from_index(i as usize % total).unwrap();
            net.schedule_timer_at(owner, SimTime::from_micros((i % 7) * 500), TimerToken(i));
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let events = net.run(threads, |_| relay_handler(total, log.clone()));
        let mut entries = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
        entries.sort_unstable();
        (entries, net.stats(), events)
    }

    #[test]
    fn single_shard_matches_unsharded_network() {
        // The same two-message workload through Network and through a
        // one-shard ShardedNetwork must produce identical delivery times.
        let mut plain: Network<u64, UniformLatency> =
            Network::new(NetworkConfig::paper_defaults(), UniformLatency::paper(7));
        let a = plain.add_endpoint();
        let b = plain.add_endpoint();
        let c = plain.add_endpoint();
        plain.send(a, b, 1_500, 1);
        plain.send(a, c, 3_000, 2);
        let mut plain_deliveries = Vec::new();
        plain.run_until_quiet(|_, ev| {
            if let Event::Message(m) = ev {
                plain_deliveries.push((m.delivered_at, m.dst, m.payload));
            }
        });

        let mut sharded: ShardedNetwork<u64, UniformLatency> = ShardedNetwork::new(
            NetworkConfig::paper_defaults(),
            UniformLatency::paper(7),
            3,
            1,
        );
        sharded.schedule_timer_at(a, SimTime::ZERO, TimerToken(0));
        let deliveries = Arc::new(Mutex::new(Vec::new()));
        let sink = deliveries.clone();
        sharded.run(1, move |_| {
            let sink = sink.clone();
            move |ctx: &mut ShardCtx<'_, u64, UniformLatency>, ev: Event<u64>| match ev {
                Event::Timer { .. } => {
                    ctx.send(a, b, 1_500, 1);
                    ctx.send(a, c, 3_000, 2);
                }
                Event::Message(m) => {
                    sink.lock()
                        .unwrap()
                        .push((m.delivered_at, m.dst, m.payload));
                }
            }
        });
        let got = deliveries.lock().unwrap().clone();
        assert_eq!(got, plain_deliveries, "same NIC + latency arithmetic");
    }

    #[test]
    fn cross_shard_delivery_matches_link_arithmetic() {
        let mut net: ShardedNetwork<u64, UniformLatency> = ShardedNetwork::new(
            NetworkConfig::paper_defaults(),
            UniformLatency::paper(3),
            10,
            5,
        );
        let src = EndpointId::from_index(0).unwrap();
        let dst = EndpointId::from_index(9).unwrap(); // different shard
        let expect = SimTime::ZERO
            + SimDuration::from_micros(1_500 * 8 * 1_000_000 / 1_500_000)
            + net.link_delay(src, dst);
        net.schedule_timer_at(src, SimTime::ZERO, TimerToken(0));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        net.run(1, move |_| {
            let sink = sink.clone();
            move |ctx: &mut ShardCtx<'_, u64, UniformLatency>, ev: Event<u64>| match ev {
                Event::Timer { .. } => {
                    let at = ctx.send(src, dst, 1_500, 77).unwrap();
                    sink.lock().unwrap().push(("sent", at));
                }
                Event::Message(m) => {
                    sink.lock().unwrap().push(("got", m.delivered_at));
                }
            }
        });
        let log = seen.lock().unwrap().clone();
        assert_eq!(log, vec![("sent", expect), ("got", expect)]);
    }

    #[test]
    fn event_order_is_invariant_across_shard_counts() {
        let baseline = run_relay(24, 1, 1);
        for shards in [2, 3, 8, 24] {
            let got = run_relay(24, shards, 1);
            assert_eq!(got, baseline, "shards={shards} diverged from 1 shard");
        }
    }

    #[test]
    fn event_order_is_invariant_across_thread_counts() {
        let baseline = run_relay(24, 6, 1);
        for threads in [2, 3, 6, 16] {
            let got = run_relay(24, 6, threads);
            assert_eq!(got, baseline, "threads={threads} diverged from 1 thread");
        }
    }

    #[test]
    fn dead_endpoints_drop_at_delivery() {
        let mut net: ShardedNetwork<u64, UniformLatency> = ShardedNetwork::new(
            NetworkConfig::latency_only(),
            UniformLatency::paper(5),
            6,
            3,
        );
        let src = EndpointId::from_index(0).unwrap();
        let dead = EndpointId::from_index(5).unwrap();
        net.kill(dead);
        net.schedule_timer_at(src, SimTime::ZERO, TimerToken(0));
        let delivered = Arc::new(Mutex::new(0u64));
        let sink = delivered.clone();
        net.run(1, move |_| {
            let sink = sink.clone();
            move |ctx: &mut ShardCtx<'_, u64, UniformLatency>, ev: Event<u64>| match ev {
                Event::Timer { .. } => {
                    ctx.send(src, dead, 10, 1);
                }
                Event::Message(_) => *sink.lock().unwrap() += 1,
            }
        });
        assert_eq!(*delivered.lock().unwrap(), 0);
        let stats = net.stats();
        assert_eq!(stats.messages_sent, 1);
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.messages_delivered, 0);
    }

    #[test]
    fn metrics_fold_deterministically() {
        let fold = |threads: usize| {
            let mut net: ShardedNetwork<u64, UniformLatency> = ShardedNetwork::new(
                NetworkConfig::paper_defaults(),
                UniformLatency::paper(11),
                12,
                4,
            );
            for i in 0..24u64 {
                net.schedule_timer_at(
                    EndpointId::from_index(i as usize % 12).unwrap(),
                    SimTime::from_micros(i * 100),
                    TimerToken(i),
                );
            }
            net.run(threads, |_| {
                move |ctx: &mut ShardCtx<'_, u64, UniformLatency>, ev: Event<u64>| {
                    if let Event::Timer { token, .. } = ev {
                        let src = EndpointId::from_index(token.0 as usize % 12).unwrap();
                        let dst = EndpointId::from_index((token.0 as usize + 5) % 12).unwrap();
                        ctx.send(src, dst, 500, token.0);
                    }
                }
            });
            let folded = Registry::new();
            net.fold_metrics(&folded);
            folded.snapshot().to_json()
        };
        let one = fold(1);
        assert_eq!(one, fold(3), "folded metrics identical across threads");
        let snap = one;
        assert!(snap.contains("netsim.shard.delivered"));
    }

    #[test]
    fn shard_ranges_partition_the_endpoint_space() {
        for (total, shards) in [(10, 3), (7, 7), (100, 8), (5, 16), (1, 1)] {
            let topo = Topology::new(total, shards.min(total));
            let mut covered = 0;
            for (i, r) in topo.ranges.iter().enumerate() {
                assert!(!r.is_empty(), "no empty shards after clamping");
                for idx in r.clone() {
                    assert_eq!(topo.shard_of(idx), i);
                    covered += 1;
                }
            }
            assert_eq!(covered, total);
        }
    }
}
