//! The event kernel: endpoints, timers, and message delivery.

use std::sync::Arc;

use tap_metrics::{Counter, Histogram, Registry};

use crate::bandwidth::Nic;
use crate::fault::{FaultAction, FaultPlan};
use crate::latency::LatencyModel;
use crate::sched::{CalendarQueue, EventHandle};
use crate::time::{SimDuration, SimTime};

/// Index of an endpoint attached to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointId(u32);

impl EndpointId {
    /// Build from a dense index (test/bench helper; real ids come from
    /// [`Network::add_endpoint`]). `None` when the index does not fit the
    /// id's 32-bit representation.
    pub fn from_index(i: usize) -> Option<Self> {
        u32::try_from(i).ok().map(EndpointId)
    }

    /// The dense index of this endpoint.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Caller-defined timer identifier, returned inside [`Event::Timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// Handle to a pending timer, returned by [`Network::arm_timer`] and
/// consumed by [`Network::cancel_timer`]. Stale handles (the timer already
/// fired or was cancelled) are harmless: cancellation simply reports
/// `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    inner: EventHandle,
    at: SimTime,
}

impl TimerHandle {
    /// The instant the timer is scheduled to fire.
    pub fn fires_at(self) -> SimTime {
        self.at
    }
}

/// A message handed to its destination endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveredMessage<M> {
    /// Sender.
    pub src: EndpointId,
    /// Receiver.
    pub dst: EndpointId,
    /// Simulated wire size in bytes (drives the bandwidth model).
    pub bytes: u64,
    /// When [`Network::send`] was called.
    pub sent_at: SimTime,
    /// When the last bit arrived at `dst`.
    pub delivered_at: SimTime,
    /// The payload.
    pub payload: M,
}

/// An event surfaced by [`Network::next_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M> {
    /// A message arrived at a live endpoint.
    Message(DeliveredMessage<M>),
    /// A timer set with [`Network::set_timer`] fired.
    Timer {
        /// The token supplied when the timer was set.
        token: TimerToken,
        /// The instant the timer fired.
        at: SimTime,
    },
}

/// Static network parameters.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Per-endpoint uplink bandwidth in bits/second.
    pub bandwidth_bps: u64,
    /// Fixed per-message processing delay added at the receiver (models
    /// deserialize + handler cost; zero by default, as in the paper).
    pub processing_delay: SimDuration,
}

impl NetworkConfig {
    /// The paper's §7.3 parameters: 1.5 Mb/s links, no processing delay.
    pub fn paper_defaults() -> Self {
        NetworkConfig {
            bandwidth_bps: 1_500_000,
            processing_delay: SimDuration::ZERO,
        }
    }

    /// Infinite-bandwidth control-plane profile: propagation latency only.
    ///
    /// The anonymity experiments (Figs 2–5) count *which* nodes see what,
    /// not transfer seconds; running them without the bandwidth model keeps
    /// them fast while using the identical code paths.
    pub fn latency_only() -> Self {
        NetworkConfig {
            bandwidth_bps: u64::MAX,
            processing_delay: SimDuration::ZERO,
        }
    }
}

/// Counters accumulated over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages accepted by [`Network::send`].
    pub messages_sent: u64,
    /// Messages actually delivered to a live endpoint.
    pub messages_delivered: u64,
    /// Messages dropped (dead sender or dead receiver).
    pub messages_dropped: u64,
    /// Total bytes accepted for transmission.
    pub bytes_sent: u64,
}

enum Pending<M> {
    Message {
        src: EndpointId,
        dst: EndpointId,
        bytes: u64,
        sent_at: SimTime,
        payload: M,
    },
    Timer {
        token: TimerToken,
        scheduled: SimTime,
    },
    /// A scheduled crash/restart from the installed [`FaultPlan`];
    /// processed inside the kernel, never surfaced as an [`Event`].
    Fault {
        endpoint: EndpointId,
        action: FaultAction,
    },
}

/// The event budget of [`Network::run_until_quiet_bounded`] ran out before
/// the simulation quiesced — the drain is spinning (e.g. a duplication
/// storm or a reply loop) rather than converging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Livelock {
    /// Events handed to the callback before the budget was exhausted.
    pub events_processed: u64,
    /// Virtual time when the budget ran out. Together with
    /// `events_processed` this makes a chaos-test failure diagnosable from
    /// the error alone — no journal replay needed to see how far the
    /// simulation got before it started spinning.
    pub at: SimTime,
}

impl std::fmt::Display for Livelock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event budget exhausted after {} events at virtual time {} without quiescing",
            self.events_processed, self.at
        )
    }
}

impl std::error::Error for Livelock {}

/// Cached instrument handles so the hot send/deliver path records without
/// touching the registry's name map.
struct NetInstruments {
    registry: Registry,
    queue_delay_us: Arc<Histogram>,
    propagation_us: Arc<Histogram>,
    timer_lag_us: Arc<Histogram>,
    dropped: Arc<Counter>,
    bad_endpoint: Arc<Counter>,
    fault_losses: Arc<Counter>,
    fault_dups: Arc<Counter>,
    fault_partition_drops: Arc<Counter>,
    fault_crashes: Arc<Counter>,
    fault_restarts: Arc<Counter>,
    fault_delay_us: Arc<Histogram>,
}

impl NetInstruments {
    fn new(registry: Registry) -> Self {
        NetInstruments {
            queue_delay_us: registry.histogram("netsim.queue_delay_us"),
            propagation_us: registry.histogram("netsim.propagation_us"),
            timer_lag_us: registry.histogram("netsim.timer_lag_us"),
            dropped: registry.counter("netsim.messages_dropped"),
            bad_endpoint: registry.counter("netsim.bad_endpoint"),
            fault_losses: registry.counter("netsim.fault.losses"),
            fault_dups: registry.counter("netsim.fault.dups"),
            fault_partition_drops: registry.counter("netsim.fault.partition_drops"),
            fault_crashes: registry.counter("netsim.fault.crashes"),
            fault_restarts: registry.counter("netsim.fault.restarts"),
            fault_delay_us: registry.histogram("netsim.fault.delay_us"),
            registry,
        }
    }
}

/// A simulated network of endpoints exchanging messages of type `M`.
///
/// Single-threaded and pull-based: every call to [`Network::next_event`]
/// advances virtual time to the next scheduled occurrence and returns it.
///
/// Events live in a [`CalendarQueue`]; same-instant events pop in schedule
/// (FIFO) order under the queue's monotone sequence numbers — see the
/// ordering invariant in [`crate::sched`]. For the many-core variant see
/// [`crate::shard::ShardedNetwork`].
pub struct Network<M, L: LatencyModel = crate::latency::UniformLatency> {
    config: NetworkConfig,
    latency: L,
    now: SimTime,
    queue: CalendarQueue<Pending<M>>,
    nics: Vec<Nic>,
    alive: Vec<bool>,
    stats: TrafficStats,
    instruments: NetInstruments,
    faults: Option<FaultPlan>,
}

impl<M, L: LatencyModel> Network<M, L> {
    /// A new, empty network recording into its own private metrics
    /// registry (share one across subsystems with [`Network::use_metrics`]).
    pub fn new(config: NetworkConfig, latency: L) -> Self {
        Network {
            config,
            latency,
            now: SimTime::ZERO,
            queue: CalendarQueue::new(),
            nics: Vec::new(),
            alive: Vec::new(),
            stats: TrafficStats::default(),
            instruments: NetInstruments::new(Registry::new()),
            faults: None,
        }
    }

    /// Attach a fault-injection plan: its crash/restart schedule enters the
    /// event heap now (instants already in the past are clamped to `now`),
    /// and its probabilistic knobs apply to every subsequent transmission.
    /// Installing a second plan replaces the knobs and *adds* the new
    /// schedule.
    pub fn install_faults(&mut self, mut plan: FaultPlan) {
        for f in plan.take_schedule() {
            let at = f.at.max(self.now);
            self.push(
                at,
                Pending::Fault {
                    endpoint: f.endpoint,
                    action: f.action,
                },
            );
        }
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Install (or replace) a named bidirectional partition between
    /// `group_a` and `group_b`: until [`Network::heal`] removes it, every
    /// message crossing the cut is dropped — whether it is sent or would
    /// arrive while the cut is active. Installs a passive [`FaultPlan`]
    /// (all probabilistic knobs off) when none is attached yet.
    pub fn partition(&mut self, name: &str, group_a: &[EndpointId], group_b: &[EndpointId]) {
        self.faults
            .get_or_insert_with(|| FaultPlan::new(0))
            .partition(name, group_a, group_b);
        self.instruments.registry.emit(
            self.now.as_micros(),
            "netsim.partition",
            format!("{name}: {} vs {} endpoints", group_a.len(), group_b.len()),
        );
    }

    /// Heal the named partition. Returns whether it existed.
    pub fn heal(&mut self, name: &str) -> bool {
        let healed = self.faults.as_mut().is_some_and(|p| p.heal(name));
        if healed {
            self.instruments
                .registry
                .emit(self.now.as_micros(), "netsim.heal", name.to_string());
        }
        healed
    }

    /// Record into `registry` from now on (earlier samples stay in the old
    /// registry). Lets one registry aggregate the whole simulation stack.
    pub fn use_metrics(&mut self, registry: Registry) {
        self.instruments = NetInstruments::new(registry);
    }

    /// The metrics registry this network records into.
    pub fn metrics(&self) -> &Registry {
        &self.instruments.registry
    }

    /// Attach a new, live endpoint.
    pub fn add_endpoint(&mut self) -> EndpointId {
        let id =
            EndpointId::from_index(self.nics.len()).expect("more than u32::MAX endpoints attached");
        self.nics.push(Nic::new(self.config.bandwidth_bps));
        self.alive.push(true);
        self.latency.on_endpoint_added(id);
        id
    }

    /// Number of endpoints ever attached (dead ones included).
    pub fn endpoint_count(&self) -> usize {
        self.nics.len()
    }

    /// True when `id` belongs to this network instance. An id minted by
    /// *another* `Network` (or a stale index) is counted and journaled as
    /// `netsim.bad_endpoint` instead of panicking with an opaque
    /// out-of-bounds index.
    fn known_endpoint(&self, id: EndpointId, op: &str) -> bool {
        if id.index() < self.alive.len() {
            return true;
        }
        self.instruments.bad_endpoint.inc();
        self.instruments.registry.emit(
            self.now.as_micros(),
            "netsim.bad_endpoint",
            format!("{op} on unknown endpoint {}", id.index()),
        );
        false
    }

    /// Whether the endpoint is currently live. An endpoint from another
    /// network instance is reported dead (and journaled, see
    /// [`Network::known_endpoint`]).
    pub fn is_alive(&self, id: EndpointId) -> bool {
        self.known_endpoint(id, "is_alive") && self.alive[id.index()]
    }

    /// Kill an endpoint: it stops sending, and anything in flight to it is
    /// silently dropped on arrival (fail-stop, like the paper's node
    /// failures). Foreign endpoints are journaled and ignored.
    pub fn kill(&mut self, id: EndpointId) {
        if self.known_endpoint(id, "kill") {
            self.alive[id.index()] = false;
            self.nics[id.index()].reset(self.now);
        }
    }

    /// Revive a previously killed endpoint (a rejoining node; note that in
    /// the overlay a rejoin is a *new* node — the overlay layer decides).
    /// Foreign endpoints are journaled and ignored.
    pub fn revive(&mut self, id: EndpointId) {
        if self.known_endpoint(id, "revive") {
            self.alive[id.index()] = true;
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Cumulative traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The propagation delay the latency model assigns to `(a, b)`.
    pub fn link_delay(&self, a: EndpointId, b: EndpointId) -> SimDuration {
        self.latency.delay(a, b)
    }

    /// Queue `payload` from `src` to `dst`. Returns the scheduled delivery
    /// instant, or `None` if the sender is dead (nothing is sent).
    ///
    /// Delivery = serialization on `src`'s uplink (FIFO behind earlier
    /// sends) + propagation delay + receiver processing delay. Whether the
    /// receiver is alive is checked at *delivery* time, so a message can be
    /// outrun by a failure, exactly the race TAP's replica failover handles.
    ///
    /// With a [`FaultPlan`] installed the transmission may additionally be
    /// lost, duplicated, delayed, or severed by a partition — and the
    /// *sender cannot tell*: the returned instant is the estimate a real
    /// sender would have, whether or not the message survives. Recovering
    /// from silence is the caller's job (timers + retries).
    pub fn send(
        &mut self,
        src: EndpointId,
        dst: EndpointId,
        bytes: u64,
        payload: M,
    ) -> Option<SimTime>
    where
        M: Clone,
    {
        if !self.alive[src.index()] {
            self.stats.messages_dropped += 1;
            self.instruments.dropped.inc();
            self.instruments.registry.emit(
                self.now.as_micros(),
                "netsim.drop",
                format!("dead sender {}", src.index()),
            );
            return None;
        }
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes;
        let tx_done = self.nics[src.index()].transmit(self.now, bytes);
        let propagation = self.latency.delay(src, dst);
        // Queueing = FIFO wait behind earlier sends plus serialization.
        self.instruments
            .queue_delay_us
            .record((tx_done - self.now).as_micros());
        self.instruments
            .propagation_us
            .record(propagation.as_micros());
        let mut arrive = tx_done + propagation + self.config.processing_delay;

        let verdict = self.faults.as_mut().map(|p| p.transmission(src, dst));
        if let Some(v) = verdict {
            if let Some(cut) = v.partitioned {
                self.stats.messages_dropped += 1;
                self.instruments.fault_partition_drops.inc();
                self.instruments.registry.emit(
                    self.now.as_micros(),
                    "netsim.fault.partition_drop",
                    format!("{} -> {} severed by {cut}", src.index(), dst.index()),
                );
                return Some(arrive);
            }
            if v.lost {
                self.stats.messages_dropped += 1;
                self.instruments.fault_losses.inc();
                self.instruments.registry.emit(
                    self.now.as_micros(),
                    "netsim.fault.loss",
                    format!("{} -> {}", src.index(), dst.index()),
                );
                return Some(arrive);
            }
            if v.extra_delay > SimDuration::ZERO {
                self.instruments
                    .fault_delay_us
                    .record(v.extra_delay.as_micros());
                arrive += v.extra_delay;
            }
            if v.duplicated {
                self.instruments.fault_dups.inc();
                self.push(
                    arrive,
                    Pending::Message {
                        src,
                        dst,
                        bytes,
                        sent_at: self.now,
                        payload: payload.clone(),
                    },
                );
            }
        }
        self.push(
            arrive,
            Pending::Message {
                src,
                dst,
                bytes,
                sent_at: self.now,
                payload,
            },
        );
        Some(arrive)
    }

    /// Schedule a timer `after` from now carrying `token`.
    pub fn set_timer(&mut self, after: SimDuration, token: TimerToken) -> SimTime {
        self.arm_timer(after, token).fires_at()
    }

    /// [`Network::set_timer`], returning a handle that can later cancel the
    /// timer ([`Network::cancel_timer`]) — the cheap way to retire watchdog
    /// timers whose transfer already completed, instead of letting them
    /// fire and filtering stale tokens at delivery.
    pub fn arm_timer(&mut self, after: SimDuration, token: TimerToken) -> TimerHandle {
        let at = self.now + after;
        let inner = self.queue.push(
            at,
            Pending::Timer {
                token,
                scheduled: at,
            },
        );
        TimerHandle { inner, at }
    }

    /// Remove a pending timer before it fires. Returns whether the timer
    /// was still pending (a handle whose timer already fired or was
    /// cancelled reports `false`).
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.queue.cancel(handle.inner).is_some()
    }

    fn push(&mut self, at: SimTime, pending: Pending<M>) {
        self.queue.push(at, pending);
    }

    /// The time of the next scheduled occurrence, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|k| k.at)
    }

    /// Pending occurrences (messages in flight, armed timers, scheduled
    /// faults).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Advance to and return the next event. Messages whose destination has
    /// died in the meantime are dropped transparently (time still advances
    /// past them). Returns `None` when the simulation has quiesced.
    pub fn next_event(&mut self) -> Option<Event<M>> {
        while let Some((key, pending)) = self.queue.pop() {
            let entry_at = key.at;
            debug_assert!(entry_at >= self.now, "time must be monotone");
            self.now = entry_at;
            match pending {
                Pending::Timer { token, scheduled } => {
                    // In virtual time the lag is zero by construction; the
                    // histogram pins that invariant and counts fires, and
                    // any nonzero drift is journaled loudly.
                    let lag = (entry_at - scheduled).as_micros();
                    self.instruments.timer_lag_us.record(lag);
                    if lag != 0 {
                        self.instruments.registry.emit(
                            entry_at.as_micros(),
                            "netsim.timer_drift",
                            format!("token {} fired {lag}us late", token.0),
                        );
                    }
                    return Some(Event::Timer {
                        token,
                        at: entry_at,
                    });
                }
                Pending::Message {
                    src,
                    dst,
                    bytes,
                    sent_at,
                    payload,
                } => {
                    if !self.alive[dst.index()] {
                        self.stats.messages_dropped += 1;
                        self.instruments.dropped.inc();
                        self.instruments.registry.emit(
                            entry_at.as_micros(),
                            "netsim.drop",
                            format!("dead receiver {}", dst.index()),
                        );
                        continue;
                    }
                    // A partition installed *after* the send still severs
                    // the message: the cut is checked again at arrival, so
                    // in-flight traffic cannot tunnel through it.
                    let cut = self
                        .faults
                        .as_ref()
                        .and_then(|p| p.severed_by(src, dst))
                        .map(String::from);
                    if let Some(cut) = cut {
                        self.stats.messages_dropped += 1;
                        self.instruments.fault_partition_drops.inc();
                        self.instruments.registry.emit(
                            entry_at.as_micros(),
                            "netsim.fault.partition_drop",
                            format!(
                                "{} -> {} severed by {cut} at arrival",
                                src.index(),
                                dst.index()
                            ),
                        );
                        continue;
                    }
                    self.stats.messages_delivered += 1;
                    return Some(Event::Message(DeliveredMessage {
                        src,
                        dst,
                        bytes,
                        sent_at,
                        delivered_at: entry_at,
                        payload,
                    }));
                }
                Pending::Fault { endpoint, action } => {
                    if !self.known_endpoint(endpoint, "scheduled fault") {
                        continue;
                    }
                    match action {
                        FaultAction::Crash => {
                            self.alive[endpoint.index()] = false;
                            self.nics[endpoint.index()].reset(self.now);
                            self.instruments.fault_crashes.inc();
                            self.instruments.registry.emit(
                                entry_at.as_micros(),
                                "netsim.fault.crash",
                                format!("endpoint {}", endpoint.index()),
                            );
                        }
                        FaultAction::Restart => {
                            self.alive[endpoint.index()] = true;
                            self.instruments.fault_restarts.inc();
                            self.instruments.registry.emit(
                                entry_at.as_micros(),
                                "netsim.fault.restart",
                                format!("endpoint {}", endpoint.index()),
                            );
                        }
                    }
                    continue;
                }
            }
        }
        None
    }

    /// Drain events until quiescence, calling `f` for each. The closure may
    /// send further messages through the `&mut Network` it is given.
    pub fn run_until_quiet(&mut self, mut f: impl FnMut(&mut Self, Event<M>)) {
        while let Some(ev) = self.next_event() {
            f(self, ev);
        }
    }

    /// [`Network::run_until_quiet`], but abort with [`Livelock`] once
    /// `max_events` events have been handed to `f` without quiescing. Use
    /// under fault injection: a duplication storm or a retry loop that
    /// answers every timeout with another send would otherwise spin the
    /// drain forever. On success returns how many events were processed.
    pub fn run_until_quiet_bounded(
        &mut self,
        max_events: u64,
        mut f: impl FnMut(&mut Self, Event<M>),
    ) -> Result<u64, Livelock> {
        let mut processed = 0u64;
        while let Some(ev) = self.next_event() {
            // Every popped event is handed to `f` — including the one that
            // exhausts the budget. Aborting *before* the callback would
            // silently discard a popped event and leave the network
            // inconsistent for callers that inspect or resume after a
            // livelock; instead the budget check runs after, and remaining
            // work stays queued.
            processed += 1;
            f(self, ev);
            if processed >= max_events && self.queue.peek().is_some() {
                self.instruments.registry.emit(
                    self.now.as_micros(),
                    "netsim.livelock",
                    format!("budget of {max_events} events exhausted"),
                );
                return Err(Livelock {
                    events_processed: processed,
                    at: self.now,
                });
            }
        }
        Ok(processed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::UniformLatency;

    type Net = Network<u32, UniformLatency>;

    fn net() -> Net {
        Network::new(NetworkConfig::paper_defaults(), UniformLatency::paper(1))
    }

    #[test]
    fn basic_delivery_and_timing() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        let expect = n.send(a, b, 1_500, 42).unwrap();
        match n.next_event().unwrap() {
            Event::Message(m) => {
                assert_eq!((m.src, m.dst, m.payload), (a, b, 42));
                assert_eq!(m.delivered_at, expect);
                // 1500 bytes at 1.5Mb/s = 8ms serialization, plus 1-230ms.
                let total = m.delivered_at - m.sent_at;
                assert!(total >= SimDuration::from_millis(9));
                assert!(total <= SimDuration::from_millis(238));
                let prop = n.link_delay(a, b);
                assert_eq!(total, SimDuration::from_millis(8) + prop);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(n.next_event().is_none(), "quiescent after one delivery");
    }

    #[test]
    fn foreign_endpoints_are_journaled_not_panics() {
        let mut other = net();
        for _ in 0..5 {
            other.add_endpoint();
        }
        let foreign = other.add_endpoint(); // index 5 — unknown to `n`

        let mut n = net();
        let journal = n.metrics().install_journal(8);
        let a = n.add_endpoint();
        assert!(n.is_alive(a));

        // A foreign id must not panic: reported dead, kill/revive ignored.
        assert!(!n.is_alive(foreign));
        n.kill(foreign);
        n.revive(foreign);
        assert!(n.is_alive(a), "known endpoints unaffected");

        let report = n.metrics().snapshot();
        assert_eq!(report.counter("netsim.bad_endpoint"), 3);
        let events = journal.snapshot();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.kind == "netsim.bad_endpoint"));
        assert!(events[0].detail.contains("is_alive"));
        assert!(events[1].detail.contains("kill"));
        assert!(events[2].detail.contains("revive"));
    }

    #[test]
    fn fifo_uplink_orders_same_destination_traffic() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.send(a, b, 150_000, 1); // 0.8s serialization
        n.send(a, b, 150_000, 2); // finishes at 1.6s
        let t1 = match n.next_event().unwrap() {
            Event::Message(m) => {
                assert_eq!(m.payload, 1);
                m.delivered_at
            }
            _ => unreachable!(),
        };
        let t2 = match n.next_event().unwrap() {
            Event::Message(m) => {
                assert_eq!(m.payload, 2);
                m.delivered_at
            }
            _ => unreachable!(),
        };
        assert_eq!(t2 - t1, SimDuration::from_micros(800_000));
    }

    #[test]
    fn dead_sender_sends_nothing() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.kill(a);
        assert!(n.send(a, b, 10, 1).is_none());
        assert!(n.next_event().is_none());
        assert_eq!(n.stats().messages_dropped, 1);
        assert_eq!(n.stats().messages_sent, 0);
    }

    #[test]
    fn death_races_inflight_message() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.send(a, b, 10, 7);
        n.kill(b); // dies before delivery
        assert!(n.next_event().is_none(), "message dropped at arrival");
        assert_eq!(n.stats().messages_dropped, 1);
    }

    #[test]
    fn revive_allows_future_traffic_but_not_inflight() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.send(a, b, 10, 1);
        n.kill(b);
        assert!(n.next_event().is_none());
        n.revive(b);
        n.send(a, b, 10, 2);
        match n.next_event().unwrap() {
            Event::Message(m) => assert_eq!(m.payload, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn timers_interleave_with_messages_in_time_order() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.set_timer(SimDuration::from_millis(1), TimerToken(99));
        n.send(a, b, 0, 5); // zero bytes: pure propagation (>= 1ms)
        let first = n.next_event().unwrap();
        match first {
            Event::Timer { token, at } => {
                assert_eq!(token, TimerToken(99));
                assert_eq!(at, SimTime::from_micros(1_000));
            }
            Event::Message(_) => {
                // Propagation could legitimately be exactly 1ms; then the
                // message (seq 1) comes after the timer (seq 0) anyway.
                panic!("timer must fire first at equal-or-earlier time");
            }
        }
        assert!(matches!(n.next_event(), Some(Event::Message(_))));
    }

    #[test]
    fn deterministic_event_order_on_ties() {
        // Two zero-latency-path timers at the same instant pop FIFO.
        let mut n = net();
        n.set_timer(SimDuration::from_millis(5), TimerToken(1));
        n.set_timer(SimDuration::from_millis(5), TimerToken(2));
        match (n.next_event().unwrap(), n.next_event().unwrap()) {
            (Event::Timer { token: t1, .. }, Event::Timer { token: t2, .. }) => {
                assert_eq!((t1, t2), (TimerToken(1), TimerToken(2)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn time_is_monotone_across_many_events() {
        let mut n = net();
        let eps: Vec<_> = (0..10).map(|_| n.add_endpoint()).collect();
        for i in 0..10usize {
            for j in 0..10usize {
                if i != j {
                    n.send(eps[i], eps[j], (i * 100 + j) as u64, 0);
                }
            }
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some(ev) = n.next_event() {
            if let Event::Message(m) = ev {
                assert!(m.delivered_at >= last);
                last = m.delivered_at;
                count += 1;
            }
        }
        assert_eq!(count, 90);
        assert_eq!(n.stats().messages_delivered, 90);
    }

    #[test]
    fn same_pair_traffic_is_fifo() {
        // Messages between one (src, dst) pair always arrive in send
        // order: serialization is FIFO and the propagation delay per pair
        // is constant.
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        for i in 0..50u32 {
            n.send(a, b, (i as u64 % 7) * 100, i);
        }
        let mut expected = 0;
        while let Some(Event::Message(m)) = n.next_event() {
            assert_eq!(m.payload, expected);
            expected += 1;
        }
        assert_eq!(expected, 50);
    }

    #[test]
    fn stats_account_for_every_message() {
        let mut n = net();
        let eps: Vec<_> = (0..6).map(|_| n.add_endpoint()).collect();
        n.kill(eps[5]);
        let mut sent = 0u64;
        let mut to_dead = 0u64;
        for i in 0..60u32 {
            let src = eps[(i % 5) as usize];
            let dst = eps[((i as usize) * 3 + 1) % 6];
            if src != dst && n.send(src, dst, 10, i).is_some() {
                sent += 1;
                if dst == eps[5] {
                    to_dead += 1;
                }
            }
        }
        while n.next_event().is_some() {}
        let s = n.stats();
        assert_eq!(s.messages_sent, sent);
        assert_eq!(s.messages_delivered, sent - to_dead);
        assert_eq!(s.messages_dropped, to_dead);
    }

    #[test]
    fn metrics_capture_delays_and_drops() {
        let mut n = net();
        let registry = tap_metrics::Registry::new();
        registry.install_journal(16);
        n.use_metrics(registry.clone());
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.send(a, b, 1_500, 1); // 8ms serialization
        n.send(a, b, 1_500, 2); // queues behind the first: 16ms from now
        n.set_timer(SimDuration::from_millis(1), TimerToken(7));
        n.kill(b);
        while n.next_event().is_some() {}

        let report = registry.snapshot();
        let queue = report.histogram("netsim.queue_delay_us").unwrap();
        assert_eq!(queue.count, 2);
        assert_eq!(queue.min, 8_000);
        assert_eq!(queue.max, 16_000);
        let prop = report.histogram("netsim.propagation_us").unwrap();
        assert_eq!(prop.count, 2);
        assert_eq!(prop.min, prop.max, "same pair, same propagation");
        let lag = report.histogram("netsim.timer_lag_us").unwrap();
        assert_eq!((lag.count, lag.max), (1, 0), "virtual timers never drift");
        assert_eq!(report.counter("netsim.messages_dropped"), 2);
        assert_eq!(report.events.len(), 2, "one journal entry per drop");
        assert!(report.events.iter().all(|e| e.kind == "netsim.drop"));
        // The network's own traffic stats and the registry must agree.
        assert_eq!(
            n.stats().messages_dropped,
            report.counter("netsim.messages_dropped")
        );
    }

    fn count_messages(n: &mut Net) -> u64 {
        let mut delivered = 0;
        while let Some(ev) = n.next_event() {
            if matches!(ev, Event::Message(_)) {
                delivered += 1;
            }
        }
        delivered
    }

    #[test]
    fn lossy_plan_drops_but_sender_cannot_tell() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.install_faults(FaultPlan::new(11).with_loss(500));
        let mut accepted = 0u64;
        for i in 0..200u32 {
            // Loss is invisible at the send site: every live send returns
            // a scheduled arrival.
            assert!(n.send(a, b, 10, i).is_some());
            accepted += 1;
        }
        let delivered = count_messages(&mut n);
        assert!(delivered < accepted, "some messages must be lost");
        assert!(delivered > 0, "50% loss should not kill everything");
        let report = n.metrics().snapshot();
        assert_eq!(report.counter("netsim.fault.losses"), accepted - delivered);
        assert_eq!(n.stats().messages_dropped, accepted - delivered);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.install_faults(FaultPlan::new(3).with_duplication(1000));
        n.send(a, b, 10, 7);
        assert_eq!(count_messages(&mut n), 2);
        assert_eq!(n.metrics().snapshot().counter("netsim.fault.dups"), 1);
    }

    #[test]
    fn partitions_sever_in_flight_traffic_until_healed() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        let c = n.add_endpoint();
        n.send(a, b, 10, 1); // in flight before the cut
        n.partition("cut", &[a], &[b]);
        n.send(a, b, 10, 2); // sent across the active cut
        n.send(a, c, 10, 3); // unaffected pair
        let mut got = Vec::new();
        n.run_until_quiet(|_, ev| {
            if let Event::Message(m) = ev {
                got.push(m.payload);
            }
        });
        assert_eq!(got, vec![3], "both a->b copies severed");
        let report = n.metrics().snapshot();
        assert_eq!(report.counter("netsim.fault.partition_drops"), 2);

        assert!(n.heal("cut"));
        assert!(!n.heal("cut"), "second heal is a no-op");
        n.send(a, b, 10, 4);
        assert_eq!(count_messages(&mut n), 1, "healed link carries traffic");
    }

    #[test]
    fn scheduled_crash_restart_toggles_liveness_silently() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.install_faults(
            FaultPlan::new(0)
                .with_crash(b, SimTime::from_micros(1))
                .with_restart(b, SimTime::from_micros(2_000_000)),
        );
        // Arrives well before the restart: dropped at the dead receiver.
        n.send(a, b, 10, 1);
        let mut seen = Vec::new();
        n.run_until_quiet(|_, ev| {
            if let Event::Message(m) = ev {
                seen.push(m.payload);
            }
        });
        assert!(seen.is_empty(), "first message hit the crashed endpoint");
        // Both schedule entries were consumed internally; the restart at
        // t=2s has fired, so a resend now goes through.
        assert!(n.now() >= SimTime::from_micros(2_000_000));
        n.send(a, b, 10, 2);
        n.run_until_quiet(|_, ev| {
            if let Event::Message(m) = ev {
                seen.push(m.payload);
            }
        });
        assert_eq!(seen, vec![2]);
        let report = n.metrics().snapshot();
        assert_eq!(report.counter("netsim.fault.crashes"), 1);
        assert_eq!(report.counter("netsim.fault.restarts"), 1);
    }

    #[test]
    fn jitter_shifts_arrival_and_records_histogram() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        let clean = n.send(a, b, 10, 0).unwrap();
        while n.next_event().is_some() {}
        n.install_faults(FaultPlan::new(5).with_jitter(SimDuration::from_millis(50)));
        let mut max_seen = SimTime::ZERO;
        for i in 0..50u32 {
            // Zero-byte messages: no FIFO queueing, so each arrival is
            // propagation + jitter only.
            let at = n.send(a, b, 0, i).unwrap();
            max_seen = max_seen.max(at);
        }
        while n.next_event().is_some() {}
        let prop = n.link_delay(a, b);
        assert!(clean >= SimTime::ZERO + prop);
        let report = n.metrics().snapshot();
        let h = report.histogram("netsim.fault.delay_us").unwrap();
        assert!(h.count > 0, "jitter draws recorded");
        assert!(h.max <= 50_000, "bounded by the configured maximum");
    }

    #[test]
    fn bounded_drain_reports_livelock() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        let journal = n.metrics().install_journal(8);
        n.send(a, b, 10, 0);
        // Pathological handler: answers every delivery with another send.
        let err = n
            .run_until_quiet_bounded(100, |net, ev| {
                if let Event::Message(m) = ev {
                    net.send(m.dst, m.src, 10, m.payload);
                }
            })
            .unwrap_err();
        assert_eq!(err.events_processed, 100);
        assert!(err.at > SimTime::ZERO, "livelock carries the virtual time");
        assert!(err.to_string().contains("100 events"));
        assert!(
            err.to_string().contains(&format!("{}", err.at)),
            "virtual time appears in the message: {err}"
        );
        let events = journal.snapshot();
        assert!(events.iter().any(|e| e.kind == "netsim.livelock"));

        // A well-behaved drain reports its event count.
        let mut quiet = net();
        let a = quiet.add_endpoint();
        let b = quiet.add_endpoint();
        quiet.send(a, b, 10, 1);
        assert_eq!(quiet.run_until_quiet_bounded(100, |_, _| {}), Ok(1));
    }

    #[test]
    fn livelock_loses_no_events() {
        // Regression: the budget-exceeding event used to be popped and
        // discarded on the Err path. Every scheduled timer must reach the
        // callback exactly once — across the Livelock boundary.
        let mut n = net();
        for i in 0..10u64 {
            n.set_timer(SimDuration::from_millis(i + 1), TimerToken(i));
        }
        let mut seen = Vec::new();
        let err = n
            .run_until_quiet_bounded(4, |_, ev| {
                if let Event::Timer { token, .. } = ev {
                    seen.push(token.0);
                }
            })
            .unwrap_err();
        assert_eq!(err.events_processed, 4);
        assert_eq!(seen, vec![0, 1, 2, 3], "budgeted events all reached f");
        assert_eq!(n.pending_events(), 6, "the rest stay queued, none lost");
        // Resuming the drain picks up exactly where the budget ran out.
        assert_eq!(
            n.run_until_quiet_bounded(100, |_, ev| {
                if let Event::Timer { token, .. } = ev {
                    seen.push(token.0);
                }
            }),
            Ok(6)
        );
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn exact_budget_with_quiescence_is_not_a_livelock() {
        // Spending the whole budget is fine if nothing remains afterwards.
        let mut n = net();
        n.set_timer(SimDuration::from_millis(1), TimerToken(0));
        n.set_timer(SimDuration::from_millis(2), TimerToken(1));
        assert_eq!(n.run_until_quiet_bounded(2, |_, _| {}), Ok(2));
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let mut n = net();
        let h1 = n.arm_timer(SimDuration::from_millis(1), TimerToken(1));
        let h2 = n.arm_timer(SimDuration::from_millis(2), TimerToken(2));
        assert_eq!(h1.fires_at(), SimTime::from_micros(1_000));
        assert!(n.cancel_timer(h1));
        assert!(!n.cancel_timer(h1), "second cancel reports stale");
        let mut fired = Vec::new();
        n.run_until_quiet(|_, ev| {
            if let Event::Timer { token, .. } = ev {
                fired.push(token.0);
            }
        });
        assert_eq!(fired, vec![2], "only the un-cancelled timer fires");
        assert!(!n.cancel_timer(h2), "cancel after fire reports stale");
    }

    #[test]
    fn run_until_quiet_supports_reentrant_sends() {
        let mut n = net();
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.send(a, b, 10, 3);
        let mut hops = Vec::new();
        n.run_until_quiet(|net, ev| {
            if let Event::Message(m) = ev {
                hops.push(m.payload);
                if m.payload > 0 {
                    net.send(m.dst, m.src, 10, m.payload - 1);
                }
            }
        });
        assert_eq!(hops, vec![3, 2, 1, 0], "ping-pong until counter hits 0");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::latency::UniformLatency;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_all_live_traffic_delivered_in_time_order(
            ops in proptest::collection::vec((0usize..8, 0usize..8, 0u64..5_000), 1..80),
            seed in any::<u64>(),
        ) {
            let mut net: Network<usize, UniformLatency> =
                Network::new(NetworkConfig::paper_defaults(), UniformLatency::paper(seed));
            let eps: Vec<_> = (0..8).map(|_| net.add_endpoint()).collect();
            let mut expected = 0u64;
            for (s, d, bytes) in &ops {
                if s != d {
                    let at = net.send(eps[*s], eps[*d], *bytes, 0).unwrap();
                    prop_assert!(at >= net.now());
                    expected += 1;
                }
            }
            let mut last = SimTime::ZERO;
            let mut delivered = 0u64;
            while let Some(ev) = net.next_event() {
                if let Event::Message(m) = ev {
                    prop_assert!(m.delivered_at >= last, "time went backwards");
                    prop_assert!(m.delivered_at >= m.sent_at);
                    // Lower bound: propagation alone.
                    prop_assert!(
                        m.delivered_at - m.sent_at >= net.link_delay(m.src, m.dst)
                    );
                    last = m.delivered_at;
                    delivered += 1;
                }
            }
            prop_assert_eq!(delivered, expected, "no live message may vanish");
        }

        #[test]
        fn prop_kills_only_drop_their_own_traffic(
            seed in any::<u64>(),
            kill_idx in 0usize..4,
        ) {
            let mut net: Network<u32, UniformLatency> =
                Network::new(NetworkConfig::latency_only(), UniformLatency::paper(seed));
            let eps: Vec<_> = (0..4).map(|_| net.add_endpoint()).collect();
            for i in 0..4usize {
                for j in 0..4usize {
                    if i != j {
                        net.send(eps[i], eps[j], 1, (i * 4 + j) as u32);
                    }
                }
            }
            net.kill(eps[kill_idx]);
            let mut got = Vec::new();
            while let Some(ev) = net.next_event() {
                if let Event::Message(m) = ev {
                    prop_assert_ne!(m.dst, eps[kill_idx], "dead endpoint received");
                    got.push(m.payload);
                }
            }
            // Exactly the 9 messages not addressed to the victim arrive.
            prop_assert_eq!(got.len(), 9);
        }
    }
}
