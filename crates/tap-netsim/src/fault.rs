//! Seed-deterministic fault injection for the event kernel.
//!
//! A [`FaultPlan`] attached to a [`Network`](crate::Network) via
//! [`Network::install_faults`](crate::Network::install_faults) perturbs the
//! otherwise perfectly reliable emulation with the failure modes a real
//! deployment sees:
//!
//! * **probabilistic loss** — a transmitted message silently vanishes (the
//!   sender still pays NIC serialization, like a dropped UDP datagram);
//! * **duplication** — a message is delivered twice;
//! * **delay jitter and spikes** — extra arrival delay, drawn uniformly up
//!   to a bound, plus rarer fixed-size spikes (a congested queue);
//! * **named bidirectional partitions** — messages crossing the cut drop,
//!   at send *and* at delivery, until the partition is healed;
//! * **scheduled crash/restart** — endpoints go down and come back at
//!   planned virtual times, without the caller driving `kill`/`revive`.
//!
//! The crash/restart schedule and every delayed redelivery ride the
//! kernel's [`CalendarQueue`](crate::sched::CalendarQueue) like any other
//! event, so fault timing obeys the same `(timestamp, sequence)` total
//! order — including the FIFO-at-equal-timestamps invariant — as normal
//! traffic.
//!
//! Every probabilistic decision is drawn from the plan's **own** RNG
//! substream (a splitmix64 counter stream over the plan's seed — the same
//! discipline the simulation harness uses for trial substreams), and the
//! kernel consumes it in event order. Faulted runs are therefore exactly as
//! reproducible as clean ones: same seed, same schedule, same bytes out,
//! at any worker-thread count above the kernel.
//!
//! Probabilities are integer **permille** (0–1000): the plan stays `Eq`-
//! comparable and CSV-stable with no floating point anywhere.

use std::collections::{BTreeMap, HashSet};

use crate::latency::splitmix64;
use crate::network::EndpointId;
use crate::time::{SimDuration, SimTime};

/// What a scheduled fault does to its endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The endpoint fails: in-flight traffic to it is dropped on arrival
    /// and its NIC queue is cleared.
    Crash,
    /// The endpoint comes back up (traffic dropped while down stays lost).
    Restart,
}

/// One entry of a crash/restart schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// When the fault fires (virtual time).
    pub at: SimTime,
    /// The endpoint it applies to.
    pub endpoint: EndpointId,
    /// Crash or restart.
    pub action: FaultAction,
}

/// A named bidirectional cut between two endpoint groups.
#[derive(Debug, Clone, Default)]
struct Partition {
    a: HashSet<u32>,
    b: HashSet<u32>,
}

impl Partition {
    fn severs(&self, x: EndpointId, y: EndpointId) -> bool {
        let (x, y) = (x.index() as u32, y.index() as u32);
        (self.a.contains(&x) && self.b.contains(&y)) || (self.a.contains(&y) && self.b.contains(&x))
    }
}

/// The kernel's per-transmission fault verdict (internal).
#[derive(Debug, Clone, Default)]
pub(crate) struct TxVerdict {
    /// The message crosses an active partition: drop, naming the cut.
    pub partitioned: Option<String>,
    /// The message is lost outright.
    pub lost: bool,
    /// The message is delivered twice.
    pub duplicated: bool,
    /// Extra arrival delay (jitter + spike).
    pub extra_delay: SimDuration,
}

/// Deterministic fault-injection configuration and state.
///
/// Build one with the `with_*` combinators, then hand it to
/// [`Network::install_faults`](crate::Network::install_faults). All knobs
/// default to off, so `FaultPlan::new(seed)` alone changes nothing.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// splitmix64 counter state; advanced once per probabilistic draw.
    state: u64,
    loss_permille: u32,
    dup_permille: u32,
    jitter_max: SimDuration,
    spike_permille: u32,
    spike_delay: SimDuration,
    /// Named cuts, ordered for deterministic first-match journaling.
    partitions: BTreeMap<String, Partition>,
    schedule: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// A plan with every fault disabled, drawing from `seed`'s substream.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            state: splitmix64(seed ^ 0xFA17_FA17_FA17_FA17),
            loss_permille: 0,
            dup_permille: 0,
            jitter_max: SimDuration::ZERO,
            spike_permille: 0,
            spike_delay: SimDuration::ZERO,
            partitions: BTreeMap::new(),
            schedule: Vec::new(),
        }
    }

    /// Lose each transmitted message with probability `permille`/1000.
    pub fn with_loss(mut self, permille: u32) -> Self {
        assert!(permille <= 1000, "loss probability is permille (0..=1000)");
        self.loss_permille = permille;
        self
    }

    /// Deliver each surviving message twice with probability
    /// `permille`/1000.
    pub fn with_duplication(mut self, permille: u32) -> Self {
        assert!(permille <= 1000, "dup probability is permille (0..=1000)");
        self.dup_permille = permille;
        self
    }

    /// Add uniform extra delay in `[0, max]` to every delivery.
    pub fn with_jitter(mut self, max: SimDuration) -> Self {
        self.jitter_max = max;
        self
    }

    /// With probability `permille`/1000, add a further fixed `delay` spike.
    pub fn with_spike(mut self, permille: u32, delay: SimDuration) -> Self {
        assert!(permille <= 1000, "spike probability is permille (0..=1000)");
        self.spike_permille = permille;
        self.spike_delay = delay;
        self
    }

    /// Schedule `endpoint` to crash at virtual time `at`.
    pub fn with_crash(mut self, endpoint: EndpointId, at: SimTime) -> Self {
        self.schedule.push(ScheduledFault {
            at,
            endpoint,
            action: FaultAction::Crash,
        });
        self
    }

    /// Schedule `endpoint` to come back up at virtual time `at`.
    pub fn with_restart(mut self, endpoint: EndpointId, at: SimTime) -> Self {
        self.schedule.push(ScheduledFault {
            at,
            endpoint,
            action: FaultAction::Restart,
        });
        self
    }

    /// The crash/restart schedule (drained by the kernel at install time).
    pub(crate) fn take_schedule(&mut self) -> Vec<ScheduledFault> {
        std::mem::take(&mut self.schedule)
    }

    /// Install (or replace) the named cut severing `group_a` from
    /// `group_b`. Traffic within each group is unaffected.
    pub fn partition(&mut self, name: &str, group_a: &[EndpointId], group_b: &[EndpointId]) {
        let cut = Partition {
            a: group_a.iter().map(|e| e.index() as u32).collect(),
            b: group_b.iter().map(|e| e.index() as u32).collect(),
        };
        self.partitions.insert(name.to_string(), cut);
    }

    /// Heal the named cut. Returns whether it existed.
    pub fn heal(&mut self, name: &str) -> bool {
        self.partitions.remove(name).is_some()
    }

    /// Active partition names, in lexicographic order.
    pub fn active_partitions(&self) -> impl Iterator<Item = &str> {
        self.partitions.keys().map(String::as_str)
    }

    /// The first active cut severing `a` from `b`, if any. No RNG draw.
    pub(crate) fn severed_by(&self, a: EndpointId, b: EndpointId) -> Option<&str> {
        self.partitions
            .iter()
            .find(|(_, p)| p.severs(a, b))
            .map(|(n, _)| n.as_str())
    }

    /// One uniform draw from the plan's substream.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// A Bernoulli draw at `permille`/1000. Draws only when the knob is on,
    /// so disabled faults never perturb the stream.
    fn roll(&mut self, permille: u32) -> bool {
        permille > 0 && self.next_u64() % 1000 < u64::from(permille)
    }

    /// The fault verdict for one transmission `src → dst`. Consumes RNG
    /// draws in a fixed order (loss, duplication, jitter, spike), so the
    /// stream position is a pure function of the transmission sequence.
    pub(crate) fn transmission(&mut self, src: EndpointId, dst: EndpointId) -> TxVerdict {
        if let Some(name) = self.severed_by(src, dst) {
            return TxVerdict {
                partitioned: Some(name.to_string()),
                ..TxVerdict::default()
            };
        }
        let lost = self.roll(self.loss_permille);
        let duplicated = !lost && self.roll(self.dup_permille);
        let mut extra = SimDuration::ZERO;
        if self.jitter_max > SimDuration::ZERO {
            let span = self.jitter_max.as_micros() + 1;
            extra += SimDuration::from_micros(self.next_u64() % span);
        }
        if self.roll(self.spike_permille) {
            extra += self.spike_delay;
        }
        TxVerdict {
            partitioned: None,
            lost,
            duplicated,
            extra_delay: extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: usize) -> EndpointId {
        EndpointId::from_index(i).expect("test index fits u32")
    }

    #[test]
    fn passive_plan_changes_nothing_and_draws_nothing() {
        let mut p = FaultPlan::new(7);
        let before = p.state;
        for i in 0..50 {
            let v = p.transmission(ep(i), ep(i + 1));
            assert!(v.partitioned.is_none());
            assert!(!v.lost && !v.duplicated);
            assert_eq!(v.extra_delay, SimDuration::ZERO);
        }
        assert_eq!(p.state, before, "disabled knobs must not consume draws");
    }

    #[test]
    fn loss_rate_tracks_permille() {
        let mut p = FaultPlan::new(11).with_loss(100);
        let n = 10_000;
        let lost = (0..n).filter(|_| p.transmission(ep(0), ep(1)).lost).count();
        let rate = lost as f64 / n as f64;
        assert!(
            (0.08..0.12).contains(&rate),
            "10% loss knob measured at {rate}"
        );
    }

    #[test]
    fn verdicts_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<(bool, bool, u64)> {
            let mut p = FaultPlan::new(seed)
                .with_loss(200)
                .with_duplication(150)
                .with_jitter(SimDuration::from_millis(30))
                .with_spike(50, SimDuration::from_millis(500));
            (0..200)
                .map(|i| {
                    let v = p.transmission(ep(i % 7), ep((i + 1) % 7));
                    (v.lost, v.duplicated, v.extra_delay.as_micros())
                })
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed, same verdicts");
        assert_ne!(run(42), run(43), "distinct seeds diverge");
    }

    #[test]
    fn partitions_sever_both_directions_until_healed() {
        let mut p = FaultPlan::new(0);
        p.partition("west-east", &[ep(0), ep(1)], &[ep(2)]);
        assert_eq!(p.severed_by(ep(0), ep(2)), Some("west-east"));
        assert_eq!(p.severed_by(ep(2), ep(1)), Some("west-east"));
        assert_eq!(p.severed_by(ep(0), ep(1)), None, "intra-group ok");
        assert_eq!(p.severed_by(ep(2), ep(3)), None, "outsiders ok");
        assert!(p.transmission(ep(0), ep(2)).partitioned.is_some());
        assert!(p.heal("west-east"));
        assert!(!p.heal("west-east"), "already healed");
        assert_eq!(p.severed_by(ep(0), ep(2)), None);
        assert!(p.transmission(ep(0), ep(2)).partitioned.is_none());
    }

    #[test]
    fn jitter_is_bounded_and_spikes_add() {
        let mut p = FaultPlan::new(3).with_jitter(SimDuration::from_millis(10));
        for _ in 0..500 {
            let v = p.transmission(ep(0), ep(1));
            assert!(v.extra_delay <= SimDuration::from_millis(10));
        }
        let mut p = FaultPlan::new(3).with_spike(1000, SimDuration::from_millis(700));
        let v = p.transmission(ep(0), ep(1));
        assert_eq!(v.extra_delay, SimDuration::from_millis(700));
    }

    #[test]
    fn schedule_accumulates_in_order() {
        let mut p = FaultPlan::new(0)
            .with_crash(ep(4), SimTime::from_micros(10))
            .with_restart(ep(4), SimTime::from_micros(20));
        let sched = p.take_schedule();
        assert_eq!(sched.len(), 2);
        assert_eq!(sched[0].action, FaultAction::Crash);
        assert_eq!(sched[1].action, FaultAction::Restart);
        assert!(p.take_schedule().is_empty(), "drained once");
    }
}
