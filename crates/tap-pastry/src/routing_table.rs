//! Prefix routing tables.
//!
//! Row `r` of a node's table holds, for each digit value `d != own digit`,
//! some node whose id shares the first `r` digits with the owner and has
//! digit `d` at position `r`. Forwarding a key looks up row
//! `shared_prefix(owner, key)`, column `key.digit(row)` — each successful
//! hop extends the shared prefix by at least one digit, which bounds routes
//! at `log_{2^b} N` expected hops.
//!
//! Rows are allocated on demand: in an `N`-node network only the first
//! `~log_{2^b} N` rows are ever non-empty, so a 10^4-node overlay costs a
//! few hundred bytes of table per node instead of the 15 KB a dense
//! 40-row matrix would take.
//!
//! Rows are additionally `Arc`-shared: cloning a table is `O(depth)`
//! pointer bumps, and a cloned table's rows stay physically shared with
//! the original until a mutation touches them ([`Arc::make_mut`] copies
//! the one row being written, nothing else). This is what makes whole
//! overlay snapshots cost only the nodes a sweep point actually touches.

use std::sync::Arc;

use tap_id::Id;

/// One `Arc`-shared row: `row[c]` holds a node with next digit `c`.
type Row = Vec<Option<Id>>;

/// One node's routing table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    owner: Id,
    b: u32,
    /// `rows[r][c]` — a node matching `r` digits with digit `c` next.
    /// Each row is copy-on-write shared between table clones.
    rows: Vec<Arc<Row>>,
}

impl RoutingTable {
    /// An empty table for `owner` with digit width `b`.
    pub fn new(owner: Id, b: u32) -> Self {
        debug_assert!((1..=8).contains(&b));
        RoutingTable {
            owner,
            b,
            rows: Vec::new(),
        }
    }

    /// The owning node's id.
    pub fn owner(&self) -> Id {
        self.owner
    }

    fn cols(&self) -> usize {
        1usize << self.b
    }

    fn ensure_row(&mut self, r: usize) {
        while self.rows.len() <= r {
            self.rows.push(Arc::new(vec![None; self.cols()]));
        }
    }

    /// The entry at `(row, col)`, if the row exists and is populated.
    pub fn entry(&self, row: usize, col: usize) -> Option<Id> {
        self.rows.get(row).and_then(|r| r[col])
    }

    /// Install `candidate` wherever it fits: row = shared prefix length,
    /// col = its next digit. An empty slot is always taken; an occupied
    /// slot is kept (Pastry replaces based on proximity, which the caller
    /// can express by calling [`RoutingTable::replace`]). Returns whether
    /// the table changed.
    pub fn consider(&mut self, candidate: Id) -> bool {
        if candidate == self.owner {
            return false;
        }
        let row = self.owner.shared_prefix_digits(candidate, self.b);
        let col = candidate.digit(row, self.b) as usize;
        self.ensure_row(row);
        // Read before write: an occupied slot must not unshare the row.
        if self.rows[row][col].is_some() {
            return false;
        }
        Arc::make_mut(&mut self.rows[row])[col] = Some(candidate);
        true
    }

    /// Force-install `candidate` in its natural slot, evicting any previous
    /// occupant (used when a repair learns a fresher node).
    pub fn replace(&mut self, candidate: Id) {
        if candidate == self.owner {
            return;
        }
        let row = self.owner.shared_prefix_digits(candidate, self.b);
        let col = candidate.digit(row, self.b) as usize;
        self.ensure_row(row);
        if self.rows[row][col] == Some(candidate) {
            return; // no-op replace keeps the row shared
        }
        Arc::make_mut(&mut self.rows[row])[col] = Some(candidate);
    }

    /// Remove every slot pointing at `dead`. Returns how many were cleared.
    pub fn evict(&mut self, dead: Id) -> usize {
        let mut cleared = 0;
        for row in &mut self.rows {
            // Scan shared; copy a row only when it actually holds `dead`.
            if !row.contains(&Some(dead)) {
                continue;
            }
            for slot in Arc::make_mut(row).iter_mut() {
                if *slot == Some(dead) {
                    *slot = None;
                    cleared += 1;
                }
            }
        }
        cleared
    }

    /// Clear every slot whose occupant fails `live` (batch eviction after
    /// a mass failure: one pass instead of one [`RoutingTable::evict`] per
    /// dead node). Rows with only surviving entries stay shared.
    pub fn evict_where<F: Fn(Id) -> bool>(&mut self, dead: F) -> usize {
        let mut cleared = 0;
        for row in &mut self.rows {
            if !row.iter().flatten().any(|id| dead(*id)) {
                continue;
            }
            for slot in Arc::make_mut(row).iter_mut() {
                if matches!(*slot, Some(id) if dead(id)) {
                    *slot = None;
                    cleared += 1;
                }
            }
        }
        cleared
    }

    /// The canonical next hop for `key`: the entry one digit deeper.
    pub fn next_hop(&self, key: Id) -> Option<Id> {
        let row = self.owner.shared_prefix_digits(key, self.b);
        let col = key.digit(row, self.b) as usize;
        self.entry(row, col)
    }

    /// Fallback search (Pastry's "rare case"): any known node that shares
    /// at least as long a prefix with `key` as the owner does *and* is
    /// numerically closer to `key` than the owner. Scans the table.
    pub fn fallback_hop(&self, key: Id) -> Option<Id> {
        let own_prefix = self.owner.shared_prefix_digits(key, self.b);
        let mut best: Option<Id> = None;
        for row in &self.rows {
            for slot in row.iter().flatten() {
                let c = *slot;
                if c.shared_prefix_digits(key, self.b) >= own_prefix
                    && c.closer_to(key, self.owner)
                    && best.is_none_or(|b| c.closer_to(key, b))
                {
                    best = Some(c);
                }
            }
        }
        best
    }

    /// All populated entries (row-major).
    pub fn entries(&self) -> impl Iterator<Item = Id> + '_ {
        self.rows.iter().flat_map(|r| r.iter()).flatten().copied()
    }

    /// Copy every entry of `other`'s row `row` into this table (the join
    /// protocol: the i-th node on the join path donates its i-th row).
    pub fn absorb_row(&mut self, other: &RoutingTable, row: usize) {
        if let Some(r) = other.rows.get(row) {
            for id in r.iter().flatten() {
                self.consider(*id);
            }
        }
    }

    /// A fully-owned copy: every row is reallocated, sharing nothing with
    /// `self`. The oracle the snapshot proptests compare COW clones against.
    pub fn deep_clone(&self) -> RoutingTable {
        RoutingTable {
            owner: self.owner,
            b: self.b,
            rows: self
                .rows
                .iter()
                .map(|r| Arc::new(r.as_ref().clone()))
                .collect(),
        }
    }

    /// How many rows are physically shared (same allocation) with `other`
    /// (diagnostics for the snapshot tests and benches).
    pub fn rows_shared_with(&self, other: &RoutingTable) -> usize {
        self.rows
            .iter()
            .zip(other.rows.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Number of populated slots (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().filter(|s| s.is_some()).count())
            .sum()
    }

    /// Highest allocated row index plus one (diagnostics).
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Check the structural invariant of every populated slot: the entry
    /// shares exactly `row` digits with the owner and its digit at `row` is
    /// the column index. Panics on violation (test helper).
    pub fn assert_invariants(&self) {
        for (r, row) in self.rows.iter().enumerate() {
            for (c, slot) in row.iter().enumerate() {
                if let Some(id) = slot {
                    assert_eq!(
                        self.owner.shared_prefix_digits(*id, self.b),
                        r,
                        "entry {id} in wrong row {r}"
                    );
                    assert_eq!(
                        id.digit(r, self.b) as usize,
                        c,
                        "entry {id} in wrong col {c}"
                    );
                    assert_ne!(*id, self.owner, "owner must not appear in own table");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hexid(s: &str) -> Id {
        // Expand a short hex prefix to a full 40-char id padded with zeros.
        format!("{s:0<40}").parse().unwrap()
    }

    #[test]
    fn consider_places_by_prefix_and_digit() {
        let mut rt = RoutingTable::new(hexid("a1"), 4);
        assert!(rt.consider(hexid("b3")));
        assert!(rt.consider(hexid("a7")));
        assert_eq!(rt.entry(0, 0xb), Some(hexid("b3")));
        assert_eq!(rt.entry(1, 0x7), Some(hexid("a7")));
        rt.assert_invariants();
    }

    #[test]
    fn consider_keeps_existing_occupant() {
        let mut rt = RoutingTable::new(hexid("00"), 4);
        assert!(rt.consider(hexid("f1")));
        assert!(!rt.consider(hexid("f2")), "slot already has an f-node");
        assert_eq!(rt.entry(0, 0xf), Some(hexid("f1")));
        rt.replace(hexid("f2"));
        assert_eq!(rt.entry(0, 0xf), Some(hexid("f2")));
    }

    #[test]
    fn owner_never_inserted() {
        let mut rt = RoutingTable::new(hexid("aa"), 4);
        assert!(!rt.consider(hexid("aa")));
        rt.replace(hexid("aa"));
        assert_eq!(rt.occupancy(), 0);
    }

    #[test]
    fn next_hop_extends_prefix() {
        let owner = hexid("1234");
        let mut rt = RoutingTable::new(owner, 4);
        let target = hexid("1299");
        // A node sharing "12" and having next digit 9:
        let hop = hexid("129a");
        rt.consider(hop);
        assert_eq!(rt.next_hop(target), Some(hop));
        let got = rt.next_hop(target).unwrap();
        assert!(
            got.shared_prefix_digits(target, 4) > owner.shared_prefix_digits(target, 4),
            "hop must extend the shared prefix"
        );
    }

    #[test]
    fn next_hop_missing_slot_is_none() {
        let rt = RoutingTable::new(hexid("12"), 4);
        assert_eq!(rt.next_hop(hexid("34")), None);
    }

    #[test]
    fn evict_clears_all_occurrences() {
        let mut rt = RoutingTable::new(hexid("00"), 4);
        rt.consider(hexid("ff"));
        assert_eq!(rt.evict(hexid("ff")), 1);
        assert_eq!(rt.entry(0, 0xf), None);
        assert_eq!(rt.evict(hexid("ff")), 0);
    }

    #[test]
    fn fallback_finds_closer_same_prefix_node() {
        let owner = hexid("10");
        let key = hexid("1f");
        let mut rt = RoutingTable::new(owner, 4);
        // No entry in the canonical slot (row 1, col f)? Put one only in a
        // "wrong" position: a node 1e.. sits in row 1 col e.
        let helper = hexid("1e");
        rt.consider(helper);
        assert_eq!(rt.next_hop(key), None, "canonical slot empty");
        assert_eq!(rt.fallback_hop(key), Some(helper));
    }

    #[test]
    fn fallback_rejects_farther_nodes() {
        let owner = hexid("1f00");
        let key = hexid("1f11");
        let mut rt = RoutingTable::new(owner, 4);
        rt.consider(hexid("1a")); // same 1-digit prefix but farther from key
        assert_eq!(rt.fallback_hop(key), None);
    }

    #[test]
    fn absorb_row_copies_entries() {
        let donor_owner = hexid("1111");
        let mut donor = RoutingTable::new(donor_owner, 4);
        donor.consider(hexid("1511"));
        donor.consider(hexid("1911"));
        let mut rt = RoutingTable::new(hexid("1222"), 4);
        rt.absorb_row(&donor, 1);
        // Both donated entries share 1 digit with the new owner too.
        assert_eq!(rt.entry(1, 5), Some(hexid("1511")));
        assert_eq!(rt.entry(1, 9), Some(hexid("1911")));
        rt.assert_invariants();
    }

    #[test]
    fn clones_share_rows_until_written() {
        let mut rt = RoutingTable::new(hexid("00"), 4);
        rt.consider(hexid("a1")); // row 0
        rt.consider(hexid("0b")); // row 1
        let snap = rt.clone();
        assert_eq!(rt.rows_shared_with(&snap), rt.depth());
        // Reads never unshare.
        assert_eq!(snap.entry(0, 0xa), Some(hexid("a1")));
        assert_eq!(rt.rows_shared_with(&snap), rt.depth());
        // Writing one row copies only that row; the snapshot is unmoved.
        rt.replace(hexid("0c"));
        assert_eq!(rt.rows_shared_with(&snap), rt.depth() - 1);
        assert_eq!(snap.entry(1, 0xc), None, "snapshot must not see the write");
        assert_eq!(rt.entry(1, 0xc), Some(hexid("0c")));
        // No-op mutations (occupied consider, identical replace, eviction
        // of an absent id) keep every row shared.
        let snap2 = rt.clone();
        assert!(!rt.consider(hexid("a2")));
        rt.replace(hexid("0c"));
        assert_eq!(rt.evict(hexid("77")), 0);
        assert_eq!(rt.rows_shared_with(&snap2), rt.depth());
        // deep_clone is equal but shares nothing.
        let deep = rt.deep_clone();
        assert_eq!(deep, rt);
        assert_eq!(deep.rows_shared_with(&rt), 0);
    }

    #[test]
    fn evict_where_batches_and_preserves_sharing() {
        let mut rt = RoutingTable::new(hexid("00"), 4);
        rt.consider(hexid("a1")); // row 0 col a
        rt.consider(hexid("b1")); // row 0 col b
        rt.consider(hexid("0b")); // row 1 col b
        let snap = rt.clone();
        let dead = [hexid("a1"), hexid("b1")];
        assert_eq!(rt.evict_where(|id| dead.contains(&id)), 2);
        assert_eq!(rt.entry(0, 0xa), None);
        assert_eq!(rt.entry(0, 0xb), None);
        assert_eq!(rt.entry(1, 0xb), Some(hexid("0b")));
        // Only row 0 was touched; row 1 stays shared with the snapshot.
        assert_eq!(rt.rows_shared_with(&snap), 1);
        assert_eq!(snap.entry(0, 0xa), Some(hexid("a1")));
        rt.assert_invariants();
    }

    #[test]
    fn depth_grows_lazily() {
        let mut rt = RoutingTable::new(hexid("00"), 4);
        assert_eq!(rt.depth(), 0);
        rt.consider(hexid("01"));
        assert_eq!(rt.depth(), 2, "row 1 allocated on demand");
    }

    proptest! {
        #[test]
        fn prop_invariants_hold_under_random_churn(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let owner = Id::random(&mut rng);
            let mut rt = RoutingTable::new(owner, 4);
            let mut pool = Vec::new();
            for _ in 0..200 {
                let x = Id::random(&mut rng);
                pool.push(x);
                rt.consider(x);
            }
            for (i, x) in pool.iter().enumerate() {
                if i % 3 == 0 {
                    rt.evict(*x);
                }
            }
            rt.assert_invariants();
        }

        #[test]
        fn prop_next_hop_always_extends_prefix(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let owner = Id::random(&mut rng);
            let mut rt = RoutingTable::new(owner, 4);
            for _ in 0..300 {
                rt.consider(Id::random(&mut rng));
            }
            for _ in 0..50 {
                let key = Id::random(&mut rng);
                if let Some(hop) = rt.next_hop(key) {
                    prop_assert!(
                        hop.shared_prefix_digits(key, 4)
                            > owner.shared_prefix_digits(key, 4)
                    );
                }
            }
        }

        #[test]
        fn prop_fallback_result_is_progress(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let owner = Id::random(&mut rng);
            let mut rt = RoutingTable::new(owner, 4);
            for _ in 0..100 {
                rt.consider(Id::random(&mut rng));
            }
            for _ in 0..50 {
                let key = Id::random(&mut rng);
                if let Some(hop) = rt.fallback_hop(key) {
                    prop_assert!(hop.closer_to(key, owner));
                    prop_assert!(
                        hop.shared_prefix_digits(key, 4)
                            >= owner.shared_prefix_digits(key, 4)
                    );
                }
            }
        }
    }
}
