//! Overlay parameters.

/// Static Pastry/PAST parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PastryConfig {
    /// Bits per identifier digit. Pastry's `b`; the paper notes "a typical
    /// value of 4" (§5), giving hexadecimal digits and `log_16 N` routing.
    pub b: u32,
    /// Total leaf-set size `|L|` (half on each side of the ring). Pastry's
    /// customary value is 16.
    pub leaf_set_size: usize,
    /// PAST replication factor `k`: objects live on the `k` nodes closest
    /// to their key. The paper evaluates k = 3 and k = 5.
    pub replication: usize,
}

impl PastryConfig {
    /// The configuration the paper evaluates: `b = 4`, `|L| = 16`, `k = 3`.
    pub fn paper_defaults() -> Self {
        PastryConfig {
            b: 4,
            leaf_set_size: 16,
            replication: 3,
        }
    }

    /// Same but with an explicit replication factor (the paper sweeps k).
    pub fn with_replication(k: usize) -> Self {
        PastryConfig {
            replication: k,
            ..Self::paper_defaults()
        }
    }

    /// Number of columns per routing-table row (`2^b`).
    pub fn cols(&self) -> usize {
        1usize << self.b
    }

    /// Number of digits in an identifier at this `b`.
    pub fn digits(&self) -> usize {
        tap_id::digits_for(self.b)
    }

    /// Leaf-set entries maintained on each side of the node.
    pub fn leaf_half(&self) -> usize {
        self.leaf_set_size / 2
    }

    /// Panics if the configuration is internally inconsistent.
    pub fn validate(&self) {
        assert!((1..=8).contains(&self.b), "b must be 1..=8");
        assert!(self.leaf_set_size >= 2, "leaf set too small");
        assert!(
            self.leaf_set_size.is_multiple_of(2),
            "leaf set size must be even (split across both ring sides)"
        );
        assert!(self.replication >= 1, "replication factor must be >= 1");
        assert!(
            self.replication <= self.leaf_set_size / 2 + 1,
            "replication beyond leaf-set reach ({} > {}): PAST places \
             replicas within the leaf set",
            self.replication,
            self.leaf_set_size / 2 + 1
        );
    }
}

impl Default for PastryConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        let c = PastryConfig::paper_defaults();
        c.validate();
        assert_eq!(c.cols(), 16);
        assert_eq!(c.digits(), 40);
        assert_eq!(c.leaf_half(), 8);
    }

    #[test]
    fn replication_sweep_configs_validate() {
        for k in 1..=8 {
            PastryConfig::with_replication(k).validate();
        }
    }

    #[test]
    #[should_panic(expected = "replication beyond leaf-set reach")]
    fn replication_larger_than_leafset_rejected() {
        PastryConfig {
            b: 4,
            leaf_set_size: 4,
            replication: 4,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "b must be")]
    fn bad_digit_width_rejected() {
        PastryConfig {
            b: 0,
            leaf_set_size: 16,
            replication: 3,
        }
        .validate();
    }
}
