//! Leaf sets: the `|L|` nodes numerically closest to a node, half clockwise
//! and half counter-clockwise on the ring.
//!
//! The leaf set serves two roles Pastry's correctness rests on: the final
//! routing step (if the key falls inside the leaf-set span, the closest
//! leaf is the root) and replica placement (PAST stores an object on the
//! root plus its nearest leaves). Leaf sets are kept eagerly consistent
//! under churn by [`crate::Overlay`].
//!
//! Both sides are `Arc`-shared: cloning a leaf set is two pointer bumps,
//! and a mutation copies only the one side it writes
//! ([`Arc::make_mut`]) — the copy-on-write contract overlay snapshots
//! rely on.

use std::sync::Arc;

use tap_id::Id;

/// A node's leaf set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafSet {
    owner: Id,
    half: usize,
    /// Clockwise (successor-side) neighbours, nearest first.
    cw: Arc<Vec<Id>>,
    /// Counter-clockwise (predecessor-side) neighbours, nearest first.
    ccw: Arc<Vec<Id>>,
}

impl LeafSet {
    /// An empty leaf set for `owner` keeping `half` entries per side.
    pub fn new(owner: Id, half: usize) -> Self {
        LeafSet {
            owner,
            half,
            cw: Arc::new(Vec::new()),
            ccw: Arc::new(Vec::new()),
        }
    }

    /// The node this leaf set belongs to.
    pub fn owner(&self) -> Id {
        self.owner
    }

    /// Clockwise neighbours, nearest first.
    pub fn clockwise(&self) -> &[Id] {
        &self.cw
    }

    /// Counter-clockwise neighbours, nearest first.
    pub fn counter_clockwise(&self) -> &[Id] {
        &self.ccw
    }

    /// All members (both sides), without the owner.
    pub fn members(&self) -> impl Iterator<Item = Id> + '_ {
        self.cw.iter().chain(self.ccw.iter()).copied()
    }

    /// Number of members currently known.
    pub fn len(&self) -> usize {
        self.cw.len() + self.ccw.len()
    }

    /// True when no neighbours are known (singleton ring).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replace the whole set from an authoritative neighbour listing.
    ///
    /// `cw`/`ccw` must be sorted nearest-first; trimmed to `half` per side.
    /// On rings smaller than `2·half + 1` the two directions overlap; each
    /// node is kept only on its clockwise side so that [`LeafSet::len`]
    /// counts *distinct* members — routing uses `len < 2·half` to recognize
    /// a ring it can see in its entirety.
    pub fn rebuild(&mut self, cw: Vec<Id>, ccw: Vec<Id>) {
        debug_assert!(is_sorted_by_cw_distance(self.owner, &cw));
        debug_assert!(is_sorted_by_ccw_distance(self.owner, &ccw));
        let mut cw = cw;
        cw.truncate(self.half);
        let mut ccw = ccw;
        ccw.retain(|id| !cw.contains(id));
        ccw.truncate(self.half);
        // A no-op rebuild keeps both sides shared with any snapshot.
        if *self.cw != cw {
            self.cw = Arc::new(cw);
        }
        if *self.ccw != ccw {
            self.ccw = Arc::new(ccw);
        }
    }

    /// Insert a node, keeping each side sorted and trimmed. Returns whether
    /// the set changed. The node lands on the side where it is nearer.
    pub fn insert(&mut self, id: Id) -> bool {
        if id == self.owner || self.cw.contains(&id) || self.ccw.contains(&id) {
            return false;
        }
        let cw_d = self.owner.clockwise_distance(id);
        let ccw_d = self.owner.counter_clockwise_distance(id);
        let cw_side = cw_d <= ccw_d;
        let owner = self.owner;
        let dist = |x: Id| {
            if cw_side {
                owner.clockwise_distance(x)
            } else {
                owner.counter_clockwise_distance(x)
            }
        };
        let key = if cw_side { cw_d } else { ccw_d };
        // Find the slot read-only; copy the side only when we will write.
        let side_ref = if cw_side { &self.cw } else { &self.ccw };
        let pos = side_ref
            .iter()
            .position(|&x| dist(x) > key)
            .unwrap_or(side_ref.len());
        if pos >= self.half {
            return false;
        }
        let side = Arc::make_mut(if cw_side { &mut self.cw } else { &mut self.ccw });
        side.insert(pos, id);
        side.truncate(self.half);
        true
    }

    /// Remove a departed node. Returns whether it was present.
    pub fn remove(&mut self, id: Id) -> bool {
        if let Some(p) = self.cw.iter().position(|&x| x == id) {
            Arc::make_mut(&mut self.cw).remove(p);
            return true;
        }
        if let Some(p) = self.ccw.iter().position(|&x| x == id) {
            Arc::make_mut(&mut self.ccw).remove(p);
            return true;
        }
        false
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: Id) -> bool {
        self.cw.contains(&id) || self.ccw.contains(&id)
    }

    /// Whether `key` lies within the span covered by the leaf set — i.e.
    /// between the farthest counter-clockwise and farthest clockwise
    /// members (inclusive). When it does, the routing root is a member of
    /// `leafset ∪ {owner}` and routing can finish in one exact step.
    pub fn covers(&self, key: Id) -> bool {
        if self.cw.is_empty() && self.ccw.is_empty() {
            return true; // singleton: the owner is root for everything
        }
        let cw_edge = self.cw.last().copied().unwrap_or(self.owner);
        let ccw_edge = self.ccw.last().copied().unwrap_or(self.owner);
        // Arc from ccw_edge clockwise to cw_edge, inclusive on both ends.
        key == ccw_edge || key.between_cw(ccw_edge, cw_edge)
    }

    /// A fully-owned copy sharing no allocation with `self` (the deep
    /// oracle for the snapshot proptests).
    pub fn deep_clone(&self) -> LeafSet {
        LeafSet {
            owner: self.owner,
            half: self.half,
            cw: Arc::new(self.cw.as_ref().clone()),
            ccw: Arc::new(self.ccw.as_ref().clone()),
        }
    }

    /// How many of the two sides are physically shared with `other`
    /// (0, 1 or 2 — diagnostics for the snapshot tests).
    pub fn sides_shared_with(&self, other: &LeafSet) -> usize {
        usize::from(Arc::ptr_eq(&self.cw, &other.cw))
            + usize::from(Arc::ptr_eq(&self.ccw, &other.ccw))
    }

    /// The member of `leafset ∪ {owner}` numerically closest to `key`
    /// (deterministic tie-break via [`Id::cmp_distance`]).
    pub fn closest_to(&self, key: Id) -> Id {
        let mut best = self.owner;
        for m in self.members() {
            if key.cmp_distance(m, best) == std::cmp::Ordering::Less {
                best = m;
            }
        }
        best
    }
}

fn is_sorted_by_cw_distance(owner: Id, xs: &[Id]) -> bool {
    xs.windows(2)
        .all(|w| owner.clockwise_distance(w[0]) <= owner.clockwise_distance(w[1]))
}

fn is_sorted_by_ccw_distance(owner: Id, xs: &[Id]) -> bool {
    xs.windows(2)
        .all(|w| owner.counter_clockwise_distance(w[0]) <= owner.counter_clockwise_distance(w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn id(v: u64) -> Id {
        Id::from_u64(v)
    }

    fn set_with(owner: u64, members: &[u64]) -> LeafSet {
        let mut ls = LeafSet::new(id(owner), 4);
        for &m in members {
            ls.insert(id(m));
        }
        ls
    }

    #[test]
    fn insert_sorts_by_side_distance() {
        let ls = set_with(100, &[110, 105, 90, 95, 120]);
        assert_eq!(ls.clockwise(), &[id(105), id(110), id(120)]);
        assert_eq!(ls.counter_clockwise(), &[id(95), id(90)]);
    }

    #[test]
    fn insert_dedups_and_ignores_owner() {
        let mut ls = set_with(100, &[105]);
        assert!(!ls.insert(id(105)));
        assert!(!ls.insert(id(100)));
        assert_eq!(ls.len(), 1);
    }

    #[test]
    fn insert_trims_to_half() {
        let mut ls = LeafSet::new(id(100), 4); // half = 4... per side
        for m in [101, 102, 103, 104, 105, 106] {
            ls.insert(id(m));
        }
        assert_eq!(ls.clockwise(), &[id(101), id(102), id(103), id(104)]);
        // A nearer node displaces the farthest.
        assert!(!ls.insert(id(101)), "already present");
        let mut ls2 = ls.clone();
        assert!(!ls2.insert(id(106)), "beyond capacity and farther");
    }

    #[test]
    fn nearer_node_displaces_farther() {
        let mut ls = LeafSet::new(id(100), 2); // one per side... half=2
        ls.insert(id(110));
        ls.insert(id(120));
        assert_eq!(ls.clockwise(), &[id(110), id(120)]);
        assert!(ls.insert(id(105)));
        assert_eq!(ls.clockwise(), &[id(105), id(110)]);
    }

    #[test]
    fn remove_either_side() {
        let mut ls = set_with(100, &[105, 95]);
        assert!(ls.remove(id(105)));
        assert!(ls.remove(id(95)));
        assert!(!ls.remove(id(42)));
        assert!(ls.is_empty());
    }

    #[test]
    fn covers_and_closest() {
        let ls = set_with(100, &[105, 110, 95, 90]);
        assert!(ls.covers(id(100)));
        assert!(ls.covers(id(107)));
        assert!(ls.covers(id(90)), "ccw edge inclusive");
        assert!(ls.covers(id(110)), "cw edge inclusive");
        assert!(!ls.covers(id(111)));
        assert!(!ls.covers(id(89)));
        assert_eq!(ls.closest_to(id(104)), id(105));
        assert_eq!(ls.closest_to(id(101)), id(100), "owner can be closest");
        assert_eq!(ls.closest_to(id(93)), id(95));
    }

    #[test]
    fn covers_wrapping_ring() {
        let mut ls = LeafSet::new(Id::from_u64(2), 4);
        ls.insert(Id::MAX); // predecessor across zero
        ls.insert(Id::from_u64(5));
        assert!(ls.covers(Id::ZERO));
        assert!(ls.covers(Id::from_u64(4)));
        assert!(!ls.covers(Id::from_u64(9)));
    }

    #[test]
    fn singleton_covers_everything() {
        let ls = LeafSet::new(id(7), 8);
        assert!(ls.covers(Id::MAX));
        assert_eq!(ls.closest_to(Id::MAX), id(7));
    }

    #[test]
    fn clones_share_sides_until_written() {
        let mut ls = set_with(100, &[105, 110, 95]);
        let snap = ls.clone();
        assert_eq!(ls.sides_shared_with(&snap), 2);
        // Reads and no-op writes keep both sides shared.
        assert!(ls.covers(id(107)));
        assert!(!ls.insert(id(105)));
        assert!(!ls.remove(id(42)));
        assert_eq!(ls.sides_shared_with(&snap), 2);
        // Writing the clockwise side copies it; ccw stays shared.
        assert!(ls.insert(id(103)));
        assert_eq!(ls.sides_shared_with(&snap), 1);
        assert_eq!(
            snap.clockwise(),
            &[id(105), id(110)],
            "snapshot must not see the insert"
        );
        // A rebuild that changes nothing re-shares nothing but keeps the
        // current allocations; one that changes a side swaps it out.
        let before = ls.clone();
        ls.rebuild(vec![id(103), id(105), id(110)], vec![id(95)]);
        assert_eq!(ls.sides_shared_with(&before), 2, "no-op rebuild");
        // deep_clone shares nothing but compares equal.
        let deep = ls.deep_clone();
        assert_eq!(deep, ls);
        assert_eq!(deep.sides_shared_with(&ls), 0);
    }

    #[test]
    fn rebuild_replaces_and_trims() {
        let mut ls = LeafSet::new(id(0), 2);
        ls.rebuild(vec![id(1), id(2), id(3)], vec![Id::MAX]);
        assert_eq!(ls.clockwise(), &[id(1), id(2)]);
        assert_eq!(ls.counter_clockwise(), &[Id::MAX]);
    }

    proptest! {
        #[test]
        fn prop_closest_is_truly_closest(
            owner in any::<[u8; 20]>(),
            members in proptest::collection::vec(any::<[u8; 20]>(), 1..12),
            key in any::<[u8; 20]>(),
        ) {
            let owner = Id::from_bytes(owner);
            let key = Id::from_bytes(key);
            let mut ls = LeafSet::new(owner, 8);
            for m in &members {
                ls.insert(Id::from_bytes(*m));
            }
            let best = ls.closest_to(key);
            let candidates: Vec<Id> =
                ls.members().chain(std::iter::once(owner)).collect();
            for c in candidates {
                prop_assert_ne!(
                    key.cmp_distance(c, best),
                    std::cmp::Ordering::Less,
                    "member closer than closest_to result"
                );
            }
        }

        #[test]
        fn prop_sides_stay_sorted_under_churn(
            owner in any::<[u8; 20]>(),
            ops in proptest::collection::vec((any::<[u8; 20]>(), any::<bool>()), 0..40),
        ) {
            let owner = Id::from_bytes(owner);
            let mut ls = LeafSet::new(owner, 6);
            for (bytes, remove) in ops {
                let x = Id::from_bytes(bytes);
                if remove {
                    ls.remove(x);
                } else {
                    ls.insert(x);
                }
                prop_assert!(super::is_sorted_by_cw_distance(owner, ls.clockwise()));
                prop_assert!(super::is_sorted_by_ccw_distance(owner, ls.counter_clockwise()));
                prop_assert!(ls.clockwise().len() <= 6);
                prop_assert!(ls.counter_clockwise().len() <= 6);
            }
        }
    }
}
