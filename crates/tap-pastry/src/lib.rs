//! # tap-pastry — the Pastry/PAST substrate
//!
//! TAP is built "relying on the P2P routing infrastructure and replication
//! mechanism" of Pastry and PAST (Rowstron & Druschel, 2001). The paper's
//! implementation sat on FreePastry 1.3; this crate is the equivalent
//! substrate in Rust, scoped to what the evaluation exercises:
//!
//! * **Prefix routing** ([`RoutingTable`], [`Overlay::route`]): each hop
//!   forwards to a node sharing at least one more identifier digit with the
//!   key, reaching the key's *root* (the live node with the numerically
//!   closest nodeid) in `~log_{2^b} N` hops — the constant the paper's
//!   performance analysis (§5) turns on.
//! * **Leaf sets** ([`LeafSet`]): the `|L|` nodes numerically closest to
//!   each node, maintained eagerly under churn; they make routing's last
//!   hop exact and define replica placement.
//! * **Join, leave, and fail-stop failure** ([`Overlay`]): joins route to
//!   the new id and initialize tables from the nodes met on the way; leaves
//!   and failures trigger leaf-set repair; routing-table entries pointing at
//!   dead nodes are repaired lazily at routing time, as in Pastry.
//! * **k-closest replication** ([`storage::ReplicaStore`]): PAST's
//!   replication manager — every object lives on the `k` nodes closest to
//!   its key, and membership changes migrate replicas so the invariant is
//!   restored. THAs are exactly such objects ("it can be envisioned a small
//!   file stored on the system", §3.1), and the *history* of which nodes
//!   ever held an object is what TAP's colluding-adversary analysis needs.
//!
//! The [`Overlay`] is a single-process simulation of the whole network
//! (as the paper's was: "the peer nodes were configured to run in a single
//! Java VM"). An oracle view ([`Overlay::owner_of`], [`Overlay::k_closest`])
//! exists alongside the per-node state; tests assert that decentralized
//! routing agrees with the oracle, which is the correctness property TAP
//! depends on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod leafset;
mod overlay;
mod routing_table;
pub mod secure;
pub mod storage;
pub mod substrate;

pub use config::PastryConfig;
pub use leafset::LeafSet;
pub use overlay::{NodeHandle, Overlay, OverlayCheckpoint, RouteError, RouteOutcome};
pub use routing_table::RoutingTable;
pub use substrate::{KeyRouter, Snapshots};
