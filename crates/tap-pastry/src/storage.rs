//! PAST-style replicated storage: every object lives on the `k` live nodes
//! whose ids are numerically closest to the object's key.
//!
//! This is the "replication mechanism" TAP leans on (§2): a THA
//! `<hopid, K, H(PW)>` is "a small file stored on the system" whose replica
//! set tracks membership, so the *tunnel hop node* (the closest holder) is
//! always findable as long as one replica survives.
//!
//! Two views matter to the reproduction:
//!
//! * the **current** replica set ([`ObjectRecord::holders`]), which decides
//!   whether a tunnel hop is reachable (Fig. 2); and
//! * the **history** of every node that ever held a replica
//!   ([`ObjectRecord::ever_held`]) — "malicious nodes can take advantage of
//!   the leaves of other nodes to learn more THAs" (§7.2): a malicious node
//!   that was *ever* given a replica keeps the secret forever. Fig. 5's
//!   churn experiment is exactly this set growing over time.

use std::collections::BTreeSet;
use std::sync::Arc;

use tap_id::{Id, IdHashMap, IdHashSet};
use tap_metrics::{Counter, Registry};

use crate::substrate::KeyRouter;

/// Why a storage operation could not complete. Replication state depends on
/// overlay membership, which churns underneath the store — these conditions
/// are environmental, not caller bugs, so they surface as errors rather
/// than panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageError {
    /// The overlay has no live nodes to replicate onto (every node failed
    /// or left before the insert).
    EmptyOverlay,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::EmptyOverlay => {
                write!(f, "cannot replicate into an empty overlay")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// A stored object and its replication state.
#[derive(Debug, Clone)]
pub struct ObjectRecord<V> {
    /// The stored value.
    pub value: V,
    /// Current replica set, numerically nearest holder first. The first
    /// entry is the object's root (TAP's tunnel hop node); the rest are the
    /// "tunnel hop node candidates".
    pub holders: Vec<Id>,
    /// Every node that ever appeared in the replica set.
    pub ever_held: IdHashSet,
}

/// Cached instrument handles for the store's churn-repair paths.
#[derive(Debug, Clone)]
struct StoreInstruments {
    registry: Registry,
    inserts: Arc<Counter>,
    evictions: Arc<Counter>,
    repairs: Arc<Counter>,
}

impl StoreInstruments {
    fn new(registry: Registry) -> Self {
        StoreInstruments {
            inserts: registry.counter("pastry.replica.inserts"),
            evictions: registry.counter("pastry.replica.evictions"),
            repairs: registry.counter("pastry.replica.repairs"),
            registry,
        }
    }
}

/// The replication manager.
#[derive(Debug, Clone)]
pub struct ReplicaStore<V> {
    k: usize,
    objects: IdHashMap<ObjectRecord<V>>,
    /// Inverted index: node → object keys it currently holds.
    held: IdHashMap<IdHashSet>,
    instruments: StoreInstruments,
}

impl<V> ReplicaStore<V> {
    /// A store with replication factor `k`, recording into its own private
    /// metrics registry (share one with [`ReplicaStore::use_metrics`]).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "replication factor must be at least 1");
        ReplicaStore {
            k,
            objects: IdHashMap::default(),
            held: IdHashMap::default(),
            instruments: StoreInstruments::new(Registry::new()),
        }
    }

    /// Record into `registry` from now on.
    pub fn use_metrics(&mut self, registry: Registry) {
        self.instruments = StoreInstruments::new(registry);
    }

    /// The metrics registry this store records into.
    pub fn metrics(&self) -> &Registry {
        &self.instruments.registry
    }

    /// The replication factor.
    pub fn replication(&self) -> usize {
        self.k
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Store `value` under `key`, replicating onto the `k` closest live
    /// nodes of `overlay`. Returns `Ok(false)` if the key is already
    /// present (PAST insertions are immutable; TAP deletes then redeploys)
    /// and [`StorageError::EmptyOverlay`] if there is no live node left to
    /// hold a replica.
    pub fn insert(
        &mut self,
        overlay: &impl KeyRouter,
        key: Id,
        value: V,
    ) -> Result<bool, StorageError> {
        if self.objects.contains_key(&key) {
            return Ok(false);
        }
        let holders = overlay.replica_set(key, self.k);
        if holders.is_empty() {
            return Err(StorageError::EmptyOverlay);
        }
        for h in &holders {
            self.held.entry(*h).or_default().insert(key);
        }
        let ever_held = holders.iter().copied().collect();
        self.objects.insert(
            key,
            ObjectRecord {
                value,
                holders,
                ever_held,
            },
        );
        self.instruments.inserts.inc();
        Ok(true)
    }

    /// Fetch an object's record.
    pub fn get(&self, key: Id) -> Option<&ObjectRecord<V>> {
        self.objects.get(&key)
    }

    /// Mutable access to a stored value (replica metadata stays intact).
    pub fn get_value_mut(&mut self, key: Id) -> Option<&mut V> {
        self.objects.get_mut(&key).map(|r| &mut r.value)
    }

    /// Remove an object entirely (TAP's THA deletion, after the owner has
    /// proven knowledge of PW at the protocol layer).
    pub fn remove(&mut self, key: Id) -> Option<V> {
        let rec = self.objects.remove(&key)?;
        for h in &rec.holders {
            if let Some(set) = self.held.get_mut(h) {
                set.remove(&key);
                if set.is_empty() {
                    self.held.remove(h);
                }
            }
        }
        Some(rec.value)
    }

    /// Current holders of `key`, nearest first (empty if unknown key).
    pub fn holders(&self, key: Id) -> &[Id] {
        self.objects
            .get(&key)
            .map(|r| r.holders.as_slice())
            .unwrap_or(&[])
    }

    /// Keys currently held by `node`.
    pub fn held_by(&self, node: Id) -> impl Iterator<Item = Id> + '_ {
        self.held.get(&node).into_iter().flatten().copied()
    }

    /// Iterate over `(key, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &ObjectRecord<V>)> {
        self.objects.iter().map(|(k, v)| (*k, v))
    }

    fn reassign(&mut self, key: Id, new_holders: Vec<Id>) {
        // The inverted index can only reference stored keys; tolerate a
        // desynced index (churn-repair races in future async callers)
        // instead of crashing the node.
        debug_assert!(self.objects.contains_key(&key), "reassigning known key");
        let Some(rec) = self.objects.get_mut(&key) else {
            return;
        };
        if rec.holders == new_holders {
            return;
        }
        self.instruments.repairs.inc();
        for h in &rec.holders {
            if !new_holders.contains(h) {
                self.instruments.evictions.inc();
                if let Some(set) = self.held.get_mut(h) {
                    set.remove(&key);
                    if set.is_empty() {
                        self.held.remove(h);
                    }
                }
            }
        }
        for h in &new_holders {
            if !rec.holders.contains(h) {
                self.held.entry(*h).or_default().insert(key);
            }
            rec.ever_held.insert(*h);
        }
        rec.holders = new_holders;
    }

    /// Re-replicate a single object onto the overlay's *current* k-closest
    /// set. Returns `true` when the holder set actually changed.
    ///
    /// [`ReplicaStore::on_node_removed`] repairs eagerly when the caller
    /// knows which node vanished; this is the targeted variant for callers
    /// that only know an object's replica set has degraded (a takeover was
    /// observed in transit, a partition healed) and want that one anchor
    /// back to full strength.
    pub fn repair_key(&mut self, overlay: &impl KeyRouter, key: Id) -> bool {
        if !self.objects.contains_key(&key) {
            return false;
        }
        let new_holders = overlay.replica_set(key, self.k);
        if new_holders.is_empty() || self.holders(key) == new_holders {
            return false;
        }
        self.reassign(key, new_holders);
        true
    }

    /// Repair after `node` left or failed. Call **after** the overlay has
    /// removed it: each object the node held is re-replicated onto the new
    /// k-closest set (one of the candidates takes over as root, and the
    /// next ring neighbour is drafted as a fresh replica).
    pub fn on_node_removed(&mut self, overlay: &impl KeyRouter, node: Id) {
        let Some(keys) = self.held.remove(&node) else {
            return;
        };
        for key in keys {
            let new_holders = overlay.replica_set(key, self.k);
            self.reassign(key, new_holders);
        }
    }

    /// Repair after a whole batch of nodes left at once (the storage-side
    /// companion to `Overlay::remove_nodes`). Call **after** the overlay
    /// removed them: every object any departed node held is re-replicated
    /// onto the current k-closest set exactly once — an object that lost
    /// several holders in the same batch is repaired once, not once per
    /// casualty. Keys are repaired in id order, so the repair/eviction
    /// counters are independent of the input order.
    pub fn on_nodes_removed(&mut self, overlay: &impl KeyRouter, nodes: &[Id]) {
        let mut keys: BTreeSet<Id> = BTreeSet::new();
        for n in nodes {
            if let Some(held) = self.held.remove(n) {
                keys.extend(held);
            }
        }
        for key in keys {
            let new_holders = overlay.replica_set(key, self.k);
            self.reassign(key, new_holders);
        }
    }

    /// Rebalance after `node` joined. Call **after** the overlay has added
    /// it: objects whose key the newcomer is now among the `k` closest to
    /// migrate a replica onto it (and the displaced farthest holder drops
    /// out of the current set — though it keeps the secret in `ever_held`).
    pub fn on_node_added(&mut self, overlay: &impl KeyRouter, node: Id) {
        // Only objects held within the newcomer's ring neighbourhood can be
        // affected: their previous holders are within 2k ring positions.
        let mut candidates: IdHashSet = IdHashSet::default();
        for n in overlay
            .following(node, 2 * self.k + 2)
            .into_iter()
            .chain(overlay.preceding(node, 2 * self.k + 2))
        {
            if let Some(keys) = self.held.get(&n) {
                candidates.extend(keys.iter().copied());
            }
        }
        for key in candidates {
            let new_holders = overlay.replica_set(key, self.k);
            self.reassign(key, new_holders);
        }
    }

    /// Assert every object's holder set equals the overlay oracle's
    /// k-closest. Test helper; O(objects · k · log N).
    pub fn assert_replica_invariant(&self, overlay: &impl KeyRouter) {
        for (key, rec) in &self.objects {
            let want = overlay.replica_set(*key, self.k);
            assert_eq!(
                rec.holders, want,
                "replica set for {key:?} diverged from k-closest"
            );
            for h in &want {
                assert!(rec.ever_held.contains(h), "history missing holder");
            }
        }
        // Inverted index consistency.
        for (node, keys) in &self.held {
            for key in keys {
                assert!(
                    self.objects[key].holders.contains(node),
                    "held index points at non-holder"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PastryConfig;
    use crate::overlay::Overlay;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(n: usize, seed: u64) -> (Overlay, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ov = Overlay::new(PastryConfig::paper_defaults());
        for _ in 0..n {
            ov.add_random_node(&mut rng);
        }
        (ov, rng)
    }

    #[test]
    fn insert_places_on_k_closest() {
        let (ov, mut rng) = build(100, 1);
        let mut store = ReplicaStore::new(3);
        let key = Id::random(&mut rng);
        assert!(store.insert(&ov, key, "tha").unwrap());
        assert_eq!(store.holders(key), ov.k_closest(key, 3));
        store.assert_replica_invariant(&ov);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let (ov, mut rng) = build(20, 2);
        let mut store = ReplicaStore::new(3);
        let key = Id::random(&mut rng);
        assert!(store.insert(&ov, key, 1).unwrap());
        assert!(!store.insert(&ov, key, 2).unwrap());
        assert_eq!(store.get(key).unwrap().value, 1);
    }

    #[test]
    fn remove_cleans_inverted_index() {
        let (ov, mut rng) = build(50, 3);
        let mut store = ReplicaStore::new(3);
        let key = Id::random(&mut rng);
        store.insert(&ov, key, 7u32).unwrap();
        let holder = store.holders(key)[0];
        assert_eq!(store.remove(key), Some(7));
        assert_eq!(store.remove(key), None);
        assert_eq!(store.held_by(holder).count(), 0);
        store.assert_replica_invariant(&ov);
    }

    #[test]
    fn failover_promotes_candidate() {
        let (mut ov, mut rng) = build(100, 4);
        let mut store = ReplicaStore::new(3);
        let key = Id::random(&mut rng);
        store.insert(&ov, key, ()).unwrap();
        let before = store.holders(key).to_vec();
        // Kill the root (the tunnel hop node).
        ov.remove_node(before[0]);
        store.on_node_removed(&ov, before[0]);
        let after = store.holders(key).to_vec();
        assert_eq!(after[0], before[1], "first candidate takes over as root");
        assert_eq!(after.len(), 3, "a fresh replica is drafted");
        store.assert_replica_invariant(&ov);
        // History remembers the dead root.
        assert!(store.get(key).unwrap().ever_held.contains(&before[0]));
    }

    #[test]
    fn batch_removal_repairs_each_object_once() {
        let (mut ov, mut rng) = build(150, 11);
        let mut store = ReplicaStore::new(3);
        let metrics = tap_metrics::Registry::new();
        store.use_metrics(metrics.clone());
        let mut keys = Vec::new();
        for _ in 0..80 {
            let k = Id::random(&mut rng);
            store.insert(&ov, k, ()).unwrap();
            keys.push(k);
        }
        // Kill an entire replica set at once: the object lost all three
        // holders in the same batch but must be reassigned exactly once.
        let victims: Vec<Id> = {
            let mut v = store.holders(keys[0]).to_vec();
            v.sort_unstable();
            v
        };
        let repairs_before = metrics.snapshot().counter("pastry.replica.repairs");
        assert_eq!(ov.remove_nodes(&victims), victims.len());
        store.on_nodes_removed(&ov, &victims);
        store.assert_replica_invariant(&ov);
        // keys[0] was repaired once; other objects holding a victim were
        // each repaired at most once too, so the repair count is bounded
        // by the number of affected objects (strictly fewer than the
        // per-casualty count when replica sets overlap).
        let repaired = metrics.snapshot().counter("pastry.replica.repairs") - repairs_before;
        let affected: usize = keys
            .iter()
            .filter(|k| {
                store
                    .get(**k)
                    .unwrap()
                    .ever_held
                    .iter()
                    .any(|h| victims.contains(h))
            })
            .count();
        assert!(repaired <= affected as u64, "{repaired} > {affected}");
        assert!(
            store.holders(keys[0]).len() == 3,
            "object back to full strength"
        );
    }

    #[test]
    fn join_migrates_replicas_to_newcomer() {
        let (mut ov, mut rng) = build(100, 5);
        let mut store = ReplicaStore::new(3);
        let key = Id::random(&mut rng);
        store.insert(&ov, key, ()).unwrap();
        // Join a node directly adjacent to the key: it must become root.
        let adjacent = key.wrapping_add(Id::from_u64(1));
        assert!(ov.add_node(adjacent));
        store.on_node_added(&ov, adjacent);
        assert_eq!(store.holders(key)[0], adjacent);
        store.assert_replica_invariant(&ov);
    }

    #[test]
    fn displaced_holder_keeps_history() {
        let (mut ov, mut rng) = build(60, 6);
        let mut store = ReplicaStore::new(3);
        let key = Id::random(&mut rng);
        store.insert(&ov, key, ()).unwrap();
        let displaced = store.holders(key)[2];
        let adjacent = key.wrapping_add(Id::from_u64(1));
        ov.add_node(adjacent);
        store.on_node_added(&ov, adjacent);
        assert!(!store.holders(key).contains(&displaced));
        assert!(store.get(key).unwrap().ever_held.contains(&displaced));
    }

    #[test]
    fn invariant_survives_heavy_churn() {
        let (mut ov, mut rng) = build(120, 7);
        let mut store = ReplicaStore::new(3);
        for _ in 0..200 {
            store.insert(&ov, Id::random(&mut rng), ()).unwrap();
        }
        for round in 0..60 {
            if rng.gen_bool(0.5) {
                let victim = ov.random_node(&mut rng).unwrap();
                ov.remove_node(victim);
                store.on_node_removed(&ov, victim);
            } else {
                let id = ov.add_random_node(&mut rng);
                store.on_node_added(&ov, id);
            }
            if round % 10 == 9 {
                store.assert_replica_invariant(&ov);
            }
        }
        store.assert_replica_invariant(&ov);
    }

    #[test]
    fn history_only_grows() {
        let (mut ov, mut rng) = build(80, 8);
        let mut store = ReplicaStore::new(3);
        let key = Id::random(&mut rng);
        store.insert(&ov, key, ()).unwrap();
        let mut prev: IdHashSet = store.get(key).unwrap().ever_held.clone();
        for _ in 0..30 {
            let victim = ov.random_node(&mut rng).unwrap();
            ov.remove_node(victim);
            store.on_node_removed(&ov, victim);
            let id = ov.add_random_node(&mut rng);
            store.on_node_added(&ov, id);
            let now = &store.get(key).unwrap().ever_held;
            assert!(prev.is_subset(now), "history shrank");
            prev = now.clone();
        }
    }

    #[test]
    fn small_overlay_replication_caps() {
        let (ov, mut rng) = build(2, 9);
        let mut store = ReplicaStore::new(5);
        let key = Id::random(&mut rng);
        store.insert(&ov, key, ()).unwrap();
        assert_eq!(store.holders(key).len(), 2, "only 2 nodes exist");
    }

    #[test]
    fn held_by_reflects_all_objects() {
        let (ov, mut rng) = build(30, 10);
        let mut store = ReplicaStore::new(3);
        let mut keys = Vec::new();
        for _ in 0..50 {
            let k = Id::random(&mut rng);
            store.insert(&ov, k, ()).unwrap();
            keys.push(k);
        }
        let mut total = 0;
        for n in ov.ids().collect::<Vec<_>>() {
            total += store.held_by(n).count();
        }
        assert_eq!(total, 50 * 3, "each object on exactly k nodes");
    }
}
