//! The substrate abstraction: what TAP actually requires of a structured
//! overlay.
//!
//! The paper: "we take Pastry/PAST as an example for structured P2P
//! systems. However, we believe that our tunneling approach can be easily
//! adapted to other systems [Chord, CAN, Tapestry, CFS, OceanStore]"
//! (§3). [`KeyRouter`] pins down the exact interface that belief rests
//! on — everything the THA store and the tunnel transit consume:
//!
//! * a *responsibility* function ([`KeyRouter::owner_of`]): which live
//!   node currently serves a key (numerically closest node in Pastry,
//!   successor in Chord);
//! * a *replica set* ([`KeyRouter::replica_set`]): the `k` live nodes a
//!   key's object is stored on, ordered so that index 0 is the
//!   responsible node and the failure of a prefix of the list promotes
//!   the next entry — the property TAP's hop failover needs;
//! * *decentralized routing* ([`KeyRouter::route_path`]) that converges
//!   on `owner_of(key)` using per-node state;
//! * ring neighbourhood views used by replica migration.
//!
//! `tap-core` is written against this trait; `tap-pastry::Overlay`
//! implements it here and the `tap-chord` crate implements it for a
//! from-scratch Chord, which is the portability demonstration.

use tap_id::Id;

use crate::overlay::{Overlay, RouteError};

/// The overlay interface TAP builds on. See the module docs for the
/// contract each method carries.
pub trait KeyRouter {
    /// Whether `node` is currently a live member.
    fn is_live(&self, node: Id) -> bool;

    /// The live node currently responsible for `key`, if any.
    fn owner_of(&self, key: Id) -> Option<Id>;

    /// The ordered replica set for `key`: the responsible node first, then
    /// the nodes that take over (in order) as earlier entries fail.
    fn replica_set(&self, key: Id, k: usize) -> Vec<Id>;

    /// Up to `n` live nodes following `from` in responsibility order
    /// (exclusive). Used by replica migration on joins.
    fn following(&self, from: Id, n: usize) -> Vec<Id>;

    /// Up to `n` live nodes preceding `from` (exclusive).
    fn preceding(&self, from: Id, n: usize) -> Vec<Id>;

    /// Route `key` from `from` using per-node state; returns the node path
    /// (source first, responsible node last). `&mut self` because routing
    /// may repair stale per-node state along the way.
    fn route_path(&mut self, from: Id, key: Id) -> Result<Vec<Id>, RouteError>;

    /// Number of live nodes.
    fn node_count(&self) -> usize;
}

/// Copy-on-write snapshot support for a substrate: save the membership
/// state in O(nodes) pointer bumps, mutate freely, restore later. Kept
/// separate from [`KeyRouter`] (which stays object-safe — it is used as
/// `dyn KeyRouter`) because of the associated checkpoint type.
///
/// The contract, pinned down by the snapshot proptests in both overlay
/// crates: after `rollback(cp)` the substrate routes exactly like a deep
/// copy taken at `checkpoint()` time, and two live snapshots never
/// observe each other's writes.
pub trait Snapshots {
    /// Opaque saved state handle.
    type Checkpoint;

    /// Save the current membership state (cheap: structural sharing, no
    /// per-node routing state is copied).
    fn checkpoint(&self) -> Self::Checkpoint;

    /// Restore a saved state, discarding every membership mutation made
    /// since the checkpoint. Metrics wiring is untouched.
    fn rollback(&mut self, cp: &Self::Checkpoint);
}

impl Snapshots for Overlay {
    type Checkpoint = crate::overlay::OverlayCheckpoint;

    fn checkpoint(&self) -> Self::Checkpoint {
        Overlay::checkpoint(self)
    }

    fn rollback(&mut self, cp: &Self::Checkpoint) {
        Overlay::rollback(self, cp)
    }
}

impl KeyRouter for Overlay {
    fn is_live(&self, node: Id) -> bool {
        Overlay::is_live(self, node)
    }

    fn owner_of(&self, key: Id) -> Option<Id> {
        Overlay::owner_of(self, key)
    }

    fn replica_set(&self, key: Id, k: usize) -> Vec<Id> {
        Overlay::k_closest(self, key, k)
    }

    fn following(&self, from: Id, n: usize) -> Vec<Id> {
        Overlay::successors(self, from, n)
    }

    fn preceding(&self, from: Id, n: usize) -> Vec<Id> {
        Overlay::predecessors(self, from, n)
    }

    fn route_path(&mut self, from: Id, key: Id) -> Result<Vec<Id>, RouteError> {
        Overlay::route(self, from, key).map(|o| o.path)
    }

    fn node_count(&self) -> usize {
        Overlay::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PastryConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // Exercise the Overlay through the trait object surface, exactly as a
    // substrate-generic caller would.
    fn build(n: usize, seed: u64) -> (Overlay, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ov = Overlay::new(PastryConfig::paper_defaults());
        for _ in 0..n {
            ov.add_random_node(&mut rng);
        }
        (ov, rng)
    }

    #[test]
    fn trait_surface_matches_inherent_methods() {
        let (mut ov, mut rng) = build(120, 1);
        let key = Id::random(&mut rng);
        let via_inherent = ov.owner_of(key);
        let router: &mut dyn KeyRouter = &mut ov;
        assert_eq!(router.owner_of(key), via_inherent);
        assert_eq!(router.node_count(), 120);
        let path = router.route_path(Id::ZERO, key);
        // Id::ZERO is (astronomically likely) not a member.
        assert!(path.is_err());
        let src = ov.random_node(&mut rng).unwrap();
        let router: &mut dyn KeyRouter = &mut ov;
        let path = router.route_path(src, key).unwrap();
        assert_eq!(*path.last().unwrap(), via_inherent.unwrap());
    }

    #[test]
    fn replica_set_contract_first_is_owner() {
        let (ov, mut rng) = build(80, 2);
        for _ in 0..20 {
            let key = Id::random(&mut rng);
            let set = KeyRouter::replica_set(&ov, key, 3);
            assert_eq!(set[0], ov.owner_of(key).unwrap());
            assert_eq!(set.len(), 3);
        }
    }
}
