//! The overlay: membership, join/leave/failure, and prefix routing.
//!
//! The whole network lives in one process, exactly as the paper ran
//! FreePastry ("the peer nodes were configured to run in a single Java
//! VM"). Every node still keeps *its own* routing table and leaf set, and
//! routing consults only per-node state hop by hop — the overlay struct
//! merely plays the role of the wire plus the converged maintenance
//! protocols:
//!
//! * leaf sets are repaired eagerly on join/leave (Pastry's leaf-set
//!   protocol is eager and its converged result is exact, so we install
//!   that result directly);
//! * routing-table entries pointing at dead nodes are discovered and
//!   evicted lazily during routing, with Pastry's fallback rule (§2.1 of
//!   the Pastry paper: forward to any known node at least as good in
//!   prefix and strictly closer numerically).

use std::collections::BTreeSet;

use std::sync::Arc;
use tap_id::{IdHashMap, IdHashSet};

use rand::Rng;
use tap_id::Id;
use tap_metrics::{Counter, Histogram, Registry};

use crate::config::PastryConfig;
use crate::leafset::LeafSet;
use crate::routing_table::RoutingTable;

/// Per-node overlay state.
#[derive(Debug, Clone)]
pub struct NodeHandle {
    /// The node's identifier.
    pub id: Id,
    /// Its prefix routing table.
    pub table: RoutingTable,
    /// Its leaf set.
    pub leafset: LeafSet,
}

/// Why a route could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// The starting node is not a live member.
    UnknownSource(Id),
    /// The overlay has no live nodes at all.
    EmptyOverlay,
    /// No candidate made numeric progress toward the key (leaf sets would
    /// have to be corrupted for this to happen; surfaced, never masked).
    Stuck {
        /// Node at which progress stopped.
        at: Id,
        /// Key being routed.
        key: Id,
    },
    /// Hop count exceeded a sanity bound (routing loop).
    Loop,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::UnknownSource(id) => write!(f, "unknown source node {id:?}"),
            RouteError::EmptyOverlay => write!(f, "overlay has no live nodes"),
            RouteError::Stuck { at, key } => {
                write!(f, "routing stuck at {at:?} for key {key:?}")
            }
            RouteError::Loop => write!(f, "routing loop detected"),
        }
    }
}

impl std::error::Error for RouteError {}

/// The result of routing a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteOutcome {
    /// Every node the message visited, starting with the source and ending
    /// with the root.
    pub path: Vec<Id>,
    /// The key's root: the live node numerically closest to it.
    pub root: Id,
}

impl RouteOutcome {
    /// Number of overlay hops taken (`path.len() - 1`).
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

/// Cached instrument handles; route() is the simulator's hottest loop.
#[derive(Clone)]
struct OverlayInstruments {
    registry: Registry,
    route_hops: Arc<Histogram>,
    leafset_repairs: Arc<Counter>,
    table_evictions: Arc<Counter>,
    stale_leafset_refs: Arc<Counter>,
}

impl OverlayInstruments {
    fn new(registry: Registry) -> Self {
        OverlayInstruments {
            route_hops: registry.histogram("pastry.route.hops"),
            leafset_repairs: registry.counter("pastry.leafset.repairs"),
            table_evictions: registry.counter("pastry.table.evictions"),
            stale_leafset_refs: registry.counter("pastry.stale_leafset_ref"),
            registry,
        }
    }
}

/// A simulated Pastry overlay.
///
/// Cloning is copy-on-write: node handles (and, one level down, routing
/// table rows and leaf-set sides) are `Arc`-shared with the clone, and a
/// mutation copies only the state it touches. [`Overlay::checkpoint`] /
/// [`Overlay::rollback`] expose the same machinery as an explicit
/// save/restore pair, so a sweep point costs only the nodes it kills or
/// repairs instead of a full deep copy of the network.
#[derive(Clone)]
pub struct Overlay {
    config: PastryConfig,
    /// Live node handles. Always holds exactly the ids in `ring` — the
    /// hot paths prefer `nodes.contains_key` (one fold-hash probe) over
    /// `ring.contains` (a deep `BTreeSet` descent) for membership.
    nodes: IdHashMap<Arc<NodeHandle>>,
    ring: BTreeSet<Id>,
    /// Dense membership list for O(1) *uniform* random-node sampling
    /// (successor-of-a-random-probe sampling would be biased by ring-gap
    /// size, which skews relay selection statistics in the experiments).
    order: Vec<Id>,
    pos: IdHashMap<usize>,
    instruments: OverlayInstruments,
}

/// A saved membership state produced by [`Overlay::checkpoint`]: the ring
/// indexes plus one `Arc` per node handle (pointer-sized, not
/// table-sized). Restoring with [`Overlay::rollback`] re-shares every
/// handle the mutations in between had copied.
#[derive(Clone)]
pub struct OverlayCheckpoint {
    nodes: IdHashMap<Arc<NodeHandle>>,
    ring: BTreeSet<Id>,
    order: Vec<Id>,
    pos: IdHashMap<usize>,
}

impl OverlayCheckpoint {
    /// Number of nodes captured in the checkpoint.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the checkpoint captured an empty overlay.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl Overlay {
    /// An empty overlay recording into its own private metrics registry
    /// (share one across subsystems with [`Overlay::use_metrics`]).
    pub fn new(config: PastryConfig) -> Self {
        config.validate();
        Overlay {
            config,
            nodes: IdHashMap::default(),
            ring: BTreeSet::new(),
            order: Vec::new(),
            pos: IdHashMap::default(),
            instruments: OverlayInstruments::new(Registry::new()),
        }
    }

    /// Record into `registry` from now on. Clones of the overlay share the
    /// same registry handle.
    pub fn use_metrics(&mut self, registry: Registry) {
        self.instruments = OverlayInstruments::new(registry);
    }

    /// The metrics registry this overlay records into.
    pub fn metrics(&self) -> &Registry {
        &self.instruments.registry
    }

    /// The overlay's configuration.
    pub fn config(&self) -> &PastryConfig {
        &self.config
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the overlay has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Whether `id` is a live member.
    pub fn is_live(&self, id: Id) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Iterate over all live node ids (ring order).
    pub fn ids(&self) -> impl Iterator<Item = Id> + '_ {
        self.ring.iter().copied()
    }

    /// Borrow a node's state.
    pub fn node(&self, id: Id) -> Option<&NodeHandle> {
        self.nodes.get(&id).map(|n| &**n)
    }

    /// Record (counter + journal) a leaf-set reference to a node that is
    /// no longer live — e.g. one removed earlier in the same repair
    /// batch. The reference is skipped, never followed.
    fn note_stale_leafset_ref(&self, referenced: Id) {
        self.instruments.stale_leafset_refs.inc();
        self.instruments.registry.emit(
            0,
            "pastry.stale_leafset_ref",
            format!("skipped repair via dead leafset member {referenced:?}"),
        );
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// Save the current membership state. Costs one `Arc` bump per node
    /// plus the ring indexes — no routing table or leaf set is copied.
    pub fn checkpoint(&self) -> OverlayCheckpoint {
        OverlayCheckpoint {
            nodes: self.nodes.clone(),
            ring: self.ring.clone(),
            order: self.order.clone(),
            pos: self.pos.clone(),
        }
    }

    /// Restore a state saved by [`Overlay::checkpoint`], discarding every
    /// membership mutation made since. Handles the mutations had copied
    /// become shared with the checkpoint again; config and metrics wiring
    /// are untouched (counters keep their accumulated values — a rollback
    /// undoes the network, not the measurement).
    pub fn rollback(&mut self, cp: &OverlayCheckpoint) {
        self.nodes = cp.nodes.clone();
        self.ring = cp.ring.clone();
        self.order = cp.order.clone();
        self.pos = cp.pos.clone();
    }

    /// A fully-owned copy sharing no node state with `self` — what
    /// `clone()` used to cost before snapshots. Kept as the oracle the
    /// snapshot proptests compare COW clones against.
    pub fn deep_clone(&self) -> Overlay {
        Overlay {
            config: self.config,
            nodes: self
                .nodes
                .iter()
                .map(|(&id, n)| {
                    (
                        id,
                        Arc::new(NodeHandle {
                            id: n.id,
                            table: n.table.deep_clone(),
                            leafset: n.leafset.deep_clone(),
                        }),
                    )
                })
                .collect(),
            ring: self.ring.clone(),
            order: self.order.clone(),
            pos: self.pos.clone(),
            instruments: self.instruments.clone(),
        }
    }

    /// How many node handles are physically shared with `other`
    /// (diagnostics for the snapshot tests and benches).
    pub fn handles_shared_with(&self, other: &Overlay) -> usize {
        self.nodes
            .iter()
            .filter(|(id, n)| other.nodes.get(id).is_some_and(|o| Arc::ptr_eq(n, o)))
            .count()
    }

    /// A uniformly random live node (exact uniformity via a dense index).
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Id> {
        if self.order.is_empty() {
            return None;
        }
        Some(self.order[rng.gen_range(0..self.order.len())])
    }

    // ------------------------------------------------------------------
    // Oracle views (global knowledge; used for replica placement and for
    // validating that decentralized routing agrees with ground truth).
    // ------------------------------------------------------------------

    /// The first live id clockwise from `from`, inclusive.
    fn successor_inclusive(&self, from: Id) -> Id {
        debug_assert!(!self.ring.is_empty());
        self.ring
            .range(from..)
            .next()
            .or_else(|| self.ring.iter().next())
            .copied()
            .expect("non-empty ring")
    }

    /// Up to `n` live ids clockwise from `from` (exclusive), in ring order.
    pub fn successors(&self, from: Id, n: usize) -> Vec<Id> {
        let mut out = Vec::with_capacity(n);
        for id in self
            .ring
            .range((std::ops::Bound::Excluded(from), std::ops::Bound::Unbounded))
            .chain(self.ring.range(..from))
        {
            if out.len() == n {
                break;
            }
            out.push(*id);
        }
        out
    }

    /// Up to `n` live ids counter-clockwise from `from` (exclusive).
    pub fn predecessors(&self, from: Id, n: usize) -> Vec<Id> {
        let mut out = Vec::with_capacity(n);
        for id in self.ring.range(..from).rev().chain(
            self.ring
                .range((std::ops::Bound::Excluded(from), std::ops::Bound::Unbounded))
                .rev(),
        ) {
            if out.len() == n {
                break;
            }
            out.push(*id);
        }
        out
    }

    /// Oracle: the live node numerically closest to `key` (the key's root).
    pub fn owner_of(&self, key: Id) -> Option<Id> {
        if self.ring.is_empty() {
            return None;
        }
        let succ = self.successor_inclusive(key);
        if succ == key {
            return Some(succ);
        }
        let pred = self
            .ring
            .range(..key)
            .next_back()
            .or_else(|| self.ring.iter().next_back())
            .copied()
            .expect("non-empty ring");
        Some(match key.cmp_distance(succ, pred) {
            std::cmp::Ordering::Greater => pred,
            _ => succ,
        })
    }

    /// Oracle: the `k` live nodes numerically closest to `key`, nearest
    /// first — PAST's replica set for the key.
    pub fn k_closest(&self, key: Id, k: usize) -> Vec<Id> {
        let take = k.min(self.ring.len());
        // Candidates: the k nearest on each side (the k closest overall
        // are among them), merged by ring distance.
        let mut cands = self.successors(key, take);
        if self.ring.contains(&key) {
            cands.push(key);
        }
        cands.extend(self.predecessors(key, take));
        cands.sort_by(|a, b| key.cmp_distance(*a, *b));
        cands.dedup();
        cands.truncate(take);
        cands
    }

    /// Oracle: every live node in nearest-first order from `key` — the
    /// lazy equivalent of `k_closest(key, len())`, emitting the same
    /// sequence without materialising or sorting the whole ring. Callers
    /// that stop after a few items (e.g. "closest responsive node") pay
    /// O(taken) instead of O(N log N).
    ///
    /// Works by merging the clockwise and counter-clockwise ring walks:
    /// the unvisited ids always form one contiguous arc whose *farthest*
    /// point from `key` is interior, so the nearest unvisited id is one of
    /// the arc's two endpoints — comparing the frontiers with
    /// [`Id::cmp_distance`] (the exact comparator `k_closest` sorts by,
    /// ties and all) picks it.
    pub fn closest_iter(&self, key: Id) -> impl Iterator<Item = Id> + '_ {
        use std::ops::Bound;
        let total = self.ring.len();
        let mut succ = self
            .ring
            .range((Bound::Excluded(key), Bound::Unbounded))
            .chain(self.ring.range(..key))
            .copied()
            .peekable();
        let mut pred = self
            .ring
            .range(..key)
            .rev()
            .chain(
                self.ring
                    .range((Bound::Excluded(key), Bound::Unbounded))
                    .rev(),
            )
            .copied()
            .peekable();
        let mut emit_key = self.ring.contains(&key);
        let mut produced = 0usize;
        std::iter::from_fn(move || {
            if produced >= total {
                return None;
            }
            produced += 1;
            if emit_key {
                emit_key = false;
                return Some(key);
            }
            let next = match (succ.peek().copied(), pred.peek().copied()) {
                (Some(s), Some(p)) => {
                    if s == p {
                        // The arc is down to its last id: both frontiers
                        // point at it; consume both.
                        pred.next();
                        s
                    } else if key.cmp_distance(s, p) == std::cmp::Ordering::Greater {
                        p
                    } else {
                        s
                    }
                }
                (Some(s), None) => s,
                (None, Some(p)) => p,
                (None, None) => unreachable!("produced < total implies an unvisited id"),
            };
            if succ.peek() == Some(&next) {
                succ.next();
            } else {
                pred.next();
            }
            Some(next)
        })
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    /// Add a node with a fresh random id; returns the id.
    pub fn add_random_node<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Id {
        loop {
            let id = Id::random(rng);
            if self.add_node(id) {
                return id;
            }
        }
    }

    /// Add a node with identifier `id`. Returns `false` (no-op) if the id
    /// is already taken.
    ///
    /// Models the Pastry join: route from a distant bootstrap node toward
    /// `id`; nodes met on the way donate routing-table rows; the root
    /// donates its leaf set; everyone in the new leaf set learns about the
    /// newcomer.
    pub fn add_node(&mut self, id: Id) -> bool {
        if self.nodes.contains_key(&id) {
            return false;
        }
        let half = self.config.leaf_half();
        let mut table = RoutingTable::new(id, self.config.b);
        let mut leafset = LeafSet::new(id, half);

        if !self.ring.is_empty() {
            // Bootstrap from roughly the antipode so the join path has
            // realistic length and donates a full set of rows.
            let bootstrap = self.successor_inclusive(id.flip_bit(0));
            let outcome = self
                .route(bootstrap, id)
                .expect("routing within a consistent overlay cannot fail");

            // Row i of the i-th node on the path matches the new node on at
            // least i digits (Pastry join, §3 of the Pastry paper).
            for (i, hop) in outcome.path.iter().enumerate() {
                let donor = &self.nodes[hop];
                table.absorb_row(&donor.table, i);
                // Later rows from the root are also valid donations.
                if *hop == outcome.root {
                    for r in i..donor.table.depth() {
                        table.absorb_row(&donor.table, r);
                    }
                }
                table.consider(*hop);
            }

            // Exact leaf set (the converged result of leaf-set exchange
            // with the root).
            leafset.rebuild(self.successors(id, half), self.predecessors(id, half));
            for m in leafset.members().collect::<Vec<_>>() {
                table.consider(m);
            }
        }

        // Announce to affected peers: every node that should hold the
        // newcomer in its leaf set is, by window symmetry, a member of the
        // newcomer's leaf set. Each affected peer re-derives its leaf set
        // (the converged result of Pastry's leaf-set exchange).
        let members: Vec<Id> = leafset.members().collect();
        self.ring.insert(id);
        self.pos.insert(id, self.order.len());
        self.order.push(id);
        self.nodes
            .insert(id, Arc::new(NodeHandle { id, table, leafset }));
        let half = self.config.leaf_half();
        for m in &members {
            let cw = self.successors(*m, half);
            let ccw = self.predecessors(*m, half);
            // A member can be stale when callers interleave joins with
            // batched removals; skip-and-journal instead of panicking.
            let repaired = match self.nodes.get_mut(m) {
                Some(slot) => {
                    let peer = Arc::make_mut(slot);
                    peer.leafset.rebuild(cw, ccw);
                    peer.table.consider(id);
                    true
                }
                None => false,
            };
            if repaired {
                self.instruments.leafset_repairs.inc();
            } else {
                self.note_stale_leafset_ref(*m);
            }
        }
        true
    }

    /// Remove a node (graceful leave and fail-stop failure look identical
    /// one repair round later, which is the granularity the paper's
    /// experiments measure at).
    ///
    /// Idempotent: removing an id that is not (or no longer) live returns
    /// `false` and changes nothing, so overlapping churn units may race
    /// to kill the same node without panicking.
    pub fn remove_node(&mut self, id: Id) -> bool {
        if !self.ring.remove(&id) {
            return false;
        }
        self.nodes.remove(&id);
        self.detach_from_index(id);

        // Repair leaf sets of the window around the departed node.
        let half = self.config.leaf_half();
        let affected: Vec<Id> = self
            .successors(id, half)
            .into_iter()
            .chain(self.predecessors(id, half))
            .collect();
        for a in affected {
            self.repair_survivor(a, &|x| x == id);
        }
        true
    }

    /// Remove a whole batch of nodes at once (the fail-stop mass-failure
    /// scenario of Fig. 2): every id is detached first, then each
    /// surviving neighbour's leaf set is repaired exactly once against
    /// the post-failure ring — `O(batch + affected)` work instead of one
    /// full repair round per removal. Duplicate and unknown ids are
    /// ignored. Returns how many nodes were actually removed.
    ///
    /// Consumes no randomness and repairs survivors in id order, so it is
    /// safe inside deterministic trial workers.
    pub fn remove_nodes(&mut self, ids: &[Id]) -> usize {
        // Phase 1: detach everything, keeping each departed node's handle
        // — its leaf set names the survivors that must repair.
        let mut departed: Vec<Arc<NodeHandle>> = Vec::new();
        for &id in ids {
            if !self.ring.remove(&id) {
                continue;
            }
            if let Some(handle) = self.nodes.remove(&id) {
                departed.push(handle);
            }
            self.detach_from_index(id);
        }
        if departed.is_empty() {
            return 0;
        }

        // Phase 2: collect repair candidates from the departed nodes' own
        // leaf sets (window symmetry: any survivor whose leaf set held a
        // dead node appears in that dead node's leaf set). A member that
        // was itself removed earlier in the same batch is a stale
        // reference — skip and journal it, exactly the case the old
        // one-at-a-time repair path turned into a panic.
        let mut candidates: BTreeSet<Id> = BTreeSet::new();
        for handle in &departed {
            for m in handle.leafset.members() {
                if self.nodes.contains_key(&m) {
                    candidates.insert(m);
                } else {
                    self.note_stale_leafset_ref(m);
                }
            }
        }

        let removed: IdHashSet = departed.iter().map(|h| h.id).collect();
        for a in candidates {
            self.repair_survivor(a, &|x| removed.contains(&x));
        }
        departed.len()
    }

    /// Drop `id` from the dense sampling index via swap-remove. Tolerates
    /// an already-detached id (the index simply stays unchanged).
    fn detach_from_index(&mut self, id: Id) {
        let Some(idx) = self.pos.remove(&id) else {
            return;
        };
        let Some(last) = self.order.pop() else {
            return;
        };
        if last != id {
            self.order[idx] = last;
            self.pos.insert(last, idx);
        }
    }

    /// Re-derive survivor `a`'s leaf set against the current (post-
    /// removal) ring when it references a dead node or is short, and
    /// evict dead routing-table entries. `dead` decides which ids count
    /// as departed. Skips (and journals) `a` itself when it is not live.
    fn repair_survivor(&mut self, a: Id, dead: &dyn Fn(Id) -> bool) {
        let half = self.config.leaf_half();
        // Read-only probe first so an untouched survivor stays shared
        // with any snapshot.
        let (needs_leafset, needs_eviction) = match self.nodes.get(&a) {
            Some(node) => (
                node.leafset.members().any(dead) || node.leafset.len() < 2 * half,
                node.table.entries().any(dead),
            ),
            None => {
                self.note_stale_leafset_ref(a);
                return;
            }
        };
        if !needs_leafset && !needs_eviction {
            return;
        }
        let cw = self.successors(a, half);
        let ccw = self.predecessors(a, half);
        let repaired = match self.nodes.get_mut(&a) {
            Some(slot) => {
                let node = Arc::make_mut(slot);
                if needs_leafset {
                    node.leafset.rebuild(cw, ccw);
                }
                if needs_eviction {
                    node.table.evict_where(dead);
                }
                needs_leafset
            }
            None => false,
        };
        if repaired {
            self.instruments.leafset_repairs.inc();
        }
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    /// Route `key` from node `from` using only per-node state, repairing
    /// dead routing-table entries as they are discovered.
    ///
    /// Returns the full path (source first, root last).
    pub fn route(&mut self, from: Id, key: Id) -> Result<RouteOutcome, RouteError> {
        if self.ring.is_empty() {
            return Err(RouteError::EmptyOverlay);
        }
        if !self.nodes.contains_key(&from) {
            return Err(RouteError::UnknownSource(from));
        }
        let mut current = from;
        let mut path = vec![from];
        // Prefix hops strictly lengthen the shared prefix and ring-mode
        // hops strictly shrink ring distance, so the true bound is
        // digits + N; this is a defensive cap well above realistic paths.
        let max_hops = self.config.digits() + self.ring.len() + 16;
        // Once a hop is taken on pure ring progress (a greedy step that may
        // shorten the shared prefix), prefix hops are disabled for the rest
        // of the route: mixing the two metrics can oscillate (prefix hops
        // may regress ring distance, leaf-set steps may regress the shared
        // prefix), but each metric alone is monotone. A route also flips to
        // ring mode the moment it would revisit a node, which makes loops
        // impossible by construction.
        // Revisit detection scans `path` directly: paths are O(log N)
        // short, so a linear scan beats allocating a hash set per route.
        let mut ring_mode = false;

        loop {
            if path.len() > max_hops {
                return Err(RouteError::Loop);
            }
            let (next, went_greedy) = self.forward_from(current, key, ring_mode)?;
            match next {
                None => {
                    self.instruments.route_hops.record(path.len() as u64 - 1);
                    return Ok(RouteOutcome {
                        path,
                        root: current,
                    });
                }
                Some(n) => {
                    if !ring_mode && path.contains(&n) {
                        // Prefix routing is about to cycle; re-decide this
                        // hop on pure ring progress.
                        ring_mode = true;
                        continue;
                    }
                    ring_mode |= went_greedy;
                    debug_assert!(self.ring.contains(&n), "forwarded to dead node");
                    path.push(n);
                    current = n;
                }
            }
        }
    }

    /// One forwarding decision at `current` for `key`. `Ok((None, _))`
    /// means `current` is the root; the boolean reports whether the step
    /// was pure greedy (no prefix guarantee). Evicts dead table entries it
    /// trips over. Exposed crate-wide so [`crate::secure`] can walk routes
    /// while interposing per-node adversarial behaviour.
    pub(crate) fn forward_from(
        &mut self,
        current: Id,
        key: Id,
        ring_mode: bool,
    ) -> Result<(Option<Id>, bool), RouteError> {
        // Phase 1: leaf set covers the key → exact final step(s).
        let (covers, leaf_next) = {
            let node = &self.nodes[&current];
            if node.leafset.covers(key) {
                let best = node.leafset.closest_to(key);
                (true, if best == current { None } else { Some(best) })
            } else {
                (false, None)
            }
        };
        if covers {
            if let Some(n) = leaf_next {
                debug_assert!(self.ring.contains(&n), "leaf sets are eagerly maintained");
            }
            return Ok((leaf_next, false));
        }

        // Phase 2: routing table, canonical slot (skipped in ring mode).
        if !ring_mode {
            let hop = self.nodes[&current].table.next_hop(key);
            if let Some(h) = hop {
                if self.nodes.contains_key(&h) {
                    return Ok((Some(h), false));
                }
                // Stale entry: lazy repair.
                if let Some(slot) = self.nodes.get_mut(&current) {
                    Arc::make_mut(slot).table.evict(h);
                }
                self.instruments.table_evictions.inc();
            }
        }

        // Phase 3: rare-case fallback over table ∪ leaf set. First apply
        // Pastry's rule (live, shares at least as long a prefix, strictly
        // closer); if no such node is known — which can happen with
        // sparsely populated tables — fall back to pure greedy progress by
        // ring distance. Greedy is guaranteed to progress whenever the
        // leaf set does not cover the key: the leaf-set edge on the key's
        // side is strictly closer, so routing still terminates at the root.
        let node = &self.nodes[&current];
        let own_prefix = current.shared_prefix_digits(key, self.config.b);
        let mut best_pastry: Option<Id> = None;
        let mut best_greedy: Option<Id> = None;
        let mut stale = Vec::new();
        for c in node.table.entries().chain(node.leafset.members()) {
            if !self.nodes.contains_key(&c) {
                stale.push(c);
                continue;
            }
            if !c.closer_to(key, current) {
                continue;
            }
            if best_greedy.is_none_or(|b| c.closer_to(key, b)) {
                best_greedy = Some(c);
            }
            if c.shared_prefix_digits(key, self.config.b) >= own_prefix
                && best_pastry.is_none_or(|b| c.closer_to(key, b))
            {
                best_pastry = Some(c);
            }
        }
        if !stale.is_empty() {
            if let Some(slot) = self.nodes.get_mut(&current) {
                let node = Arc::make_mut(slot);
                for s in &stale {
                    node.table.evict(*s);
                }
            }
            for _ in &stale {
                self.instruments.table_evictions.inc();
            }
        }
        if !ring_mode {
            if let Some(b) = best_pastry {
                return Ok((Some(b), false));
            }
        }
        match best_greedy {
            Some(b) => Ok((Some(b), true)),
            // Not covered by the leaf set yet nobody is closer: with exact
            // leaf sets this means current *is* the root of a sparse ring
            // (fewer nodes than a leaf-set side). Confirm against local
            // knowledge before declaring success.
            None => {
                let node = &self.nodes[&current];
                if node.leafset.len() < 2 * self.config.leaf_half() {
                    Ok((None, false))
                } else {
                    Err(RouteError::Stuck { at: current, key })
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Diagnostics / test support
    // ------------------------------------------------------------------

    /// Assert every leaf set matches the oracle ring exactly. Test helper;
    /// O(N·L·log N).
    pub fn assert_leafsets_exact(&self) {
        let half = self.config.leaf_half();
        for (&id, node) in &self.nodes {
            let want_cw = self.successors(id, half);
            let mut want_ccw = self.predecessors(id, half);
            // Small rings: sides overlap; `rebuild` keeps shared nodes on
            // the clockwise side only.
            want_ccw.retain(|x| !want_cw.contains(x));
            assert_eq!(
                node.leafset.clockwise(),
                &want_cw[..],
                "clockwise leaf set of {id:?} drifted"
            );
            assert_eq!(
                node.leafset.counter_clockwise(),
                &want_ccw[..],
                "counter-clockwise leaf set of {id:?} drifted"
            );
        }
    }

    /// Assert routing-table structural invariants for every node.
    pub fn assert_tables_structurally_valid(&self) {
        for node in self.nodes.values() {
            node.table.assert_invariants();
        }
    }

    /// Mean routing-table occupancy (diagnostics).
    pub fn mean_table_occupancy(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let total: usize = self.nodes.values().map(|n| n.table.occupancy()).sum();
        total as f64 / self.nodes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(n: usize, seed: u64) -> (Overlay, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ov = Overlay::new(PastryConfig::paper_defaults());
        for _ in 0..n {
            ov.add_random_node(&mut rng);
        }
        (ov, rng)
    }

    #[test]
    fn singleton_overlay_routes_to_itself() {
        let (mut ov, mut rng) = build(1, 1);
        let only = ov.ids().next().unwrap();
        let key = Id::random(&mut rng);
        let out = ov.route(only, key).unwrap();
        assert_eq!(out.root, only);
        assert_eq!(out.hops(), 0);
    }

    #[test]
    fn route_reaches_oracle_owner() {
        let (mut ov, mut rng) = build(300, 2);
        for _ in 0..100 {
            let src = ov.random_node(&mut rng).unwrap();
            let key = Id::random(&mut rng);
            let want = ov.owner_of(key).unwrap();
            let got = ov.route(src, key).unwrap();
            assert_eq!(got.root, want, "route disagrees with oracle");
            assert_eq!(*got.path.first().unwrap(), src);
            assert_eq!(*got.path.last().unwrap(), want);
        }
    }

    #[test]
    fn route_rarely_revisits_nodes() {
        // A route may re-enter at most one pre-ring-mode node when it flips
        // to monotone ring progress; beyond that, revisits are a loop bug.
        let (mut ov, mut rng) = build(200, 3);
        for _ in 0..50 {
            let src = ov.random_node(&mut rng).unwrap();
            let key = Id::random(&mut rng);
            let out = ov.route(src, key).unwrap();
            let distinct: std::collections::HashSet<_> = out.path.iter().collect();
            assert!(
                out.path.len() <= distinct.len() + 1,
                "more than one revisit in {:?}",
                out.path
            );
            assert!(!out.path.is_empty());
        }
    }

    #[test]
    fn hop_counts_scale_logarithmically() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ov = Overlay::new(PastryConfig::paper_defaults());
        for _ in 0..1000 {
            ov.add_random_node(&mut rng);
        }
        let mut total = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let src = ov.random_node(&mut rng).unwrap();
            let key = Id::random(&mut rng);
            total += ov.route(src, key).unwrap().hops();
        }
        let mean = total as f64 / trials as f64;
        // log_16(1000) ≈ 2.5; allow generous slack but catch linear blowup.
        assert!(
            mean < 6.0,
            "mean hops {mean} too high for 1000 nodes (expect ~log16 N)"
        );
        assert!(mean > 1.0, "mean hops {mean} implausibly low");
    }

    #[test]
    fn leafsets_exact_after_joins() {
        let (ov, _) = build(150, 5);
        ov.assert_leafsets_exact();
        ov.assert_tables_structurally_valid();
    }

    #[test]
    fn leafsets_exact_after_removals() {
        let (mut ov, mut rng) = build(150, 6);
        let ids: Vec<Id> = ov.ids().collect();
        for id in ids.iter().take(75) {
            assert!(ov.remove_node(*id));
        }
        ov.assert_leafsets_exact();
        // Routing still agrees with the oracle.
        for _ in 0..50 {
            let src = ov.random_node(&mut rng).unwrap();
            let key = Id::random(&mut rng);
            assert_eq!(ov.route(src, key).unwrap().root, ov.owner_of(key).unwrap());
        }
    }

    #[test]
    fn interleaved_churn_preserves_correctness() {
        let (mut ov, mut rng) = build(100, 7);
        for round in 0..20 {
            // Remove a random node, add a fresh one.
            let victim = ov.random_node(&mut rng).unwrap();
            ov.remove_node(victim);
            ov.add_random_node(&mut rng);
            let src = ov.random_node(&mut rng).unwrap();
            let key = Id::random(&mut rng);
            assert_eq!(
                ov.route(src, key).unwrap().root,
                ov.owner_of(key).unwrap(),
                "round {round}"
            );
        }
        ov.assert_leafsets_exact();
    }

    #[test]
    fn mass_failure_routing_survives() {
        // Kill 30% of nodes simultaneously (the Fig. 2 scenario), then
        // verify routing still reaches the post-failure oracle owner.
        let (mut ov, mut rng) = build(400, 8);
        let ids: Vec<Id> = ov.ids().collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 10 < 3 {
                ov.remove_node(*id);
            }
        }
        for _ in 0..100 {
            let src = ov.random_node(&mut rng).unwrap();
            let key = Id::random(&mut rng);
            assert_eq!(ov.route(src, key).unwrap().root, ov.owner_of(key).unwrap());
        }
    }

    #[test]
    fn k_closest_matches_brute_force() {
        let (ov, mut rng) = build(120, 9);
        let all: Vec<Id> = ov.ids().collect();
        for _ in 0..40 {
            let key = Id::random(&mut rng);
            for k in [1, 3, 5] {
                let got = ov.k_closest(key, k);
                let mut brute = all.clone();
                brute.sort_by(|a, b| key.cmp_distance(*a, *b));
                brute.truncate(k);
                assert_eq!(got, brute, "k={k}");
            }
        }
    }

    #[test]
    fn k_closest_caps_at_population() {
        let (ov, mut rng) = build(2, 10);
        let key = Id::random(&mut rng);
        assert_eq!(ov.k_closest(key, 5).len(), 2);
    }

    #[test]
    fn closest_iter_matches_k_closest_exactly() {
        for (n, seed) in [(1usize, 20u64), (2, 21), (3, 22), (57, 23), (200, 24)] {
            let (ov, mut rng) = build(n, seed);
            let mut keys: Vec<Id> = (0..16).map(|_| Id::random(&mut rng)).collect();
            // Also probe with keys that ARE ring members (emit-self path).
            keys.extend(ov.ids().take(4));
            for key in keys {
                let lazy: Vec<Id> = ov.closest_iter(key).collect();
                let full = ov.k_closest(key, n);
                assert_eq!(lazy, full, "n={n} seed={seed}");
                // The iterator is fused at the population size.
                assert_eq!(ov.closest_iter(key).count(), n);
                // Prefixes agree too (lazy use never over- or under-takes).
                for k in [1usize, 2, 7] {
                    let prefix: Vec<Id> = ov.closest_iter(key).take(k).collect();
                    assert_eq!(prefix, ov.k_closest(key, k), "k={k}");
                }
            }
        }
    }

    #[test]
    fn owner_of_exact_key_is_that_node() {
        let (ov, _) = build(50, 11);
        for id in ov.ids().collect::<Vec<_>>() {
            assert_eq!(ov.owner_of(id), Some(id));
        }
    }

    #[test]
    fn duplicate_join_rejected() {
        let (mut ov, _) = build(10, 12);
        let id = ov.ids().next().unwrap();
        assert!(!ov.add_node(id));
        assert_eq!(ov.len(), 10);
    }

    #[test]
    fn double_remove_is_idempotent() {
        // Overlapping churn units may race to kill the same node; the
        // second kill must be a clean no-op, not a panic.
        let (mut ov, mut rng) = build(60, 17);
        let victim = ov.random_node(&mut rng).unwrap();
        assert!(ov.remove_node(victim));
        assert!(!ov.remove_node(victim), "second kill is a no-op");
        assert!(!ov.remove_node(victim), "and so is the third");
        assert_eq!(ov.len(), 59);
        ov.assert_leafsets_exact();
        // The batch form tolerates duplicates and already-dead ids too.
        let v2 = ov.random_node(&mut rng).unwrap();
        assert_eq!(ov.remove_nodes(&[v2, v2, victim]), 1);
        assert_eq!(ov.len(), 58);
        ov.assert_leafsets_exact();
        // Sampling still works over the compacted dense index.
        for _ in 0..20 {
            let s = ov.random_node(&mut rng).unwrap();
            assert!(ov.is_live(s));
        }
    }

    #[test]
    fn batch_removal_journals_stale_leafset_refs() {
        // Kill a contiguous arc of the ring in one batch: each departed
        // node's leaf set references neighbours removed in the same
        // batch, which the repair walk must skip-and-journal rather than
        // panic on.
        let (mut ov, mut rng) = build(120, 18);
        let start = ov.ids().next().unwrap();
        let mut batch = vec![start];
        batch.extend(ov.successors(start, 5));
        let stale = ov.metrics().counter("pastry.stale_leafset_ref");
        assert_eq!(stale.get(), 0);
        assert_eq!(ov.remove_nodes(&batch), 6);
        assert!(
            stale.get() > 0,
            "adjacent kills must hit (and journal) stale leafset refs"
        );
        assert_eq!(ov.len(), 114);
        ov.assert_leafsets_exact();
        for _ in 0..30 {
            let src = ov.random_node(&mut rng).unwrap();
            let key = Id::random(&mut rng);
            assert_eq!(ov.route(src, key).unwrap().root, ov.owner_of(key).unwrap());
        }
    }

    #[test]
    fn batch_removal_matches_sequential_removal() {
        // The batch API must converge to the same membership state as
        // one-at-a-time removal — only the repair work differs.
        let (mut a, mut rng) = build(200, 21);
        let mut b = a.deep_clone();
        let victims: Vec<Id> = (0..60)
            .map(|_| a.random_node(&mut rng).unwrap())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for &v in &victims {
            a.remove_node(v);
        }
        assert_eq!(b.remove_nodes(&victims), victims.len());
        assert_eq!(a.len(), b.len());
        a.assert_leafsets_exact();
        b.assert_leafsets_exact();
        let mut rng2 = StdRng::seed_from_u64(77);
        for _ in 0..40 {
            let src = a.random_node(&mut rng2).unwrap();
            let key = Id::random(&mut rng2);
            assert!(b.is_live(src), "same membership");
            assert_eq!(
                a.route(src, key).unwrap().root,
                b.route(src, key).unwrap().root
            );
        }
    }

    #[test]
    fn checkpoint_rollback_restores_membership() {
        let (mut ov, mut rng) = build(150, 19);
        let before: Vec<Id> = ov.ids().collect();
        let cp = ov.checkpoint();
        assert_eq!(cp.len(), 150);
        assert!(!cp.is_empty());
        // Mutate hard: kill 40 nodes, add 15 fresh ones, route a bit.
        let victims: Vec<Id> = before.iter().take(40).copied().collect();
        ov.remove_nodes(&victims);
        for _ in 0..15 {
            ov.add_random_node(&mut rng);
        }
        for _ in 0..20 {
            let src = ov.random_node(&mut rng).unwrap();
            ov.route(src, Id::random(&mut rng)).unwrap();
        }
        assert_ne!(ov.ids().collect::<Vec<_>>(), before);
        ov.rollback(&cp);
        assert_eq!(ov.ids().collect::<Vec<_>>(), before);
        ov.assert_leafsets_exact();
        ov.assert_tables_structurally_valid();
        // Rolled-back state routes identically to a pristine deep clone.
        let mut oracle = ov.deep_clone();
        let mut rng2 = StdRng::seed_from_u64(123);
        for _ in 0..40 {
            let src = ov.random_node(&mut rng2).unwrap();
            let key = Id::random(&mut rng2);
            assert_eq!(
                ov.route(src, key).unwrap().path,
                oracle.route(src, key).unwrap().path
            );
        }
    }

    #[test]
    fn cow_clones_isolate_writes_both_ways() {
        let (mut ov, mut rng) = build(100, 20);
        let mut snap = ov.clone();
        assert_eq!(ov.handles_shared_with(&snap), 100, "clone is all-shared");
        // Writes on the original never surface in the snapshot...
        let victim = ov.random_node(&mut rng).unwrap();
        assert!(ov.remove_node(victim));
        assert!(snap.is_live(victim), "snapshot must not see the kill");
        snap.assert_leafsets_exact();
        // ...and writes on the snapshot never surface in the original.
        let victim2 = loop {
            let v = snap.random_node(&mut rng).unwrap();
            if ov.is_live(v) {
                break v;
            }
        };
        assert!(snap.remove_node(victim2));
        assert!(ov.is_live(victim2), "original must not see snapshot kill");
        ov.assert_leafsets_exact();
        snap.assert_leafsets_exact();
        // Untouched nodes remain physically shared.
        assert!(ov.handles_shared_with(&snap) > 0);
    }

    #[test]
    fn remove_unknown_is_noop() {
        let (mut ov, mut rng) = build(10, 13);
        assert!(!ov.remove_node(Id::random(&mut rng)));
        assert_eq!(ov.len(), 10);
    }

    #[test]
    fn route_from_dead_node_fails() {
        let (mut ov, mut rng) = build(10, 14);
        let victim = ov.random_node(&mut rng).unwrap();
        ov.remove_node(victim);
        let key = Id::random(&mut rng);
        assert_eq!(
            ov.route(victim, key),
            Err(RouteError::UnknownSource(victim))
        );
    }

    #[test]
    fn random_node_is_roughly_uniform() {
        let (ov, mut rng) = build(20, 15);
        let mut counts: std::collections::HashMap<Id, usize> = std::collections::HashMap::new();
        for _ in 0..4000 {
            *counts.entry(ov.random_node(&mut rng).unwrap()).or_default() += 1;
        }
        assert_eq!(counts.len(), 20, "every node should be sampled");
    }

    #[test]
    fn tiny_ring_smaller_than_leafset() {
        // 5 nodes with |L| = 16: every leaf set holds everyone; routing is
        // one leaf-set step.
        let (mut ov, mut rng) = build(5, 16);
        for _ in 0..20 {
            let src = ov.random_node(&mut rng).unwrap();
            let key = Id::random(&mut rng);
            let out = ov.route(src, key).unwrap();
            assert_eq!(out.root, ov.owner_of(key).unwrap());
            assert!(out.hops() <= 1);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_route_agrees_with_oracle_under_arbitrary_churn(
            seed in any::<u64>(),
            script in proptest::collection::vec(any::<u8>(), 10..60),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ov = Overlay::new(PastryConfig::paper_defaults());
            for _ in 0..40 {
                ov.add_random_node(&mut rng);
            }
            for op in script {
                match op % 3 {
                    0 => {
                        ov.add_random_node(&mut rng);
                    }
                    1 if ov.len() > 5 => {
                        let victim = ov.random_node(&mut rng).unwrap();
                        ov.remove_node(victim);
                    }
                    _ => {
                        let src = ov.random_node(&mut rng).unwrap();
                        let key = Id::random(&mut rng);
                        let got = ov.route(src, key).unwrap();
                        prop_assert_eq!(got.root, ov.owner_of(key).unwrap());
                    }
                }
            }
            ov.assert_leafsets_exact();
            ov.assert_tables_structurally_valid();
        }

        #[test]
        fn prop_snapshots_match_deep_clones_and_stay_isolated(
            seed in any::<u64>(),
            script in proptest::collection::vec(any::<u8>(), 8..40),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ov = Overlay::new(PastryConfig::paper_defaults());
            for _ in 0..32 {
                ov.add_random_node(&mut rng);
            }

            // A pristine deep clone and a checkpoint taken at the same
            // instant, plus a live COW snapshot that must never observe
            // the writes applied to `ov` below.
            let oracle = ov.deep_clone();
            let cp = ov.checkpoint();
            let witness = ov.clone();
            let mut witness_ids: Vec<Id> = witness.ids().collect();
            witness_ids.sort();

            for op in script {
                match op % 3 {
                    0 => {
                        ov.add_random_node(&mut rng);
                    }
                    1 if ov.len() > 5 => {
                        let victim = ov.random_node(&mut rng).unwrap();
                        ov.remove_node(victim);
                    }
                    2 if ov.len() > 8 => {
                        let mut victims: Vec<Id> = (0..3)
                            .filter_map(|_| ov.random_node(&mut rng))
                            .collect();
                        victims.sort();
                        victims.dedup();
                        ov.remove_nodes(&victims);
                    }
                    _ => {}
                }
            }

            // Two live snapshots never observe each other's writes.
            let mut still: Vec<Id> = witness.ids().collect();
            still.sort();
            prop_assert_eq!(&still, &witness_ids);

            // Rollback restores the pre-script membership exactly…
            ov.rollback(&cp);
            let mut rolled: Vec<Id> = ov.ids().collect();
            rolled.sort();
            let mut pristine: Vec<Id> = oracle.ids().collect();
            pristine.sort();
            prop_assert_eq!(rolled, pristine);

            // …and the rolled-back overlay routes identically to the
            // pristine deep clone, path for path, for every probed key.
            // Routing mutates (lazy table eviction), so each side probes
            // its own clone; observable behavior must not differ.
            let mut probe = ov.clone();
            let mut oracle_probe = oracle.deep_clone();
            for _ in 0..16 {
                let src = probe.random_node(&mut rng).unwrap();
                let key = Id::random(&mut rng);
                let got = probe.route(src, key).unwrap();
                let want = oracle_probe.route(src, key).unwrap();
                prop_assert_eq!(got.path, want.path);
            }
            ov.assert_leafsets_exact();
            ov.assert_tables_structurally_valid();
        }

        #[test]
        fn prop_k_closest_is_sorted_and_distinct(
            seed in any::<u64>(),
            k in 1usize..8,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ov = Overlay::new(PastryConfig::paper_defaults());
            for _ in 0..30 {
                ov.add_random_node(&mut rng);
            }
            let key = Id::random(&mut rng);
            let closest = ov.k_closest(key, k);
            prop_assert_eq!(closest.len(), k.min(30));
            for w in closest.windows(2) {
                prop_assert_ne!(w[0], w[1]);
                prop_assert_ne!(
                    key.cmp_distance(w[0], w[1]),
                    std::cmp::Ordering::Greater,
                    "k_closest must be sorted by distance"
                );
            }
        }
    }
}
